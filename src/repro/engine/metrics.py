"""Lightweight counters and timers for engine runs.

Workers return plain-dictionary partial metrics (picklable across the
process boundary); the driver merges them into one :class:`EngineMetrics`
and renders the end-of-run summary: histories per second, relation-cache
hit rate, and per-model wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineMetrics"]


@dataclass
class EngineMetrics:
    """Counters and timers accumulated over one engine run.

    ``model_seconds`` is worker CPU-side wall time summed per model; with
    several workers it can exceed ``wall_seconds`` (that surplus is the
    parallelism actually achieved).
    """

    histories: int = 0
    checks: int = 0
    skipped: int = 0
    prepass_decided: int = 0
    #: Of the decided checks, how many the pre-pass *admitted* (with a
    #: constructed witness) rather than denied.
    prepass_admitted: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    model_seconds: dict[str, float] = field(default_factory=dict)
    #: Wall time per engine phase ("prepass" — the static DENY battery,
    #: "check" — the decision procedure itself), summed across workers;
    #: the aggregation of the per-check profiles of :mod:`repro.obs`.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    # -- accumulation ----------------------------------------------------------

    def add_model_time(self, model: str, seconds: float) -> None:
        """Accumulate wall time attributed to one model's checker."""
        self.model_seconds[model] = self.model_seconds.get(model, 0.0) + seconds

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Accumulate wall time attributed to one engine phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def merge(self, partial: "EngineMetrics | dict") -> None:
        """Fold a worker's partial metrics (dict or instance) into this one."""
        if isinstance(partial, EngineMetrics):
            partial = partial.to_dict()
        self.histories += partial.get("histories", 0)
        self.checks += partial.get("checks", 0)
        self.skipped += partial.get("skipped", 0)
        self.prepass_decided += partial.get("prepass_decided", 0)
        self.prepass_admitted += partial.get("prepass_admitted", 0)
        self.cache_hits += partial.get("cache_hits", 0)
        self.cache_misses += partial.get("cache_misses", 0)
        for model, seconds in partial.get("model_seconds", {}).items():
            self.add_model_time(model, seconds)
        for phase, seconds in partial.get("phase_seconds", {}).items():
            self.add_phase_time(phase, seconds)

    # -- derived figures --------------------------------------------------------

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of relation lookups served from the cache."""
        total = self.cache_lookups
        return self.cache_hits / total if total else 0.0

    @property
    def histories_per_second(self) -> float:
        return self.histories / self.wall_seconds if self.wall_seconds > 0 else 0.0

    # -- presentation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible form (recorded in the store's summary line)."""
        return {
            "histories": self.histories,
            "checks": self.checks,
            "skipped": self.skipped,
            "prepass_decided": self.prepass_decided,
            "prepass_admitted": self.prepass_admitted,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "wall_seconds": round(self.wall_seconds, 6),
            "histories_per_second": round(self.histories_per_second, 2),
            "workers": self.workers,
            "model_seconds": {
                m: round(s, 6) for m, s in sorted(self.model_seconds.items())
            },
            "phase_seconds": {
                p: round(s, 6) for p, s in sorted(self.phase_seconds.items())
            },
        }

    def render(self) -> str:
        """The human-readable end-of-run summary."""
        lines = [
            f"histories: {self.histories} checked, {self.skipped} skipped "
            f"(resume); checks: {self.checks}",
            f"wall time: {self.wall_seconds:.3f}s  "
            f"({self.histories_per_second:.1f} histories/sec, "
            f"jobs={self.workers})",
            f"cache hit rate: {self.cache_hit_rate:.1%} "
            f"(hits={self.cache_hits}, misses={self.cache_misses})",
        ]
        if self.prepass_decided:
            lines.append(
                f"static pre-pass: {self.prepass_decided}/{self.checks} "
                "checks decided without search "
                f"({self.prepass_admitted} admitted with a witness)"
            )
        if self.phase_seconds:
            parts = ", ".join(
                f"{phase}={seconds:.3f}s"
                for phase, seconds in sorted(self.phase_seconds.items())
            )
            lines.append(f"per-phase time: {parts}")
        if self.model_seconds:
            total = sum(self.model_seconds.values())
            lines.append(f"per-model time (total {total:.3f}s):")
            width = max(len(m) for m in self.model_seconds)
            for model, seconds in sorted(
                self.model_seconds.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"  {model:<{width}s}  {seconds:.3f}s")
        return "\n".join(lines)
