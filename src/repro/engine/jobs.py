"""Declarative work descriptions for the batch-checking engine.

A sweep is "check N histories against M models".  :class:`SweepSpec`
describes the workload declaratively — which history source, which models,
which generation parameters — and expands it into a deterministic stream
of :class:`CheckJob` units.  Keys are stable across runs and processes
(catalog names, enumeration indices, generator seeds), which is what makes
the result store resumable: a key present in the store never needs
re-checking.  Keys also embed the full generation shape (procs, ops,
locations, write probability), so a key can never denote two different
histories across specs — resume skips and shared-store daemons depend on
that injectivity.

Three history sources:

``catalog``
    The litmus catalog (:data:`repro.litmus.CATALOG`) — the paper's figures
    plus the classic tests.
``space``
    Exhaustive :class:`~repro.lattice.enumeration.HistorySpace` enumeration,
    deduplicated by canonical key (the Figure 5 workload).
``random``
    Seeded :func:`~repro.analysis.random_histories.random_history` sampling
    (the fuzzing workload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.checking.models import model_names
from repro.core.errors import EngineError
from repro.core.history import SystemHistory

__all__ = ["CheckJob", "SweepSpec", "SOURCES"]

#: The recognized history sources.
SOURCES: tuple[str, ...] = ("catalog", "space", "random")


@dataclass(frozen=True)
class CheckJob:
    """One unit of work: decide ``history`` under each model in ``models``.

    ``key`` is the job's stable identity in the result store; two runs of
    the same :class:`SweepSpec` produce the same keys in the same order.
    """

    key: str
    history: SystemHistory
    models: tuple[str, ...]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative (history source × model set) sweep description.

    Attributes
    ----------
    source:
        One of :data:`SOURCES`.
    models:
        Model names to consult, or ``("all",)`` for every registered model.
    procs, ops_per_proc, locations:
        History shape (``space`` and ``random`` sources).
    count, seed, p_write:
        Sample count, generator seed, and write probability (``random``
        source only).
    """

    source: str = "catalog"
    models: tuple[str, ...] = ("all",)
    procs: int = 2
    ops_per_proc: int = 2
    locations: tuple[str, ...] = ("x", "y")
    count: int = 100
    seed: int = 0
    p_write: float = 0.5

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise EngineError(
                f"unknown history source {self.source!r}; known: {', '.join(SOURCES)}"
            )
        if not self.models:
            raise EngineError("a sweep needs at least one model")
        if self.procs < 1 or self.ops_per_proc < 1:
            raise EngineError(
                f"degenerate history shape: procs={self.procs}, "
                f"ops_per_proc={self.ops_per_proc}"
            )
        if not self.locations:
            raise EngineError("a sweep needs at least one location")
        if self.source == "random":
            if self.count < 1:
                raise EngineError(f"random source needs count >= 1, got {self.count}")
            if not 0.0 <= self.p_write <= 1.0:
                raise EngineError(
                    f"p_write must lie in [0, 1], got {self.p_write}"
                )
        self.resolved_models()  # fail fast on unknown model names

    def resolved_models(self) -> tuple[str, ...]:
        """The concrete model set (``("all",)`` expands to the registry)."""
        if self.models == ("all",):
            return model_names()
        known = set(model_names())
        unknown = [m for m in self.models if m not in known]
        if unknown:
            raise EngineError(
                f"unknown model(s) {', '.join(unknown)}; "
                f"known: {', '.join(model_names())}"
            )
        return self.models

    def describe(self) -> dict:
        """A JSON-compatible description (recorded in the store's run header)."""
        d = {"source": self.source, "models": list(self.resolved_models())}
        if self.source in ("space", "random"):
            d.update(
                procs=self.procs,
                ops_per_proc=self.ops_per_proc,
                locations=list(self.locations),
            )
        if self.source == "random":
            d.update(count=self.count, seed=self.seed, p_write=self.p_write)
        return d

    # -- expansion -------------------------------------------------------------

    def _shape_tag(self) -> str:
        """The key segment pinning the generated history shape.

        Embedded in ``space`` and ``random`` keys so keys stay injective
        across specs: without it, ``random:{seed}:{i}`` (say) would name
        different histories under different shapes, and a shared result
        store's resume pass — or any cache keyed by job key — would serve
        one spec's records to another.
        """
        return f"{self.procs}x{self.ops_per_proc}:{','.join(self.locations)}"

    def jobs(self) -> Iterator[CheckJob]:
        """Expand into :class:`CheckJob` units, deterministically ordered."""
        models = self.resolved_models()
        if self.source == "catalog":
            yield from self._catalog_jobs(models)
        elif self.source == "space":
            yield from self._space_jobs(models)
        else:
            yield from self._random_jobs(models)

    def _catalog_jobs(self, models: tuple[str, ...]) -> Iterator[CheckJob]:
        from repro.litmus import CATALOG

        for name, test in CATALOG.items():
            yield CheckJob(f"catalog:{name}", test.history, models)

    def _space_jobs(self, models: tuple[str, ...]) -> Iterator[CheckJob]:
        from repro.lattice.enumeration import (
            HistorySpace,
            canonical_key,
            enumerate_histories,
        )

        space = HistorySpace(
            procs=self.procs,
            ops_per_proc=self.ops_per_proc,
            locations=self.locations,
        )
        prefix = f"space:{self._shape_tag()}"
        seen: set[tuple] = set()
        index = 0
        for history in enumerate_histories(space):
            key = canonical_key(history)
            if key in seen:
                continue
            seen.add(key)
            yield CheckJob(f"{prefix}:{index:06d}", history, models)
            index += 1

    def _random_jobs(self, models: tuple[str, ...]) -> Iterator[CheckJob]:
        import numpy as np

        from repro.analysis.random_histories import random_history

        rng = np.random.default_rng(self.seed)
        for i in range(self.count):
            history = random_history(
                rng,
                procs=self.procs,
                ops_per_proc=self.ops_per_proc,
                locations=self.locations,
                p_write=self.p_write,
            )
            yield CheckJob(
                f"random:{self._shape_tag()}:p{self.p_write}:{self.seed}:{i:06d}",
                history,
                models,
            )
