"""Append-only JSONL result store with resume support.

One line per record, three record types distinguished by ``"type"``:

``run``
    A run header: store-format version, the sweep's declarative spec,
    worker count, start timestamp, and how many keys were skipped by
    resume.  A resumed run appends a second header rather than rewriting
    history — the store is a log.
``result``
    One job's verdicts: ``{"type": "result", "key": ..., "models":
    {name: bool}, "explored": {name: int}}``.  Result lines are
    canonically encoded (sorted keys, minimal separators) so identical
    sweeps produce byte-identical result lines regardless of worker count.
``summary``
    End-of-run aggregate: metrics and per-model allowed counts.

Resume contract: :meth:`ResultStore.completed_keys` returns the keys of
every intact result line; a run killed mid-write leaves at most one
truncated trailing line, which is ignored (and newline-terminated before
new records are appended, so the log stays parseable).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterator

from repro.core.errors import EngineError

__all__ = ["ResultStore", "STORE_VERSION"]

#: Bumped on any incompatible change to the record format.
STORE_VERSION = 1


def _encode(record: dict) -> str:
    """Canonical one-line encoding (deterministic bytes for equal records)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """An append-only JSONL store of sweep results at ``path``.

    Usable as a context manager; writes are line-buffered and flushed per
    record so a killed run loses at most the line being written.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    # -- reading ----------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every intact record currently on disk, in file order.

        Lines that do not decode (the truncated tail of a killed run) are
        skipped rather than raised: the store is meant to be resumable.
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    def results(self) -> list[dict]:
        """The intact ``result`` records, in file order."""
        return [r for r in self.records() if r.get("type") == "result"]

    def completed_keys(self) -> set[str]:
        """Keys of every intact result record (the resume skip-set)."""
        return {r["key"] for r in self.results() if "key" in r}

    def summarize(self) -> dict:
        """Aggregate the on-disk results: totals and per-model allowed counts."""
        results = self.results()
        counts: dict[str, int] = {}
        for record in results:
            for model, allowed in record.get("models", {}).items():
                if allowed:
                    counts[model] = counts.get(model, 0) + 1
                else:
                    counts.setdefault(model, 0)
        return {
            "results": len(results),
            "distinct_keys": len({r["key"] for r in results if "key" in r}),
            "allowed_counts": dict(sorted(counts.items())),
        }

    # -- writing ----------------------------------------------------------------

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Repair a truncated tail before appending: without the newline
            # the first new record would merge into the dead partial line.
            needs_newline = False
            if self.path.exists() and self.path.stat().st_size > 0:
                with self.path.open("rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = self.path.open("a", encoding="utf-8")
            if needs_newline:
                self._fh.write("\n")
                self._fh.flush()
        return self._fh

    def _append(self, record: dict) -> None:
        fh = self._handle()
        fh.write(_encode(record) + "\n")
        fh.flush()

    def append_run_header(self, meta: dict) -> None:
        """Record the start of a run (spec, workers, resume skip count)."""
        self._append({"type": "run", "store_version": STORE_VERSION, **meta})

    def append_result(
        self,
        key: str,
        models: dict[str, bool],
        explored: dict[str, int] | None = None,
        views: dict[str, list[dict]] | None = None,
    ) -> None:
        """Record one job's verdicts (canonical encoding, deterministic bytes).

        ``views`` maps model names to witness views in the wire format of
        :func:`repro.core.serialization.view_to_dict` (one entry per
        processor, sorted by processor name).  Without it a positive
        verdict is reduced to a boolean and the witness is lost — pass it
        (the engine's ``store_views`` option does) when the sweep's
        consumers need to re-validate or display witnesses.
        """
        if not key:
            raise EngineError("result records need a non-empty key")
        record: dict = {"type": "result", "key": key, "models": models}
        if explored is not None:
            record["explored"] = explored
        if views is not None:
            record["views"] = views
        self._append(record)

    def append_summary(self, summary: dict) -> None:
        """Record the end-of-run aggregate."""
        self._append({"type": "summary", **summary})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
