"""Append-only JSONL result store with resume support.

One line per record, three record types distinguished by ``"type"``:

``run``
    A run header: store-format version, the sweep's declarative spec,
    worker count, start timestamp, and how many keys were skipped by
    resume.  A resumed run appends a second header rather than rewriting
    history — the store is a log.
``result``
    One job's verdicts: ``{"type": "result", "key": ..., "models":
    {name: bool}, "explored": {name: int}}``.  Result lines are
    canonically encoded (sorted keys, minimal separators) so identical
    sweeps produce byte-identical result lines regardless of worker count.
``summary``
    End-of-run aggregate: metrics and per-model allowed counts.

Resume contract: :meth:`ResultStore.completed_keys` returns the keys of
every intact result line; a run killed mid-write leaves at most one
truncated trailing line, which is ignored on read and dropped before new
records are appended (so the log stays parseable).  An undecodable
*interior* line cannot be explained by a killed run — the file is corrupt
— so :meth:`ResultStore.records` raises :class:`~repro.core.errors.EngineError`
naming the line rather than resuming from a quietly incomplete skip-set.

Concurrent writers are supported: the append handle is opened with
``O_APPEND`` and every record goes to the kernel as a single ``write``,
so two processes (a server and a CLI sweep, say) sharing one store
interleave at *record* granularity, never mid-line.  Tail repair — the
one read-modify-write in the lifecycle — runs under an advisory
``flock`` where the platform provides one.

The record schema and the aggregation semantics over it are shared with
the content-addressed SQLite backend (:mod:`repro.engine.sqlstore`)
through :class:`BaseResultStore`; ``sweep --out`` and the serve
subsystem accept either backend via
:func:`repro.engine.sqlstore.open_store`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro.core.errors import EngineError

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = ["BaseResultStore", "JsonlLog", "ResultStore", "STORE_VERSION"]

#: Bumped on any incompatible change to the record format.
STORE_VERSION = 1


def _encode(record: dict) -> str:
    """Canonical one-line encoding (deterministic bytes for equal records)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class JsonlLog:
    """An append-only JSONL record log with truncated-tail repair.

    The storage substrate shared by :class:`ResultStore` and the
    differential fuzzer's discrepancy corpus
    (:class:`repro.diff.corpus.DiscrepancyCorpus`): one JSON record per
    line, appended via a single ``O_APPEND`` write per record (atomic
    with respect to other appenders), resumable after a kill.  Usable as
    a context manager; a killed run loses at most the record being
    written.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    # -- reading ----------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every intact record currently on disk, in file order.

        Only the *final* non-empty line may fail to decode — that is the
        truncated tail a killed run legitimately leaves behind, and it is
        skipped.  An undecodable line with records after it means the file
        is corrupt rather than merely truncated; resuming from it would
        silently re-run (or worse, skip) completed work, so it raises
        :class:`~repro.core.errors.EngineError` naming the line number.
        """
        if not self.path.exists():
            return
        undecodable: tuple[int, str] | None = None
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                if undecodable is not None:
                    bad_lineno, error = undecodable
                    raise EngineError(
                        f"{self.path}: undecodable record at line {bad_lineno} "
                        f"({error}); only the final line of a store may be "
                        "truncated — the file is corrupt"
                    )
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    undecodable = (lineno, str(exc))
                    continue
                if isinstance(record, dict):
                    yield record

    # -- writing ----------------------------------------------------------------

    def _repair_tail(self) -> None:
        """Drop a partial trailing line left by a killed run.

        A record line missing its newline was cut mid-write.  Merely
        newline-terminating it would turn it into an undecodable *interior*
        line — a read error — as soon as the next record lands after it, so
        the dead partial line is removed.  A complete-but-unterminated JSON
        line (a kill between the record and its newline) is kept and
        newline-terminated instead.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with self.path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
        data = self.path.read_bytes()
        head, _, tail = data.rpartition(b"\n")
        try:
            json.loads(tail.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            with self.path.open("wb") as fh:
                fh.write(head + b"\n" if head else b"")
        else:
            with self.path.open("ab") as fh:
                fh.write(b"\n")

    def _handle(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
            # Tail repair is the one read-modify-write in the log's life;
            # an advisory lock keeps two writers (a server and a CLI
            # sweep sharing the store) from repairing over each other.
            # O_APPEND makes the fd immune to the rewrite: appends land
            # at whatever the end of the file is afterwards.
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                self._repair_tail()
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
            self._fd = fd
        return self._fd

    def _append(self, record: dict) -> None:
        payload = (_encode(record) + "\n").encode("utf-8")
        fd = self._handle()
        # One write() per record: O_APPEND appends are atomic with
        # respect to each other, so concurrent writers interleave whole
        # records.  A partial write (possible in principle for huge
        # records) is completed by the loop; only a kill inside it can
        # leave a truncated tail, which the repair path handles.
        written = os.write(fd, payload)
        while written < len(payload):  # pragma: no cover - kernel-dependent
            written += os.write(fd, payload[written:])

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JsonlLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BaseResultStore:
    """The result-record schema and aggregation, backend-independent.

    Concrete backends — :class:`ResultStore` (JSONL) and
    :class:`~repro.engine.sqlstore.SqliteResultStore` — provide
    ``records()`` (every record in append order), ``_append(record)``,
    ``close()``, and the context-manager protocol; everything here is
    defined in terms of those, so the two backends cannot drift apart on
    what a record *means* (the parity property test in
    ``tests/engine/test_backend_parity.py`` holds them to it).
    """

    #: Lazily built completed-key cache; ``None`` until first use.
    _completed: set[str] | None = None

    # No abstract stubs here: this mixin sits *first* in ResultStore's
    # MRO, so stub definitions would shadow the backend's real
    # ``records``/``_append``.  Backends must supply both.

    # -- reading ----------------------------------------------------------------

    def results(self) -> Iterator[dict]:
        """The intact ``result`` records, in append order (streamed)."""
        return (r for r in self.records() if r.get("type") == "result")

    def completed_keys(self) -> set[str]:
        """Keys of every intact result record (the resume skip-set).

        Built by streaming the records once per open handle and kept
        current by :meth:`append_result`, so resuming against a large
        store pays the scan once rather than per call.  The returned set
        is the live cache — treat it as read-only.  Another writer's
        appends are not visible until this handle is reopened.
        """
        if self._completed is None:
            self._completed = {r["key"] for r in self.results() if "key" in r}
        return self._completed

    def latest_result(self, key: str) -> dict | None:
        """The current (last-wins) result record for ``key``, if any.

        A linear scan here; the SQLite backend answers it from its
        deduplicated index — one reason the serve subsystem prefers that
        backend for large stores.
        """
        found: dict | None = None
        for record in self.results():
            if record.get("key") == key:
                found = record
        return found

    def summarize(self) -> dict:
        """Aggregate the on-disk results: totals and per-model allowed counts.

        Resumed runs can legitimately leave several result records for
        the same key (a record appended just before a kill, re-run after
        an incomplete resume); counting them all would inflate
        ``allowed_counts``.  Records are therefore deduplicated by key
        with last-record-wins, and ``distinct_keys`` counts the same
        deduplicated set, so the two stay consistent.  The records are
        streamed — memory is bounded by the number of *distinct* keys,
        not the length of the log.
        """
        total = 0
        by_key: dict[str, dict] = {}
        for record in self.results():
            total += 1
            key = record.get("key")
            if key is not None:
                by_key[key] = record.get("models", {})  # last record wins
        counts: dict[str, int] = {}
        for models in by_key.values():
            for model, allowed in models.items():
                if allowed:
                    counts[model] = counts.get(model, 0) + 1
                else:
                    counts.setdefault(model, 0)
        return {
            "results": total,
            "distinct_keys": len(by_key),
            "allowed_counts": dict(sorted(counts.items())),
        }

    # -- record types ------------------------------------------------------------

    def append_run_header(self, meta: dict) -> None:
        """Record the start of a run (spec, workers, resume skip count)."""
        self._append({"type": "run", "store_version": STORE_VERSION, **meta})

    def append_result(
        self,
        key: str,
        models: dict[str, bool],
        explored: dict[str, int] | None = None,
        views: dict[str, list[dict]] | None = None,
    ) -> None:
        """Record one job's verdicts (canonical encoding, deterministic bytes).

        ``views`` maps model names to witness views in the wire format of
        :func:`repro.core.serialization.view_to_dict` (one entry per
        processor, sorted by processor name).  Without it a positive
        verdict is reduced to a boolean and the witness is lost — pass it
        (the engine's ``store_views`` option does) when the sweep's
        consumers need to re-validate or display witnesses.
        """
        if not key:
            raise EngineError("result records need a non-empty key")
        record: dict = {"type": "result", "key": key, "models": models}
        if explored is not None:
            record["explored"] = explored
        if views is not None:
            record["views"] = views
        self._append(record)
        if self._completed is not None:
            self._completed.add(key)

    def append_summary(self, summary: dict) -> None:
        """Record the end-of-run aggregate."""
        self._append({"type": "summary", **summary})

    def append_record(self, record: dict) -> None:
        """Append one raw record (the migration/import path).

        :func:`repro.engine.sqlstore.migrate_store` streams records
        between backends with this; normal writers use the typed
        ``append_*`` methods.
        """
        if not isinstance(record, dict) or "type" not in record:
            raise EngineError(f"not a store record: {record!r}")
        self._append(record)
        if (
            self._completed is not None
            and record.get("type") == "result"
            and "key" in record
        ):
            self._completed.add(record["key"])


class ResultStore(BaseResultStore, JsonlLog):
    """The append-only JSONL store of sweep results at ``path``."""

    def compact(self) -> dict:
        """Rewrite the log keeping only the *last* result record per key.

        Run and summary records are kept as-is (the log stays an audit
        trail of what ran); superseded result records — re-runs after an
        incomplete resume — are dropped.  The rewrite goes through a
        sibling temp file and an atomic rename, so a kill mid-compact
        leaves either the old or the new file, never a hybrid.  Returns
        ``{"kept": ..., "dropped": ...}``.
        """
        last_for_key: dict[str, int] = {}
        for index, record in enumerate(self.records()):
            if record.get("type") == "result" and "key" in record:
                last_for_key[record["key"]] = index
        keep = set(last_for_key.values())
        self.close()
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        kept = dropped = 0
        with tmp.open("w", encoding="utf-8") as out:
            for index, record in enumerate(self.records()):
                is_result = record.get("type") == "result" and "key" in record
                if is_result and index not in keep:
                    dropped += 1
                    continue
                out.write(_encode(record) + "\n")
                kept += 1
        os.replace(tmp, self.path)
        self._completed = None
        return {"kept": kept, "dropped": dropped}
