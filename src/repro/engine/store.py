"""Append-only JSONL result store with resume support.

One line per record, three record types distinguished by ``"type"``:

``run``
    A run header: store-format version, the sweep's declarative spec,
    worker count, start timestamp, and how many keys were skipped by
    resume.  A resumed run appends a second header rather than rewriting
    history — the store is a log.
``result``
    One job's verdicts: ``{"type": "result", "key": ..., "models":
    {name: bool}, "explored": {name: int}}``.  Result lines are
    canonically encoded (sorted keys, minimal separators) so identical
    sweeps produce byte-identical result lines regardless of worker count.
``summary``
    End-of-run aggregate: metrics and per-model allowed counts.

Resume contract: :meth:`ResultStore.completed_keys` returns the keys of
every intact result line; a run killed mid-write leaves at most one
truncated trailing line, which is ignored on read and dropped before new
records are appended (so the log stays parseable).  An undecodable
*interior* line cannot be explained by a killed run — the file is corrupt
— so :meth:`ResultStore.records` raises :class:`~repro.core.errors.EngineError`
naming the line rather than resuming from a quietly incomplete skip-set.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterator

from repro.core.errors import EngineError

__all__ = ["JsonlLog", "ResultStore", "STORE_VERSION"]

#: Bumped on any incompatible change to the record format.
STORE_VERSION = 1


def _encode(record: dict) -> str:
    """Canonical one-line encoding (deterministic bytes for equal records)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class JsonlLog:
    """An append-only JSONL record log with truncated-tail repair.

    The storage substrate shared by :class:`ResultStore` and the
    differential fuzzer's discrepancy corpus
    (:class:`repro.diff.corpus.DiscrepancyCorpus`): one JSON record per
    line, appended and flushed per record, resumable after a kill.  Usable
    as a context manager; writes are line-buffered and flushed per record
    so a killed run loses at most the line being written.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    # -- reading ----------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every intact record currently on disk, in file order.

        Only the *final* non-empty line may fail to decode — that is the
        truncated tail a killed run legitimately leaves behind, and it is
        skipped.  An undecodable line with records after it means the file
        is corrupt rather than merely truncated; resuming from it would
        silently re-run (or worse, skip) completed work, so it raises
        :class:`~repro.core.errors.EngineError` naming the line number.
        """
        if not self.path.exists():
            return
        undecodable: tuple[int, str] | None = None
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                if undecodable is not None:
                    bad_lineno, error = undecodable
                    raise EngineError(
                        f"{self.path}: undecodable record at line {bad_lineno} "
                        f"({error}); only the final line of a store may be "
                        "truncated — the file is corrupt"
                    )
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    undecodable = (lineno, str(exc))
                    continue
                if isinstance(record, dict):
                    yield record

    # -- writing ----------------------------------------------------------------

    def _repair_tail(self) -> None:
        """Drop a partial trailing line left by a killed run.

        A record line missing its newline was cut mid-write.  Merely
        newline-terminating it would turn it into an undecodable *interior*
        line — a read error — as soon as the next record lands after it, so
        the dead partial line is removed.  A complete-but-unterminated JSON
        line (a kill between the record and its newline) is kept and
        newline-terminated instead.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with self.path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
        data = self.path.read_bytes()
        head, _, tail = data.rpartition(b"\n")
        try:
            json.loads(tail.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            with self.path.open("wb") as fh:
                fh.write(head + b"\n" if head else b"")
        else:
            with self.path.open("ab") as fh:
                fh.write(b"\n")

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_tail()
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def _append(self, record: dict) -> None:
        fh = self._handle()
        fh.write(_encode(record) + "\n")
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ResultStore(JsonlLog):
    """An append-only JSONL store of sweep results at ``path``."""

    def results(self) -> list[dict]:
        """The intact ``result`` records, in file order."""
        return [r for r in self.records() if r.get("type") == "result"]

    def completed_keys(self) -> set[str]:
        """Keys of every intact result record (the resume skip-set)."""
        return {r["key"] for r in self.results() if "key" in r}

    def summarize(self) -> dict:
        """Aggregate the on-disk results: totals and per-model allowed counts.

        Resumed runs can legitimately leave several result lines for the
        same key (a record appended just before a kill, re-run after an
        incomplete resume); counting them all would inflate
        ``allowed_counts``.  Records are therefore deduplicated by key with
        last-record-wins, and ``distinct_keys`` counts the same deduplicated
        set, so the two stay consistent.
        """
        results = self.results()
        by_key: dict[str, dict] = {}
        for record in results:
            key = record.get("key")
            if key is not None:
                by_key[key] = record  # last record for a key wins
        counts: dict[str, int] = {}
        for record in by_key.values():
            for model, allowed in record.get("models", {}).items():
                if allowed:
                    counts[model] = counts.get(model, 0) + 1
                else:
                    counts.setdefault(model, 0)
        return {
            "results": len(results),
            "distinct_keys": len(by_key),
            "allowed_counts": dict(sorted(counts.items())),
        }

    # -- record types ------------------------------------------------------------

    def append_run_header(self, meta: dict) -> None:
        """Record the start of a run (spec, workers, resume skip count)."""
        self._append({"type": "run", "store_version": STORE_VERSION, **meta})

    def append_result(
        self,
        key: str,
        models: dict[str, bool],
        explored: dict[str, int] | None = None,
        views: dict[str, list[dict]] | None = None,
    ) -> None:
        """Record one job's verdicts (canonical encoding, deterministic bytes).

        ``views`` maps model names to witness views in the wire format of
        :func:`repro.core.serialization.view_to_dict` (one entry per
        processor, sorted by processor name).  Without it a positive
        verdict is reduced to a boolean and the witness is lost — pass it
        (the engine's ``store_views`` option does) when the sweep's
        consumers need to re-validate or display witnesses.
        """
        if not key:
            raise EngineError("result records need a non-empty key")
        record: dict = {"type": "result", "key": key, "models": models}
        if explored is not None:
            record["explored"] = explored
        if views is not None:
            record["views"] = views
        self._append(record)

    def append_summary(self, summary: dict) -> None:
        """Record the end-of-run aggregate."""
        self._append({"type": "summary", **summary})
