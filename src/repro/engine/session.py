"""Session-aware incremental checking: one stream, many models, one memo.

The kernel's :class:`~repro.kernel.incremental.IncrementalCheck` answers
per-op admit/deny for *one* compiled spec.  The workload the serve layer
and ``python -m repro check --stream`` actually run is a *session*: a
client appends one operation at a time and wants the verdict under a
whole model set after every append.  :class:`EngineSession` is that
coordinator:

* one shared :class:`~repro.kernel.incremental.HistoryStream` — the
  history is appended to (and the compiled plane grown) exactly once per
  operation, not once per model;
* one :class:`~repro.kernel.incremental.IncrementalCheck` per model,
  each keeping its own prefix failure memory and verdict log;
* one session-held :class:`~repro.orders.memo.RelationMemo`, activated
  around every append so the models of a single prefix share the derived
  order relations (po/ppo/rf/wb are functions of the history, not the
  spec) the way an engine sweep shares them across a batch.

Sessions are single-threaded by contract — the serve layer serializes
appends per session with a lock.  The kernel's plane cache is a bounded
LRU keyed per history, so interleaved live sessions each keep their own
entry; streams still re-install defensively before every check, so even
a cache blown by unrelated churn only costs a recompile, never
correctness.
"""

from __future__ import annotations

import re

from repro.checking.models import MODELS, PAPER_MODELS
from repro.core.errors import EngineError
from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.kernel.incremental import HistoryStream, IncrementalCheck
from repro.kernel.results import CheckResult
from repro.kernel.search import SearchBudget
from repro.litmus.dsl import parse_operations
from repro.orders.memo import RelationMemo, relation_memo

__all__ = ["EngineSession", "parse_op_line"]

_LINE_RE = re.compile(r"^\s*(?P<proc>[A-Za-z_][A-Za-z0-9_]*)\s*:\s*(?P<body>.+)$")


def parse_op_line(line: str) -> tuple[Operation, ...]:
    """Parse one streamed input line, ``proc: op [op ...]``, into operations.

    The per-op wire format of the session endpoints and of
    ``check --stream``: the same row notation the litmus DSL uses, one
    processor per line, one or more operations.  The returned operations
    carry provisional program-order indices starting at 0 — the
    receiving stream re-indexes them onto the processor's real tail.

    Raises
    ------
    EngineError
        When the line has no ``proc:`` prefix or no parseable operation
        (the serve layer maps this to HTTP 400).
    """
    m = _LINE_RE.match(line)
    if m is None:
        raise EngineError(
            f"bad op line {line.strip()!r} (expected 'proc: op [op ...]', "
            "e.g. 'p: w(x)1')"
        )
    try:
        ops = parse_operations(m.group("proc"), m.group("body"))
    except Exception as exc:
        raise EngineError(f"bad op line {line.strip()!r}: {exc}") from exc
    if not ops:
        raise EngineError(f"op line {line.strip()!r} contains no operations")
    return ops


class EngineSession:
    """A growing history checked incrementally under a model set.

    Parameters
    ----------
    models:
        Model names to track; every name must be registered and
        spec-backed (incremental checking drives the kernel, not the
        per-model fast paths).  Defaults to the paper's Figure 5 set.
    history:
        Optional seed prefix; its verdict is computed eagerly so the
        first streamed append already has a predecessor to extend.
    budget, prepass:
        Forwarded to every check, exactly as ``check_with_spec`` takes
        them — verdict fidelity to the one-shot kernel is per-argument.
    """

    def __init__(
        self,
        models: tuple[str, ...] | None = None,
        *,
        history: SystemHistory | None = None,
        budget: SearchBudget | None = None,
        prepass: bool = False,
    ) -> None:
        names = tuple(models) if models is not None else PAPER_MODELS
        if not names:
            raise EngineError("a session needs at least one model")
        for name in names:
            model = MODELS.get(name)
            if model is None:
                raise EngineError(
                    f"unknown model {name!r}; known: {', '.join(MODELS)}"
                )
            if model.spec is None:
                raise EngineError(
                    f"{name} has no framework spec; incremental sessions "
                    "need spec-backed models"
                )
        self.models = names
        self.prepass = prepass
        self.stream = HistoryStream(history)
        # The session's relation memo: po/ppo/rf/wb of the *current*
        # prefix, shared across the model set of one append.  Two tables
        # keep the just-replaced prefix warm for stragglers.
        self.memo = RelationMemo(max_histories=2)
        self.checks: dict[str, IncrementalCheck] = {
            name: IncrementalCheck(
                MODELS[name].spec,  # type: ignore[arg-type]  # validated above
                self.stream,
                budget=budget,
                prepass=prepass,
            )
            for name in names
        }
        self.appends = 0
        with relation_memo(self.memo):
            self.last_results: dict[str, CheckResult] = {
                name: check.check() for name, check in self.checks.items()
            }

    # -- the streaming API -------------------------------------------------------

    def append(self, op: Operation) -> dict[str, CheckResult]:
        """Append one operation; return every model's verdict on the new prefix.

        The stream grows once; each model's session reacts to the shared
        append.  Every returned :class:`CheckResult` is byte-identical to
        a fresh ``check_with_spec`` of the extended history.
        """
        placed, reused = self.stream.append(op)
        self.appends += 1
        results: dict[str, CheckResult] = {}
        with relation_memo(self.memo):
            for name, check in self.checks.items():
                results[name] = check.on_appended((placed,), reused)
        self.last_results = results
        return results

    def append_line(
        self, line: str
    ) -> list[tuple[Operation, dict[str, CheckResult]]]:
        """Append every operation of one ``proc: op [op ...]`` input line.

        Operations are appended strictly left to right, each producing a
        full per-model verdict map — the return value is the per-op
        verdict log of the line, in order.
        """
        out = []
        for op in parse_op_line(line):
            placed_results = self.append(op)
            # history.operations groups by processor, so the newest op is
            # the tail of *its processor's* program order, not of the list.
            placed = list(self.stream.history.ops_of(op.proc))[-1]
            out.append((placed, placed_results))
        return out

    # -- introspection -----------------------------------------------------------

    @property
    def history(self) -> SystemHistory:
        """The session's current history (seed plus every append)."""
        return self.stream.history

    def verdicts(self) -> dict[str, bool]:
        """The latest admit/deny verdict per model."""
        return {name: r.allowed for name, r in self.last_results.items()}

    def denying(self) -> tuple[str, ...]:
        """The models currently denying the prefix, in session order."""
        return tuple(
            name for name, r in self.last_results.items() if not r.allowed
        )
