"""repro.engine — parallel batch-checking with relation caching.

The engine turns "check these histories against these models" into a
declarative, resumable, parallelizable workload:

- :mod:`repro.engine.jobs` — :class:`SweepSpec` describes the workload
  (history source × model set) and expands it into stable-keyed
  :class:`CheckJob` units.
- :mod:`repro.engine.pool` — :class:`CheckEngine` executes jobs serially
  or on a multiprocessing pool; results are byte-identical either way.
- :mod:`repro.engine.cache` — :class:`RelationCache` computes each
  history's order-relation substrate once and shares it across models.
- :mod:`repro.engine.store` — :class:`ResultStore`, the append-only JSONL
  log with resume-by-key support.
- :mod:`repro.engine.sqlstore` — :class:`SqliteResultStore`, the
  content-addressed SQLite backend (same schema, dedup-on-insert,
  WAL), plus the :func:`open_store` URL factory and
  :func:`migrate_store`.
- :mod:`repro.engine.metrics` — :class:`EngineMetrics` counters/timers.
- :mod:`repro.engine.session` — :class:`EngineSession`, the incremental
  front end: one growing history checked under a model set after every
  appended operation (what ``repro serve`` sessions and
  ``check --stream`` drive).

Quickstart::

    from repro.engine import CheckEngine, SweepSpec, ResultStore

    spec = SweepSpec(source="catalog", models=("SC", "TSO", "PC"))
    with ResultStore("results.jsonl") as store:
        report = CheckEngine(jobs=4).run(spec, store=store)
    print(report.render())
"""

from repro.engine.cache import RelationCache
from repro.engine.jobs import SOURCES, CheckJob, SweepSpec
from repro.engine.metrics import EngineMetrics
from repro.engine.pool import DEFAULT_CACHE_HISTORIES, CheckEngine, SweepReport
from repro.engine.session import EngineSession, parse_op_line
from repro.engine.sqlstore import SqliteResultStore, migrate_store, open_store
from repro.engine.store import (
    STORE_VERSION,
    BaseResultStore,
    JsonlLog,
    ResultStore,
)

__all__ = [
    "BaseResultStore",
    "CheckEngine",
    "CheckJob",
    "DEFAULT_CACHE_HISTORIES",
    "EngineMetrics",
    "EngineSession",
    "JsonlLog",
    "RelationCache",
    "ResultStore",
    "SOURCES",
    "STORE_VERSION",
    "SqliteResultStore",
    "SweepReport",
    "SweepSpec",
    "migrate_store",
    "open_store",
    "parse_op_line",
]
