"""The shared-memory plane arena: zero-copy history transport for warm pools.

A cold :class:`~repro.engine.pool.CheckEngine` worker receives every job's
history as a pickled wire dict and recompiles its
:class:`~repro.kernel.constraints.HistoryPlane` from scratch.  A *warm*
engine instead writes each history once into a
:class:`multiprocessing.shared_memory` segment — the wire dict plus the
plane's compiled unique-attribution ordering masks, packed as raw
little-endian ``uint64`` words (the numpy backend's native matrix form) —
and ships jobs as segment names.  Workers attach (a zero-copy mapping, no
pickle byte-stream per job), rebuild the history from the header, seed
the plane's mask cache from the packed words, and install the result into
the kernel's plane LRU, so repeated sweeps over the same corpus skip both
serialization and recompilation.

Ownership is strictly parent-side: the arena that :meth:`PlaneArena.put`
a segment is the only thing that ever unlinks it.  Workers attach and
close within :meth:`PlaneArena.load`; a worker killed mid-job therefore
cannot leak a segment — its mapping dies with the process and the parent
unlinks the name on eviction, :meth:`PlaneArena.close`, or garbage
collection (a ``weakref.finalize`` guard).  Crash/cleanup behavior is
pinned by ``tests/engine/test_arena.py``.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

from repro.core.errors import EngineError
from repro.core.history import SystemHistory
from repro.core.serialization import history_from_dict, history_to_dict
from repro.kernel.constraints import HistoryPlane, history_plane
from repro.spec.parameters import CAUSAL, PO, PO_LOC, PO_SYNC, PPO, SEMI_CAUSAL

__all__ = ["PlaneArena", "encode_plane", "decode_plane", "plane_key"]

#: Ordering rules whose compiled mask rows travel through the arena,
#: resolved by name on the worker side (the rule objects are module
#: singletons, shared by every spec that uses them).
_RULES = {rule.name: rule for rule in (PO, PO_LOC, PO_SYNC, PPO, CAUSAL, SEMI_CAUSAL)}


def plane_key(history: SystemHistory) -> str:
    """A content key for ``history``: a hash of its canonical wire form.

    The warm engine keys arena segments with this rather than with job
    keys — job keys are *not* injective across sweep specs (``random``
    keys omit the history shape, ``space`` keys omit the location set),
    so two sweeps on one long-lived daemon could collide a key onto two
    different histories and make workers decode the stale one.  Hashing
    the wire dict makes collisions impossible in practice and dedupes
    value-equal histories across sweeps for free.
    """
    wire = json.dumps(history_to_dict(history), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(wire.encode()).hexdigest()


def encode_plane(history: SystemHistory, plane: HistoryPlane | None = None) -> bytes:
    """Pack ``history`` and its compiled plane masks into arena bytes.

    Layout: an 8-byte little-endian header length, a JSON header (the
    history wire dict plus a directory of mask sections), then the mask
    rows as raw little-endian ``uint64`` words, ``n`` words per section
    in directory order.  Only unique-attribution mask rows are packed
    (they are pure functions of the history); per-spec own-view
    restrictions are cheap to rebuild and stay out.
    """
    if plane is None:
        plane = history_plane(history)
    sections: list[dict[str, object]] = []
    rows: list[int] = []
    for key, value in plane.masks.items():
        if isinstance(key, tuple):
            continue  # own-view restrictions: derived on demand
        if key == "prop":
            src_idx, prop = value
            sections.append(
                {"kind": "prop", "src": [[ir, isrc] for ir, isrc in src_idx.items()]}
            )
            rows.extend(prop)
        elif key == "bracketing":
            sections.append({"kind": "bracketing"})
            rows.extend(value)
        else:
            name = getattr(key, "name", None)
            if name is None or _RULES.get(name) is not key:
                continue
            sections.append({"kind": "rule", "name": name})
            rows.extend(value)
    header = json.dumps(
        {
            "history": history_to_dict(history),
            "n": plane.n,
            "words": len(rows),
            "sections": sections,
        },
        separators=(",", ":"),
    ).encode()
    packed = np.asarray(rows, dtype="<u8").tobytes()
    return len(header).to_bytes(8, "little") + header + packed


def decode_plane(buf: memoryview | bytes) -> tuple[SystemHistory, HistoryPlane]:
    """Rebuild a history and a mask-seeded plane from arena bytes.

    The inverse of :func:`encode_plane`; the mask words are read through
    a zero-copy :func:`numpy.frombuffer` view of the segment and only the
    rows themselves are materialized as Python ints.  The seeded plane is
    value-identical to ``HistoryPlane(history)`` with its caches warm.
    """
    head_len = int.from_bytes(bytes(buf[:8]), "little")
    header = json.loads(bytes(buf[8 : 8 + head_len]))
    history = history_from_dict(header["history"])
    plane = HistoryPlane(history)
    n = int(header["n"])
    if n != plane.n:
        raise EngineError(
            f"arena payload universe mismatch: header says {n}, history has {plane.n}"
        )
    # The header records the exact word count: shared-memory segments may
    # be rounded up to a page (macOS always does), and frombuffer over the
    # whole remainder would demand a multiple-of-8 byte count.  An explicit
    # count ignores any trailing padding.
    total_words = int(header.get("words", n * len(header["sections"])))
    words = np.frombuffer(buf, dtype="<u8", offset=8 + head_len, count=total_words)
    for i, section in enumerate(header["sections"]):
        row: list[int] = words[i * n : (i + 1) * n].tolist()
        kind = section["kind"]
        if kind == "prop":
            src_idx = {int(ir): int(isrc) for ir, isrc in section["src"]}
            plane.masks["prop"] = (src_idx, row)
        elif kind == "bracketing":
            plane.masks["bracketing"] = row
        else:
            plane.masks[_RULES[section["name"]]] = row
    return history, plane


def _release_segments(segments: "OrderedDict[str, shared_memory.SharedMemory]") -> None:
    """Close and unlink every owned segment (idempotent)."""
    while segments:
        _, shm = segments.popitem(last=False)
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class PlaneArena:
    """A parent-owned, bounded, keyed LRU of shared-memory plane segments.

    ``put`` is idempotent per key (a repeat run of the same sweep writes
    nothing), eviction unlinks the oldest segment, and :meth:`close`
    releases everything — also triggered from a finalizer so an engine
    that is simply dropped cannot leak ``/dev/shm`` entries.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise EngineError(f"arena capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._segments: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
        self._finalizer = weakref.finalize(self, _release_segments, self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, key: str) -> bool:
        return key in self._segments

    def put(
        self, key: str, history: SystemHistory, plane: HistoryPlane | None = None
    ) -> str:
        """Ensure ``key``'s payload is resident; returns its segment name.

        A repeat ``put`` trusts the existing payload, so a key must always
        denote the same history for the lifetime of the arena.  The warm
        engine guarantees this by keying with :func:`plane_key` (a content
        hash of the history), never with job keys, which collide across
        sweep specs.
        """
        shm = self._segments.get(key)
        if shm is not None:
            self._segments.move_to_end(key)
            return shm.name
        data = encode_plane(history, plane)
        shm = shared_memory.SharedMemory(create=True, size=len(data))
        shm.buf[: len(data)] = data
        self._segments[key] = shm
        while len(self._segments) > self.capacity:
            _, old = self._segments.popitem(last=False)
            old.close()
            old.unlink()
        return shm.name

    def reserve(self, count: int) -> None:
        """Grow capacity to at least ``count`` segments (never shrinks).

        The warm engine calls this with the sweep's job count before
        building payloads: every payload carries a segment *name*, so an
        eviction between ``put`` and the worker's attach would unlink a
        segment that is still queued and fail the attach with
        ``FileNotFoundError``.  Sizing the arena to the sweep up front
        makes mid-build eviction of this sweep's segments impossible —
        eviction can then only retire segments older than the sweep.
        """
        if count > self.capacity:
            self.capacity = count

    def release(self, key: str) -> None:
        """Unlink one key's segment (a no-op for unknown keys)."""
        shm = self._segments.pop(key, None)
        if shm is not None:
            shm.close()
            shm.unlink()

    def close(self) -> None:
        """Unlink every owned segment; the arena is reusable afterwards."""
        _release_segments(self._segments)

    def __enter__(self) -> "PlaneArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def load(name: str) -> tuple[SystemHistory, HistoryPlane]:
        """Attach, decode, and detach one segment (the worker side).

        The attachment is dropped before returning — decoded rows are
        plain Python ints, so nothing references the mapping.  Where the
        interpreter supports it (3.13+) the attach opts out of resource
        tracking entirely: the parent owns the segment.  On older
        interpreters the attach-side registration is tolerated — the
        engine's workers are forked, so they share the parent's tracker
        process and the duplicate registration is a set-add no-op that
        the parent's own unlink retires.
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13
            shm = shared_memory.SharedMemory(name=name)
        try:
            return decode_plane(shm.buf)
        finally:
            shm.close()
