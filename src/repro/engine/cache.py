"""The engine's relation cache: one substrate computation per history.

A batch check of one history against M models re-derives the same order
relations — program order, partial program order, the reads-from
attribution, writes-before — up to M times.  :class:`RelationCache`
extends the generic :class:`~repro.orders.memo.RelationMemo` so that the
engine computes that substrate once per history and shares it across every
model check, and it keys entries by the *canonical history key* of
:func:`repro.lattice.enumeration.canonical_key` so that the cache survives
re-parsing (two parses of the same litmus text are distinct objects with
one canonical key).

Canonical keys identify histories up to processor/location renaming, but a
relation computed for one history names that history's concrete operations
and is meaningless for a renamed twin.  Each cache entry therefore records
the concrete history it was computed from; a lookup whose history differs
from the recorded one replaces the entry (counted as misses).  The engine
deduplicates renamed twins upstream, so replacement is rare in practice.
"""

from __future__ import annotations

from typing import Any

from repro.core.history import SystemHistory
from repro.lattice.enumeration import canonical_key
from repro.orders.memo import RelationMemo, relation_memo

__all__ = ["RelationCache", "HistorySubstrate"]

#: The named relations :meth:`RelationCache.substrate` precomputes.
HistorySubstrate = dict[str, Any]


class RelationCache(RelationMemo):
    """A :class:`RelationMemo` keyed by canonical history key.

    Drop-in compatible with :func:`repro.orders.memo.relation_memo`; the
    engine activates one instance around every model check of a history.
    """

    __slots__ = ("_ckeys",)

    def __init__(self, max_histories: int = 256) -> None:
        super().__init__(max_histories)
        # history -> canonical key, evicted alongside the tables.
        self._ckeys: dict[SystemHistory, tuple] = {}

    def _table(self, history: SystemHistory) -> dict[str, Any]:
        key = self._ckeys.get(history)
        if key is None:
            key = canonical_key(history)
            self._ckeys[history] = key
        entry = self._tables.get(key)
        if entry is None or entry["history"] != history:
            # First sight of this key, or a renamed twin: start fresh.
            entry = {"history": history, "values": {}}
            self._tables[key] = entry
            while len(self._tables) > self.max_histories:
                _, evicted = self._tables.popitem(last=False)
                self._ckeys.pop(evicted["history"], None)
        else:
            self._tables.move_to_end(key)
        return entry["values"]

    def clear(self) -> None:
        super().clear()
        self._ckeys.clear()

    # -- eager substrate -------------------------------------------------------

    def substrate(self, history: SystemHistory) -> HistorySubstrate:
        """Compute (or fetch) the full relation substrate of ``history``.

        Returns the program order, partial program order, reads-from
        attribution, and writes-before relation, each also left in the
        cache for the checkers to pick up.  ``reads_from`` and ``wb`` are
        ``None`` when the history's reads-from attribution is ambiguous
        (duplicate write values); the checkers then enumerate attributions
        themselves and the cache simply serves the order relations.
        """
        from repro.orders.program_order import po_relation, ppo_relation
        from repro.orders.writes_before import unambiguous_reads_from, wb_relation

        with relation_memo(self):
            reads_from = unambiguous_reads_from(history)
            wb = wb_relation(history) if reads_from is not None else None
            return {
                "po": po_relation(history),
                "ppo": ppo_relation(history),
                "reads_from": reads_from,
                "wb": wb,
            }
