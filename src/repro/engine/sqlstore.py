"""Content-addressed SQLite result store: the queryable-at-scale backend.

The JSONL store (:mod:`repro.engine.store`) is a log — perfect for
append-heavy sweeps, linear to read.  This backend keeps the *same
record schema and resume contract* but lands every record in SQLite so
millions of results stay queryable:

* an append-ordered ``log`` table preserves the exact record stream
  (``records()`` replays it byte-for-record identically to a JSONL
  store given the same appends — the parity property test holds both
  backends to this);
* a ``results`` index table is **deduplicated on insert** by the
  canonical job key (last record wins, matching the JSONL store's
  ``summarize`` semantics), so ``completed_keys`` and ``summarize`` are
  index lookups, not file scans;
* WAL journaling lets a server append while a CLI reads;
* :meth:`SqliteResultStore.compact` drops superseded result records
  from the log and vacuums.

Durability semantics differ from JSONL in exactly one way, by design: a
killed JSONL run leaves a truncated tail that tail-repair drops; a
killed SQLite run leaves an uncommitted transaction that rollback
drops.  Either way the store reopens to a prefix of the record stream.

:func:`open_store` is the store-URL factory both ``sweep --out`` and
the serve subsystem use: ``sqlite:path`` / ``*.sqlite`` / ``*.db`` open
this backend, ``jsonl:path`` / anything else the JSONL one.
:func:`migrate_store` streams any store into any other (the ``python
-m repro store migrate`` verb).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Iterator

from repro.core.errors import EngineError
from repro.engine.store import BaseResultStore, ResultStore

__all__ = ["SqliteResultStore", "open_store", "migrate_store"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS log (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    type   TEXT NOT NULL,
    key    TEXT,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key    TEXT PRIMARY KEY,
    log_id INTEGER NOT NULL,
    record TEXT NOT NULL
) WITHOUT ROWID;
"""

#: Rows fetched per round-trip when streaming ``records()``.
_FETCH_CHUNK = 256


class SqliteResultStore(BaseResultStore):
    """A result store backed by SQLite at ``path``.

    Same API and record schema as the JSONL :class:`ResultStore`; safe
    for appends from several threads of one process (a lock serializes
    statements) and — via WAL — for concurrent reader processes.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._lock = threading.Lock()

    # -- connection --------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            with self._lock:
                if self._conn is None:  # double-checked: races with peers
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    conn = sqlite3.connect(self.path, check_same_thread=False)
                    conn.execute("PRAGMA journal_mode=WAL")
                    conn.execute("PRAGMA synchronous=NORMAL")
                    conn.executescript(_SCHEMA)
                    conn.commit()
                    self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SqliteResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ----------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every record in append order (streamed in chunks)."""
        conn = self._connect()
        last_id = 0
        while True:
            with self._lock:
                rows = conn.execute(
                    "SELECT id, record FROM log WHERE id > ? ORDER BY id LIMIT ?",
                    (last_id, _FETCH_CHUNK),
                ).fetchall()
            if not rows:
                return
            for row_id, payload in rows:
                last_id = row_id
                try:
                    record = json.loads(payload)
                except json.JSONDecodeError as exc:  # pragma: no cover
                    raise EngineError(
                        f"{self.path}: undecodable record at log id {row_id} "
                        f"({exc}); the store is corrupt"
                    ) from exc
                yield record

    def completed_keys(self) -> set[str]:
        """The resume skip-set, straight off the deduplicated index."""
        if self._completed is None:
            conn = self._connect()
            with self._lock:
                rows = conn.execute("SELECT key FROM results").fetchall()
            self._completed = {key for (key,) in rows}
        return self._completed

    def latest_result(self, key: str) -> dict | None:
        """The current (last-wins) result record for ``key``, if any."""
        conn = self._connect()
        with self._lock:
            row = conn.execute(
                "SELECT record FROM results WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def summarize(self) -> dict:
        """Same aggregate as the JSONL backend, computed off the index."""
        conn = self._connect()
        with self._lock:
            (total,) = conn.execute(
                "SELECT COUNT(*) FROM log WHERE type = 'result'"
            ).fetchone()
            rows = conn.execute("SELECT record FROM results").fetchall()
        counts: dict[str, int] = {}
        for (payload,) in rows:
            for model, allowed in json.loads(payload).get("models", {}).items():
                if allowed:
                    counts[model] = counts.get(model, 0) + 1
                else:
                    counts.setdefault(model, 0)
        return {
            "results": total,
            "distinct_keys": len(rows),
            "allowed_counts": dict(sorted(counts.items())),
        }

    # -- writing ----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        key = record.get("key") if record.get("type") == "result" else None
        conn = self._connect()
        with self._lock:
            cursor = conn.execute(
                "INSERT INTO log (type, key, record) VALUES (?, ?, ?)",
                (record.get("type", ""), key, payload),
            )
            if key is not None:
                # Dedup-on-insert: the index keeps one row per canonical
                # job key, last record wins (the JSONL summarize rule).
                conn.execute(
                    "INSERT INTO results (key, log_id, record) VALUES (?, ?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET "
                    "log_id = excluded.log_id, record = excluded.record",
                    (key, cursor.lastrowid, payload),
                )
            conn.commit()

    def compact(self) -> dict:
        """Drop superseded result records from the log and vacuum.

        Keeps every run/summary record and, per key, only the result
        record the index points at — after which ``records()`` replays
        the same stream a compacted JSONL store would.  Returns
        ``{"kept": ..., "dropped": ...}``.
        """
        conn = self._connect()
        with self._lock:
            (dropped,) = conn.execute(
                "SELECT COUNT(*) FROM log WHERE type = 'result' "
                "AND id NOT IN (SELECT log_id FROM results)"
            ).fetchone()
            conn.execute(
                "DELETE FROM log WHERE type = 'result' "
                "AND id NOT IN (SELECT log_id FROM results)"
            )
            conn.commit()
            (kept,) = conn.execute("SELECT COUNT(*) FROM log").fetchone()
            conn.execute("VACUUM")
        return {"kept": kept, "dropped": dropped}


# -- the store-URL factory ------------------------------------------------------

#: File suffixes that select the SQLite backend without a URL scheme.
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}


def open_store(url: str | os.PathLike) -> BaseResultStore:
    """A result store from a store URL (or bare path).

    ``sqlite:PATH`` and paths ending in ``.sqlite``/``.sqlite3``/``.db``
    open the SQLite backend; ``jsonl:PATH`` and every other path the
    JSONL backend.  Both ``python -m repro sweep --out`` and the serve
    subsystem's ``--store`` resolve their argument through here.
    """
    text = os.fspath(url)
    if text.startswith("sqlite:"):
        rest = text[len("sqlite:") :]
        if not rest:
            raise EngineError(f"store URL {text!r} has an empty path")
        return SqliteResultStore(rest)
    if text.startswith("jsonl:"):
        rest = text[len("jsonl:") :]
        if not rest:
            raise EngineError(f"store URL {text!r} has an empty path")
        return ResultStore(rest)
    if Path(text).suffix.lower() in _SQLITE_SUFFIXES:
        return SqliteResultStore(text)
    return ResultStore(text)


def migrate_store(source: str | os.PathLike, dest: str | os.PathLike) -> dict:
    """Stream every record of ``source`` into ``dest`` (either backend).

    The import preserves append order, so the destination's
    ``records()``, ``completed_keys()``, and ``summarize()`` match the
    source's exactly — the acceptance check of ``python -m repro store
    migrate``.  Returns ``{"records": N, "summary": dest.summarize()}``.
    """
    with open_store(source) as src, open_store(dest) as dst:
        count = 0
        for record in src.records():
            dst.append_record(record)
            count += 1
        return {"records": count, "summary": dst.summarize()}
