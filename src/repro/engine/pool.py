"""The batch-checking executor: serial or multiprocessing, same results.

:class:`CheckEngine` runs the jobs of a :class:`~repro.engine.jobs.SweepSpec`
either in-process (``jobs=1``) or on a :mod:`multiprocessing` pool with
per-worker warm model registries and relation caches.  Dispatch is chunked
and ordered (``Pool.imap`` over deterministic chunks), so the stream of
result records — and therefore the bytes in the result store — is identical
for any worker count.

Histories cross the process boundary in the versioned wire format of
:mod:`repro.core.serialization` rather than as pickled objects, keeping the
protocol stable and start-method agnostic (fork and spawn both work).

A *persistent* engine (``persistent=True``) is the warm-daemon variant the
serve layer runs on: the worker pool is created once and reused across
runs, and sweep payloads travel through the shared-memory
:class:`~repro.engine.arena.PlaneArena` — one segment per distinct
history (keyed by :func:`~repro.engine.arena.plane_key` content hash)
holding the history plus its compiled plane masks — so a repeated sweep
re-pickles nothing and workers skip recompilation by installing the
decoded plane into the kernel's plane LRU.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.checking.models import MODELS, check, model_names
from repro.core.errors import EngineError
from repro.core.history import SystemHistory
from repro.core.serialization import history_from_dict, history_to_dict, view_to_dict
from repro.engine.arena import PlaneArena, plane_key
from repro.engine.cache import RelationCache
from repro.engine.jobs import SweepSpec
from repro.engine.metrics import EngineMetrics
from repro.engine.store import ResultStore
from repro.kernel.backend import set_backend, use_backend
from repro.kernel.constraints import install_plane
from repro.orders.memo import relation_memo

__all__ = ["CheckEngine", "SweepReport", "DEFAULT_CACHE_HISTORIES"]

#: Per-worker bound on distinct histories held in the relation cache.
DEFAULT_CACHE_HISTORIES = 256

#: One unit of worker input: (key, payload dict, model names).  The payload
#: is either a history wire dict or an arena marker
#: ``{"__arena__": segment_name}`` (see :func:`_payload_history`).
_Payload = tuple[str, dict, tuple[str, ...]]

# Per-worker state, installed by the pool initializer (one per process).
_WORKER_STATE: dict | None = None


def _fresh_state(
    cache_histories: int = DEFAULT_CACHE_HISTORIES,
    store_views: bool = False,
    prepass: bool = True,
) -> dict:
    return {
        "cache": RelationCache(max_histories=cache_histories),
        "store_views": store_views,
        "prepass": prepass,
        # Attach cache for arena payloads: segment name -> decoded history,
        # bounded like the relation cache.  A hit costs one dict lookup and
        # keeps the previously installed plane warm.
        "arena": OrderedDict(),
        "arena_bound": cache_histories,
    }


def _payload_history(payload: dict, state: dict) -> SystemHistory:
    """Materialize a payload's history: wire dict, or shared-memory segment.

    Arena payloads are decoded once per worker and cached by segment name;
    the decoded plane is installed into the kernel's plane LRU so every
    check of the history — this job and later jobs alike — compiles
    nothing the parent already compiled.
    """
    name = payload.get("__arena__")
    if name is None:
        return history_from_dict(payload)
    attach_cache: OrderedDict = state["arena"]
    cached = attach_cache.get(name)
    if cached is not None:
        attach_cache.move_to_end(name)
        return cached
    history, plane = PlaneArena.load(name)
    install_plane(history, plane)
    attach_cache[name] = history
    while len(attach_cache) > state["arena_bound"]:
        attach_cache.popitem(last=False)
    return history


def _warm_models() -> None:
    """Prime every registered checker on a two-operation history.

    Pays first-touch costs (lazy imports, NumPy initialisation, module
    setup) once per worker instead of inside the first timed job.
    """
    from repro.litmus import parse_history

    tiny = parse_history("p: w(x)1 | q: r(x)1")
    for name in model_names():
        check(tiny, name)


def _init_worker(
    cache_histories: int,
    store_views: bool,
    prepass: bool,
    backend: str | None = None,
) -> None:
    global _WORKER_STATE
    if backend is not None:
        set_backend(backend)
    _warm_models()
    _WORKER_STATE = _fresh_state(cache_histories, store_views, prepass)


def _run_chunk_impl(chunk: Sequence[_Payload], state: dict) -> dict:
    """Check every payload of ``chunk``; returns records plus cache deltas."""
    # Lazy import: the static layer sits above the kernel, and the engine
    # only needs it when the pre-pass is enabled.
    from repro.staticcheck.prepass import prepass_check

    cache: RelationCache = state["cache"]
    store_views: bool = state.get("store_views", False)
    prepass: bool = state.get("prepass", True)
    hits0, misses0 = cache.hits, cache.misses
    prepass_decided = 0
    prepass_admitted = 0
    # Per-phase wall time across the chunk: the static pre-pass vs the
    # decision procedure itself (folded into EngineMetrics.phase_seconds).
    phase_seconds: dict[str, float] = {}
    records: list[dict] = []
    for key, history_dict, models in chunk:
        history = _payload_history(history_dict, state)
        verdicts: dict[str, bool] = {}
        explored: dict[str, int] = {}
        views: dict[str, list[dict]] = {}
        model_seconds: dict[str, float] = {}
        with relation_memo(cache):
            for model in models:
                t0 = time.perf_counter()
                spec = MODELS[model].spec if prepass else None
                if spec is not None:
                    verdict = prepass_check(spec, history)
                    t1 = time.perf_counter()
                    phase_seconds["prepass"] = (
                        phase_seconds.get("prepass", 0.0) + t1 - t0
                    )
                    if verdict.decided:
                        # Sound definite verdict (a necessary-condition
                        # DENY or a constructed ADMIT witness): skip the
                        # search entirely.
                        verdicts[model] = verdict.allowed
                        explored[model] = 0
                        prepass_decided += 1
                        if verdict.allowed:
                            prepass_admitted += 1
                            if store_views and verdict.witness is not None:
                                views[model] = [
                                    view_to_dict(verdict.witness.views[proc])
                                    for proc in sorted(
                                        verdict.witness.views, key=str
                                    )
                                ]
                        model_seconds[model] = t1 - t0
                        continue
                else:
                    t1 = t0
                result = check(history, model)
                t2 = time.perf_counter()
                phase_seconds["check"] = phase_seconds.get("check", 0.0) + t2 - t1
                model_seconds[model] = t2 - t0
                verdicts[model] = result.allowed
                explored[model] = result.explored
                if store_views and result.views:
                    views[model] = [
                        view_to_dict(result.views[proc])
                        for proc in sorted(result.views, key=str)
                    ]
        record = {
            "key": key,
            "models": verdicts,
            "explored": explored,
            "model_seconds": model_seconds,
        }
        if store_views:
            record["views"] = views
        records.append(record)
    return {
        "records": records,
        "cache_hits": cache.hits - hits0,
        "cache_misses": cache.misses - misses0,
        "prepass_decided": prepass_decided,
        "prepass_admitted": prepass_admitted,
        "phase_seconds": phase_seconds,
    }


def _run_chunk(chunk: Sequence[_Payload]) -> dict:
    assert _WORKER_STATE is not None, "worker used before initialisation"
    return _run_chunk_impl(chunk, _WORKER_STATE)


def _terminate_pools(holder: list) -> None:
    """Terminate and forget every pool in ``holder`` (finalizer-safe)."""
    while holder:
        pool = holder.pop()
        pool.terminate()
        pool.join()


def _run_panel_chunk_impl(chunk: Sequence[_Payload], state: dict) -> list[dict]:
    """Oracle-panel verdicts for every payload of ``chunk``, in order.

    The differential fuzzer's worker body: each history is answered by the
    full panel (fast path, kernel, frozen legacy solver, static pre-pass)
    under the worker's relation memo.  Lazy import — the diff layer sits
    above the engine, and only fuzz runs need it.
    """
    from repro.diff.oracles import panel_verdicts

    cache: RelationCache = state["cache"]
    panels: list[dict] = []
    with relation_memo(cache):
        for _key, history_dict, models in chunk:
            history = _payload_history(history_dict, state)
            panels.append(panel_verdicts(history, models))
    return panels


def _run_panel_chunk(chunk: Sequence[_Payload]) -> list[dict]:
    assert _WORKER_STATE is not None, "worker used before initialisation"
    return _run_panel_chunk_impl(chunk, _WORKER_STATE)


@dataclass
class SweepReport:
    """What an engine run produced: results, counts, and metrics."""

    spec: SweepSpec
    metrics: EngineMetrics
    results: list[dict] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    store_path: Path | None = None

    def render(self) -> str:
        lines = [self.metrics.render()]
        if self.counts:
            allowed = ", ".join(f"{m}={n}" for m, n in sorted(self.counts.items()))
            lines.append(f"allowed counts: {allowed}")
        if self.store_path is not None:
            lines.append(f"results written to {self.store_path}")
        return "\n".join(lines)


class CheckEngine:
    """Batch history checking with relation caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` runs everything in-process (no pool, no
        serialization round-trip) with identical results.
    chunk_size:
        Payloads per dispatch unit; default sizes chunks so each worker
        sees several chunks (load balance without dispatch overhead).
    cache_histories:
        Per-worker relation-cache bound (distinct histories).
    store_views:
        Also record witness views (wire-format, per model) in result
        records, so positive verdicts keep their evidence; off by default
        because views dominate record size on large sweeps.
    prepass:
        Run the polynomial static pre-pass
        (:mod:`repro.staticcheck.prepass`) before each spec-backed check
        and skip the search on a definite DENY.  Sound — verdicts are
        identical with it on or off — so it defaults on; disable to
        benchmark the raw kernel (``sweep --no-prepass``).
    persistent:
        Keep the worker pool alive across runs (the warm daemon) and, for
        ``jobs > 1``, ship sweep payloads through a shared-memory
        :class:`~repro.engine.arena.PlaneArena` instead of pickling each
        history per job.  Results are identical either way; call
        :meth:`close` (or use the engine as a context manager) when done.
    backend:
        Kernel mask backend name for the workers (and the in-process
        path); ``None`` inherits the process default (``REPRO_BACKEND``).
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: int | None = None,
        cache_histories: int = DEFAULT_CACHE_HISTORIES,
        store_views: bool = False,
        prepass: bool = True,
        persistent: bool = False,
        backend: str | None = None,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.cache_histories = cache_histories
        self.store_views = store_views
        self.prepass = prepass
        self.persistent = persistent
        self.backend = backend
        self._local_state: dict | None = None
        # The persistent pool lives in a one-slot holder so a finalizer can
        # terminate it without keeping the engine itself alive.
        self._pool_holder: list = []
        self._arena: PlaneArena | None = None
        self._finalizer = weakref.finalize(self, _terminate_pools, self._pool_holder)

    # -- warm-daemon lifecycle ---------------------------------------------------

    @property
    def arena(self) -> PlaneArena | None:
        """The live plane arena, if this engine runs warm with workers."""
        if not (self.persistent and self.jobs > 1):
            return None
        if self._arena is None:
            self._arena = PlaneArena()
        return self._arena

    def close(self) -> None:
        """Release the persistent pool and arena (idempotent).

        A closed engine stays usable — the next run simply starts cold
        again, re-creating the pool and arena on demand.
        """
        _terminate_pools(self._pool_holder)
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "CheckEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- serial cached checking (the in-process fast path) ----------------------

    @property
    def cache(self) -> RelationCache:
        """The in-process relation cache (serial path and ``classify``)."""
        if self._local_state is None:
            self._local_state = _fresh_state(self.cache_histories)
        return self._local_state["cache"]

    def classify(
        self, history: SystemHistory, models: Sequence[str] | None = None
    ) -> dict[str, bool]:
        """Verdicts of several models on one history, relation-cached.

        The in-process counterpart of :func:`repro.checking.classify`: the
        order relations are derived once and shared across the models.
        """
        names = tuple(models) if models is not None else model_names()
        from repro.staticcheck.prepass import prepass_check

        from contextlib import nullcontext

        verdicts: dict[str, bool] = {}
        scope = use_backend(self.backend) if self.backend is not None else nullcontext()
        with scope, relation_memo(self.cache):
            for name in names:
                spec = MODELS[name].spec if self.prepass else None
                verdict = prepass_check(spec, history) if spec is not None else None
                if verdict is not None and verdict.decided:
                    verdicts[name] = verdict.allowed
                else:
                    verdicts[name] = check(history, name).allowed
        return verdicts

    def map_classify(
        self, histories: Iterable[SystemHistory], models: Sequence[str]
    ) -> list[dict[str, bool]]:
        """Verdict maps for many histories, in input order.

        Runs on the worker pool when ``jobs > 1``; the in-process path uses
        the engine's own cache.  Results are identical either way.
        """
        names = tuple(models)
        payloads: list[_Payload] = [
            (f"{i:06d}", history_to_dict(h), names) for i, h in enumerate(histories)
        ]
        rows: list[dict[str, bool]] = []
        for out in self._execute(self._chunks(payloads)):
            rows.extend(record["models"] for record in out["records"])
        return rows

    def map_panel(
        self, histories: Iterable[SystemHistory], models: Sequence[str]
    ) -> list[dict]:
        """Differential oracle panels for many histories, in input order.

        The :mod:`repro.diff` fuzzer's batch entry point: every history is
        decided by *all four* oracles (fast path, kernel, legacy solver,
        static pre-pass; see :func:`repro.diff.oracles.panel_verdicts`).
        Runs on the worker pool when ``jobs > 1``; results are identical
        either way.
        """
        names = tuple(models)
        payloads: list[_Payload] = [
            (f"{i:06d}", history_to_dict(h), names) for i, h in enumerate(histories)
        ]
        panels: list[dict] = []
        for out in self._execute(
            self._chunks(payloads),
            impl=_run_panel_chunk_impl,
            worker=_run_panel_chunk,
        ):
            panels.extend(out)
        return panels

    # -- sweep driving -----------------------------------------------------------

    def run(
        self,
        spec: SweepSpec,
        store: ResultStore | None = None,
        resume: bool = False,
    ) -> SweepReport:
        """Run a sweep, optionally persisting to (and resuming from) a store.

        With ``resume=True`` and an existing store, jobs whose keys already
        have intact result records are skipped; everything else runs and is
        appended under a fresh run header.
        """
        all_jobs = list(spec.jobs())
        done = store.completed_keys() if (store is not None and resume) else set()
        todo = [job for job in all_jobs if job.key not in done]

        metrics = EngineMetrics(workers=self.jobs)
        metrics.skipped = len(all_jobs) - len(todo)
        t0 = time.perf_counter()
        if store is not None:
            store.append_run_header(
                {
                    "spec": spec.describe(),
                    "jobs": self.jobs,
                    "started": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                    "resumed_keys": metrics.skipped,
                }
            )

        arena = self.arena
        if arena is not None:
            # Warm path: one shared-memory segment per distinct history
            # (content-hash keyed — job keys collide across specs), shipped
            # by name instead of re-pickled per job.  Reserve before the
            # puts so eviction can never unlink a segment whose name is
            # still queued in a payload.
            arena.reserve(len(todo))
            payloads: list[_Payload] = [
                (
                    job.key,
                    {"__arena__": arena.put(plane_key(job.history), job.history)},
                    job.models,
                )
                for job in todo
            ]
        else:
            payloads = [
                (job.key, history_to_dict(job.history), job.models) for job in todo
            ]
        results: list[dict] = []
        for out in self._execute(self._chunks(payloads)):
            metrics.cache_hits += out["cache_hits"]
            metrics.cache_misses += out["cache_misses"]
            metrics.prepass_decided += out.get("prepass_decided", 0)
            metrics.prepass_admitted += out.get("prepass_admitted", 0)
            for phase, seconds in out.get("phase_seconds", {}).items():
                metrics.add_phase_time(phase, seconds)
            for record in out["records"]:
                for model, seconds in record.pop("model_seconds").items():
                    metrics.add_model_time(model, seconds)
                metrics.histories += 1
                metrics.checks += len(record["models"])
                if store is not None:
                    store.append_result(
                        record["key"],
                        record["models"],
                        record["explored"],
                        views=record.get("views"),
                    )
                results.append(record)
        metrics.wall_seconds = time.perf_counter() - t0

        if store is not None:
            summary = store.summarize()
            store.append_summary({"metrics": metrics.to_dict(), **summary})
            counts = summary["allowed_counts"]
        else:
            counts = {}
            for record in results:
                for model, allowed in record["models"].items():
                    counts[model] = counts.get(model, 0) + (1 if allowed else 0)
        return SweepReport(
            spec=spec,
            metrics=metrics,
            results=results,
            counts=counts,
            store_path=store.path if store is not None else None,
        )

    # -- dispatch ----------------------------------------------------------------

    def _chunks(self, payloads: list[_Payload]) -> list[list[_Payload]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # Several chunks per worker for load balance, capped so tiny
            # sweeps still exercise the dispatch path.
            size = max(1, min(32, -(-len(payloads) // (self.jobs * 4))))
        return [payloads[i : i + size] for i in range(0, len(payloads), size)]

    def _execute(
        self,
        chunks: list[list[_Payload]],
        impl=_run_chunk_impl,
        worker=_run_chunk,
    ) -> Iterator:
        """Run ``chunks`` through a chunk body, in-process or on the pool.

        ``impl`` is the in-process body ``(chunk, state) -> output`` and
        ``worker`` its module-level pool twin (picklable, reading the
        per-process state installed by the initializer).  Both defaults are
        the sweep body; :meth:`map_panel` passes the oracle-panel pair.
        """
        if not chunks:
            return
        if self.jobs == 1:
            state = (
                self._local_state
                if self._local_state is not None
                else _fresh_state(self.cache_histories, self.store_views, self.prepass)
            )
            state["store_views"] = self.store_views
            state["prepass"] = self.prepass
            self._local_state = state
            if self.backend is not None:
                with use_backend(self.backend):
                    for chunk in chunks:
                        yield impl(chunk, state)
                return
            for chunk in chunks:
                yield impl(chunk, state)
            return
        if self.persistent:
            if not self._pool_holder:
                ctx = multiprocessing.get_context()
                self._pool_holder.append(
                    ctx.Pool(
                        processes=self.jobs,
                        initializer=_init_worker,
                        initargs=(
                            self.cache_histories,
                            self.store_views,
                            self.prepass,
                            self.backend,
                        ),
                    )
                )
            yield from self._pool_holder[0].imap(worker, chunks)
            return
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=self.jobs,
            initializer=_init_worker,
            initargs=(
                self.cache_histories,
                self.store_views,
                self.prepass,
                self.backend,
            ),
        ) as pool:
            yield from pool.imap(worker, chunks)
