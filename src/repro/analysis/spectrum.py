"""Strength spectrum: where a single history sits in the model lattice.

Given one history, :func:`strength_frontier` computes the *strongest*
models that allow it — the maximal elements of the set of accepting
models under the known strictly-stronger-than relation.  This is the
question a memory-system debugger actually asks about a suspicious trace:
"what is the strongest consistency this execution is compatible with?"

The comparison relation is the measured lattice of the Figure 5 models
plus the extension models (see ``benchmarks/bench_fig5_lattice.py`` and
``bench_new_memories.py``); it is encoded statically here and asserted
against the classifiers in the test suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.checking import check
from repro.core.history import SystemHistory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses checking)
    from repro.engine.pool import CheckEngine

__all__ = ["KNOWN_EDGES", "SPECTRUM_MODELS", "accepting_models", "strength_frontier"]

#: Models ordered into the spectrum (strongest-ish first, display order).
SPECTRUM_MODELS: tuple[str, ...] = (
    "SC",
    "TSO",
    "CoherentCausal",
    "PC",
    "PC-G",
    "Causal",
    "Coherence",
    "PRAM",
    "Slow",
)

#: (stronger, weaker) pairs — the transitive reduction is not required;
#: containment is what matters for maximality.
KNOWN_EDGES: frozenset[tuple[str, str]] = frozenset(
    {
        ("SC", "TSO"),
        ("SC", "CoherentCausal"),
        ("TSO", "PC"),
        # NOTE: no ("TSO", "PC-G") edge — Goodman PC keeps the full
        # program order that TSO's ppo relaxes, so TSO ⊄ PC-G (the
        # catalog's pcd-not-pcg history is TSO-allowed, PC-G-rejected).
        ("TSO", "Causal"),
        ("CoherentCausal", "Causal"),
        ("CoherentCausal", "PC-G"),
        ("CoherentCausal", "Coherence"),
        ("PC", "Coherence"),
        ("PC", "PRAM"),
        ("PC-G", "Coherence"),
        ("PC-G", "PRAM"),
        ("Causal", "PRAM"),
        ("PRAM", "Slow"),
        ("Coherence", "Slow"),
        # transitive consequences, listed so maximality needs no closure
        ("SC", "PC"),
        ("SC", "PC-G"),
        ("SC", "Causal"),
        ("SC", "Coherence"),
        ("SC", "PRAM"),
        ("SC", "Slow"),
        ("TSO", "Coherence"),
        ("TSO", "PRAM"),
        ("TSO", "Slow"),
        ("CoherentCausal", "PRAM"),
        ("CoherentCausal", "Slow"),
        ("PC", "Slow"),
        ("PC-G", "Slow"),
        ("Causal", "Slow"),
    }
)


def accepting_models(
    history: SystemHistory, engine: "CheckEngine | None" = None
) -> set[str]:
    """The spectrum models that allow the history.

    With an ``engine``, the verdicts come from its relation-cached
    :meth:`~repro.engine.CheckEngine.classify` — one substrate computation
    shared across all nine models instead of nine re-derivations.
    """
    if engine is not None:
        verdicts = engine.classify(history, SPECTRUM_MODELS)
        return {m for m in SPECTRUM_MODELS if verdicts[m]}
    return {m for m in SPECTRUM_MODELS if check(history, m).allowed}


def strength_frontier(
    history: SystemHistory, engine: "CheckEngine | None" = None
) -> tuple[str, ...]:
    """The strongest models allowing the history (maximal accepting set).

    A model is on the frontier when it accepts the history and no known
    strictly-stronger model does.  Returned in :data:`SPECTRUM_MODELS`
    display order; empty iff no model accepts (e.g. a read of a value
    never written).  ``engine`` is forwarded to :func:`accepting_models`.
    """
    accepted = accepting_models(history, engine=engine)
    frontier = [
        m
        for m in SPECTRUM_MODELS
        if m in accepted
        and not any(
            (stronger, m) in KNOWN_EDGES and stronger in accepted
            for stronger in SPECTRUM_MODELS
        )
    ]
    return tuple(frontier)
