"""Small reporting utilities shared by the benchmarks and examples.

Kept intentionally minimal: a monotonic timer, verdict-table formatting
(paper-expected vs measured), and fraction summaries for the containment
experiments.  Everything prints plain ASCII so benchmark output diffs
cleanly into EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

__all__ = ["Timer", "verdict_table", "fraction", "format_counts"]


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def verdict_table(
    rows: Sequence[tuple[str, Mapping[str, bool], Mapping[str, bool]]],
    models: Sequence[str],
) -> str:
    """Tabulate paper-expected vs measured verdicts.

    Each row is ``(name, expected, measured)``; expected entries may be
    missing (the paper takes no stance).  Cells show ``Y``/``N`` with a
    ``!`` suffix on any mismatch.
    """
    header = ["history".ljust(22)] + [m.rjust(10) for m in models]
    lines = ["".join(header)]
    for name, expected, measured in rows:
        cells = [name.ljust(22)]
        for m in models:
            got = measured.get(m)
            cell = "-" if got is None else ("Y" if got else "N")
            exp = expected.get(m)
            if exp is not None and got is not None and exp != got:
                cell += "!"
            cells.append(cell.rjust(10))
        lines.append("".join(cells))
    return "\n".join(lines)


def fraction(numerator: int, denominator: int) -> str:
    """``'17/20 (85.0%)'``-style fraction formatting (safe on zero)."""
    pct = 100.0 * numerator / denominator if denominator else 0.0
    return f"{numerator}/{denominator} ({pct:.1f}%)"


def format_counts(counts: Mapping[str, int], total: int) -> str:
    """One line per model: allowed-history counts out of a total."""
    return "\n".join(
        f"  {name:16s} {fraction(count, total)}"
        for name, count in counts.items()
    )
