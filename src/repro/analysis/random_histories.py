"""Random history and program generators for large-scale experiments.

Two regimes, complementing exhaustive enumeration:

* :func:`random_history` — uniform-ish structural sampling of the history
  space.  Most samples are rejected by every model; useful for fuzzing the
  checkers, less so for containment statistics.
* :func:`machine_history` — run a random program on an operational machine
  under a seeded random scheduler.  Every sample is, by construction,
  allowed by the machine's model, so these drive the
  "operational ⊆ declarative" soundness experiments at scale.

All randomness flows through a caller-provided :class:`numpy.random.Generator`
for reproducibility.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.errors import HistoryError
from repro.core.history import HistoryBuilder, SystemHistory
from repro.machines.base import MemoryMachine
from repro.programs.ops import Read, Request, Write
from repro.programs.runner import run
from repro.programs.scheduler import RandomScheduler

__all__ = ["random_history", "random_program_ops", "machine_history"]


def random_history(
    rng: np.random.Generator,
    *,
    procs: int = 2,
    ops_per_proc: int = 3,
    locations: Sequence[str] = ("x", "y"),
    p_write: float = 0.5,
    values: Sequence[int] | None = None,
) -> SystemHistory:
    """Sample a structurally random history with distinct write values.

    Reads draw their value from {0} ∪ {values written to their location
    anywhere in the history}, so samples are never *trivially* illegal —
    every read has at least one candidate writer.  Passing ``values`` adds
    an extra pool of candidate read values drawn *without* that guarantee:
    a read may then observe a value no write stores, which is exactly the
    impossible-read shape the differential fuzzer needs to exercise every
    checker's rejection path.
    """
    if procs < 1:
        raise HistoryError(f"random_history: procs must be >= 1, got {procs}")
    if ops_per_proc < 1:
        raise HistoryError(
            f"random_history: ops_per_proc must be >= 1, got {ops_per_proc}"
        )
    if not locations:
        raise HistoryError(
            f"random_history: locations must be non-empty, got {locations!r}"
        )
    if not 0.0 <= p_write <= 1.0:
        raise HistoryError(
            f"random_history: p_write must lie in [0, 1], got {p_write}"
        )
    if values is not None and not values:
        raise HistoryError(
            f"random_history: values must be non-empty when given, got {values!r}"
        )
    locations = list(locations)
    extra_values = list(values) if values is not None else []
    # First pass: decide shapes, assign distinct write values by slot.
    shapes: list[list[tuple[str, str, int | None]]] = []
    written: dict[str, list[int]] = {loc: [] for loc in locations}
    slot = 0
    for _ in range(procs):
        row: list[tuple[str, str, int | None]] = []
        for _ in range(ops_per_proc):
            loc = locations[int(rng.integers(len(locations)))]
            if rng.random() < p_write:
                value = slot + 1
                written[loc].append(value)
                row.append(("w", loc, value))
            else:
                row.append(("r", loc, None))
            slot += 1
        shapes.append(row)
    # Second pass: give reads values.
    builder = HistoryBuilder()
    for pi, row in enumerate(shapes):
        builder.proc(f"p{pi}")
        for kind, loc, value in row:
            if kind == "w":
                assert value is not None
                builder.write(loc, value)
            else:
                options = [0] + written[loc] + extra_values
                builder.read(loc, options[int(rng.integers(len(options)))])
    return builder.build()


def random_program_ops(
    rng: np.random.Generator,
    *,
    ops: int = 4,
    locations: Sequence[str] = ("x", "y"),
    p_write: float = 0.5,
    value_base: int = 1,
) -> list[Request]:
    """A straight-line random thread body (no loops, distinct write values)."""
    if ops < 1:
        raise HistoryError(f"random_program_ops: ops must be >= 1, got {ops}")
    if not locations:
        raise HistoryError(
            f"random_program_ops: locations must be non-empty, got {locations!r}"
        )
    if not 0.0 <= p_write <= 1.0:
        raise HistoryError(
            f"random_program_ops: p_write must lie in [0, 1], got {p_write}"
        )
    locations = list(locations)
    out: list[Request] = []
    v = value_base
    for _ in range(ops):
        loc = locations[int(rng.integers(len(locations)))]
        if rng.random() < p_write:
            out.append(Write(loc, v))
            v += 1
        else:
            out.append(Read(loc))
    return out


def machine_history(
    machine: MemoryMachine,
    rng: np.random.Generator,
    *,
    procs: Sequence[Any] | None = None,
    ops_per_proc: int = 4,
    locations: Sequence[str] = ("x", "y"),
    p_write: float = 0.5,
) -> SystemHistory:
    """Run a random straight-line program on ``machine``; return its trace.

    Write values are globally distinct across threads so the resulting
    history satisfies the litmus discipline and checks quickly.
    """
    procs = list(procs if procs is not None else machine.procs)
    if not procs:
        raise HistoryError(
            f"machine_history: procs must be non-empty, got {procs!r}"
        )
    if ops_per_proc < 1:
        raise HistoryError(
            f"machine_history: ops_per_proc must be >= 1, got {ops_per_proc}"
        )

    def _thread(ops: list[Request]):
        for req in ops:
            yield req

    bodies = {}
    for i, proc in enumerate(procs):
        ops = random_program_ops(
            rng,
            ops=ops_per_proc,
            locations=locations,
            p_write=p_write,
            value_base=1 + i * ops_per_proc,
        )
        bodies[proc] = (lambda ops=ops: _thread(ops))
    seed = int(rng.integers(2**31))
    run(machine, bodies, RandomScheduler(seed), max_steps=100_000)
    return machine.history()
