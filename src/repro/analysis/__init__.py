"""Generators and analyses supporting the experiments."""

from repro.analysis.labeling import (
    bracketing_violations,
    find_races,
    is_properly_labeled,
    location_discipline_violations,
)
from repro.analysis.random_histories import (
    machine_history,
    random_history,
    random_program_ops,
)
from repro.analysis.spectrum import (
    KNOWN_EDGES,
    SPECTRUM_MODELS,
    accepting_models,
    strength_frontier,
)
from repro.analysis.stats import Timer, format_counts, fraction, verdict_table
from repro.analysis.trace import TraceStats, streaming_legality, trace_stats

__all__ = [
    "accepting_models",
    "KNOWN_EDGES",
    "SPECTRUM_MODELS",
    "strength_frontier",
    "bracketing_violations",
    "find_races",
    "format_counts",
    "fraction",
    "is_properly_labeled",
    "location_discipline_violations",
    "machine_history",
    "random_history",
    "random_program_ops",
    "Timer",
    "TraceStats",
    "streaming_legality",
    "trace_stats",
    "verdict_table",
]
