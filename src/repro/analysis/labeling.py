"""Proper labeling and data-race analysis (paper Sections 3.4 and 5).

Release consistency promises SC behavior only for *properly labeled*
programs — ones whose ordinary operations are bracketed by acquire and
release operations on synchronization variables, leaving no data races.
The paper assumes (Section 5) that synchronization variables are accessed
only outside the critical/remainder sections and ordinary shared variables
only inside.

This module provides the corresponding checks on histories:

* :func:`location_discipline_violations` — locations touched by both
  labeled and ordinary operations (breaking the Section 5 assumption);
* :func:`bracketing_violations` — ordinary operations not preceded by an
  acquire or not followed by a release in their processor's program order;
* :func:`find_races` — conflicting ordinary operation pairs unordered by
  the synchronization happens-before order.
"""

from __future__ import annotations


from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.relation import Relation
from repro.orders.writes_before import reads_from_candidates

__all__ = [
    "location_discipline_violations",
    "bracketing_violations",
    "find_races",
    "is_properly_labeled",
]


def location_discipline_violations(history: SystemHistory) -> dict[str, list[Operation]]:
    """Locations accessed by both labeled and ordinary operations."""
    labeled_locs: dict[str, list[Operation]] = {}
    ordinary_locs: dict[str, list[Operation]] = {}
    for op in history.operations:
        (labeled_locs if op.labeled else ordinary_locs).setdefault(
            op.location, []
        ).append(op)
    return {
        loc: labeled_locs[loc] + ordinary_locs[loc]
        for loc in labeled_locs
        if loc in ordinary_locs
    }


def bracketing_violations(history: SystemHistory) -> list[Operation]:
    """Ordinary operations lacking an acquire before or a release after.

    This is the syntactic core of "properly labeled": every ordinary
    access must sit between a labeled read (acquire) earlier and a labeled
    write (release) later in its processor's program order.  Processors
    with no ordinary operations are trivially fine.
    """
    bad: list[Operation] = []
    for proc in history.procs:
        ops = history.ops_of(proc)
        for op in ops:
            if op.labeled:
                continue
            has_acquire = any(o.is_acquire for o in ops[: op.index])
            has_release = any(o.is_release for o in ops[op.index + 1:])
            if not (has_acquire and has_release):
                bad.append(op)
    return bad


def _sync_happens_before(history: SystemHistory) -> Relation[Operation]:
    """Program order plus release→acquire reads-from, transitively closed.

    The standard happens-before of a properly-labeled execution.  When a
    labeled read has several candidate release writers, every candidate
    edge is included (conservative: may under-report races, never
    fabricates an ordering that no attribution supports — suitable for the
    discipline-checking role it plays here).
    """
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for a, b in zip(ops, ops[1:]):
            rel.add(a, b)
    for read_op, cands in reads_from_candidates(history).items():
        if not read_op.is_acquire:
            continue
        for src in cands:
            if src is not None and src.is_release:
                rel.add(src, read_op)
    return rel.transitive_closure()


def find_races(history: SystemHistory) -> list[tuple[Operation, Operation]]:
    """Conflicting ordinary operation pairs unordered by happens-before.

    Two operations conflict when they are by different processors, touch
    the same location, and at least one writes.  A properly-labeled
    program has no races on any SC execution; races found here are exactly
    what disqualifies a program from RC's SC guarantee.
    """
    hb = _sync_happens_before(history)
    ordinary = [op for op in history.operations if not op.labeled]
    races: list[tuple[Operation, Operation]] = []
    for i, a in enumerate(ordinary):
        for b in ordinary[i + 1:]:
            if a.proc == b.proc or a.location != b.location:
                continue
            if not (a.is_write or b.is_write):
                continue
            if not hb.orders(a, b) and not hb.orders(b, a):
                races.append((a, b))
    return races


def is_properly_labeled(history: SystemHistory) -> bool:
    """The conjunction of all three checks (on this execution)."""
    return (
        not location_discipline_violations(history)
        and not bracketing_violations(history)
        and not find_races(history)
    )
