"""Trace-scale analysis: streaming legality and history statistics.

The checkers decide NP-hard questions and are meant for litmus-sized
histories; this module covers the complementary regime — long machine
traces — with linear-time tools:

* :func:`streaming_legality` — verify a long *sequential* trace (e.g. a
  machine's per-processor application log, or an SC machine's global
  order) in O(n) with O(locations) memory, accepting any iterable;
* :func:`trace_stats` — structural statistics of a history (operation
  mix, locations, reads-from composition, sharing degree), used by the
  workload generators' sanity checks and the performance benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation
from repro.orders.writes_before import reads_from_candidates

__all__ = ["streaming_legality", "trace_stats", "TraceStats"]


def streaming_legality(
    ops: Iterable[Operation], *, initial: int = INITIAL_VALUE
) -> tuple[int, Operation] | None:
    """First legality violation of a (possibly huge) sequential trace.

    Unlike :func:`repro.core.view.first_legality_violation` this consumes
    any iterable lazily, so multi-million-operation traces stream through
    without being materialized.  Returns ``(position, operation)`` of the
    first read observing the wrong value, or ``None``.
    """
    state: dict[str, int] = {}
    for i, op in enumerate(ops):
        if op.is_read and op.value_read != state.get(op.location, initial):
            return (i, op)
        if op.is_write:
            state[op.location] = op.value_written
    return None


@dataclass(frozen=True)
class TraceStats:
    """Structural statistics of a system history.

    Attributes
    ----------
    operations, reads, writes, rmws:
        Operation counts (RMWs count once, in ``rmws``; their halves are
        included in neither ``reads`` nor ``writes``).
    labeled:
        Labeled (synchronization) operation count.
    processors, locations:
        Entity counts.
    shared_locations:
        Locations accessed by more than one processor — the communication
        footprint.
    reads_of_initial, reads_local, reads_remote, reads_ambiguous:
        Reads-from composition: reads that can only have observed the
        initial value, only their own processor's write, only a remote
        write, or that have multiple candidate sources.
    """

    operations: int
    reads: int
    writes: int
    rmws: int
    labeled: int
    processors: int
    locations: int
    shared_locations: int
    reads_of_initial: int
    reads_local: int
    reads_remote: int
    reads_ambiguous: int

    @property
    def communication_ratio(self) -> float:
        """Fraction of read-half operations observing a remote write."""
        read_halves = self.reads + self.rmws
        return self.reads_remote / read_halves if read_halves else 0.0


def trace_stats(history: SystemHistory) -> TraceStats:
    """Compute :class:`TraceStats` for a history (one pass + rf analysis)."""
    reads = writes = rmws = labeled = 0
    touched: dict[str, set] = {}
    for op in history.operations:
        if op.kind.value == "u":
            rmws += 1
        elif op.is_read:
            reads += 1
        else:
            writes += 1
        if op.labeled:
            labeled += 1
        touched.setdefault(op.location, set()).add(op.proc)

    of_initial = local = remote = ambiguous = 0
    for op, cands in reads_from_candidates(history).items():
        if len(cands) > 1:
            ambiguous += 1
        elif not cands or cands[0] is None:
            of_initial += 1
        elif cands[0].proc == op.proc:
            local += 1
        else:
            remote += 1

    return TraceStats(
        operations=len(history.operations),
        reads=reads,
        writes=writes,
        rmws=rmws,
        labeled=labeled,
        processors=len(history.procs),
        locations=len(history.locations),
        shared_locations=sum(1 for procs in touched.values() if len(procs) > 1),
        reads_of_initial=of_initial,
        reads_local=local,
        reads_remote=remote,
        reads_ambiguous=ambiguous,
    )
