"""Litmus-test notation and catalog (the paper's figures, machine-checkable)."""

from repro.litmus.catalog import CATALOG, LitmusTest, get_test, paper_figures, catalog_names
from repro.litmus.dsl import format_history, parse_history, parse_operations

__all__ = [
    "CATALOG",
    "format_history",
    "get_test",
    "LitmusTest",
    "paper_figures",
    "parse_history",
    "parse_operations",
    "catalog_names",
]
