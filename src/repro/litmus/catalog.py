"""Catalog of litmus histories: the paper's figures plus the classics.

Each entry is a named history with the expected verdict per model, so the
test suite and the figure benchmarks can iterate the catalog.  ``None`` in
``expected`` means the paper takes no stance for that model (we still
record our measured verdict in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.history import SystemHistory
from repro.litmus.dsl import parse_history

__all__ = ["LitmusTest", "CATALOG", "get_test", "paper_figures", "catalog_names"]


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus history with per-model expected verdicts."""

    name: str
    text: str
    expected: Mapping[str, bool]
    source: str = ""

    @property
    def history(self) -> SystemHistory:
        """The parsed history (reparsed on access; histories are small)."""
        return parse_history(self.text)


def _t(name: str, text: str, expected: dict[str, bool], source: str = "") -> LitmusTest:
    return LitmusTest(name=name, text=text, expected=expected, source=source)


CATALOG: dict[str, LitmusTest] = {
    t.name: t
    for t in (
        # ---- the paper's own figures -------------------------------------------
        _t(
            "fig1-sb",
            "p: w(x)1 r(y)0 | q: w(y)1 r(x)0",
            {
                "SC": False,
                "TSO": True,
                "PC": True,
                "Causal": True,
                "PRAM": True,
                "Coherence": True,
            },
            source="Paper Figure 1: TSO execution history (store-buffering shape)",
        ),
        _t(
            "fig2-pc-not-tso",
            "p: w(x)1 | q: r(x)1 w(y)1 | r: r(y)1 r(x)0",
            {
                "SC": False,
                "TSO": False,
                "PC": True,
                "PRAM": True,
                "Coherence": True,
            },
            source="Paper Figure 2: a PC execution history that is not TSO",
        ),
        _t(
            "fig3-pram-not-tso",
            "p: w(x)1 r(x)1 r(x)2 | q: w(x)2 r(x)2 r(x)1",
            {
                "SC": False,
                "TSO": False,
                "PC": False,
                "Causal": True,  # no mutual consistency: per-location disagreement is fine
                "PRAM": True,
                "Coherence": False,
                "TSO-axiomatic": False,
            },
            source="Paper Figure 3: PRAM history that is not allowed by TSO "
            "(each processor sees its own write first)",
        ),
        _t(
            "fig4-causal-not-tso",
            "p: w(x)1 w(y)1 | q: r(y)1 w(z)1 r(x)2 | r: w(x)2 r(x)1 r(z)1 r(y)1",
            {
                "SC": False,
                "TSO": False,
                "Causal": True,
                "PRAM": True,
            },
            source="Paper Figure 4: causal history that is not allowed by TSO",
        ),
        # ---- classic shapes used by the lattice experiment ----------------------
        _t(
            "mp",  # message passing
            "p: w(x)1 w(y)1 | q: r(y)1 r(x)0",
            {
                "SC": False,
                "TSO": False,
                "PC": False,
                "Causal": False,
                "PRAM": False,
                "Coherence": True,
            },
            source="Message-passing: stale data after observing the flag; "
            "forbidden by everything that preserves write order, allowed by "
            "plain coherence",
        ),
        _t(
            "mp-ok",
            "p: w(x)1 w(y)1 | q: r(y)1 r(x)1",
            {
                "SC": True,
                "TSO": True,
                "PC": True,
                "Causal": True,
                "PRAM": True,
            },
            source="Message-passing, consistent outcome: allowed everywhere",
        ),
        _t(
            "iriw",
            "p: w(x)1 | q: w(y)1 | r: r(x)1 r(y)0 | s: r(y)1 r(x)0",
            {
                "SC": False,
                "TSO": False,
                "PC": True,
                "Causal": True,
                "PRAM": True,
            },
            source="Independent reads of independent writes: readers disagree "
            "on the order of two unrelated writes",
        ),
        _t(
            "wrc",
            "p: w(x)1 | q: r(x)1 w(y)1 | r: r(y)1 r(x)0",
            {
                "SC": False,
                "TSO": False,
                "Causal": False,
                "PRAM": True,
            },
            source="Write-to-read causality: transitive visibility violation "
            "(PRAM-only; the causal order forbids it)",
        ),
        _t(
            "corr",
            "p: w(x)1 w(x)2 | q: r(x)2 r(x)1",
            {
                "SC": False,
                "TSO": False,
                "PC": False,
                "Causal": False,
                "PRAM": False,
                "Coherence": False,
            },
            source="Coherence of read-read: observing one processor's writes "
            "out of program order is forbidden even by PRAM",
        ),
        _t(
            "sb-fwd",
            "p: w(x)1 r(x)1 r(y)0 | q: w(y)1 r(y)1 r(x)0",
            {
                "SC": False,
                "TSO": False,  # the paper's ppo forbids reading own write early
                "PC": True,
                "PRAM": True,
                "TSO-axiomatic": True,  # hardware store-forwarding allows it
            },
            source="Store-buffering with own-write reads: separates the "
            "paper's TSO characterization from hardware (axiomatic) TSO",
        ),
        _t(
            "2+2w-observed",
            "p: w(x)1 w(y)2 | q: w(y)1 w(x)2 | r: r(x)1 r(y)1 | s: r(y)2 r(x)2",
            {
                "SC": True,  # interleaving w(y)1 w(x)1 [r] w(y)2 w(x)2 [s]
                "TSO": True,
                "PRAM": True,
            },
            source="2+2W with observers: both observations are serializable, "
            "a sanity entry guarding against over-strict checkers",
        ),
        _t(
            "coww-cross",
            "p: w(x)1 w(y)2 | q: w(y)1 w(x)2 | r: r(x)2 r(x)1 | s: r(y)2 r(y)1",
            {
                "SC": False,  # r sees x2 before x1; forces w(x)2 < w(x)1, so
                # q finished before p wrote x; but s sees y2 before y1, the
                # mirror-image constraint — unsatisfiable in one total order
                "TSO": False,
                "Coherence": True,  # coherence drops the cross-location po edges
                "PRAM": True,
                "Causal": True,
            },
            source="Crossed write-order observation: each observer sees one "
            "location's writes in the order opposite to program-order needs",
        ),
        _t(
            "lb",  # load buffering
            "p: r(x)1 w(y)2 | q: r(y)2 w(x)1",
            {
                "SC": False,
                "TSO": False,  # reads cannot be satisfied by later writes
                "PC": True,  # semi-causality tolerates the mutual-future loop
                "Causal": False,  # wb ∪ po is cyclic
                "PRAM": True,
                "Coherence": True,
                "Slow": True,
            },
            source="Load buffering: each processor reads the value the "
            "other writes afterwards; separates the causality-aware models "
            "(SC/TSO/causal reject) from the rest",
        ),
        _t(
            "r-shape",
            "p: w(x)1 w(y)2 | q: w(y)3 r(x)0",
            {
                "SC": True,  # serialize q entirely before p
                "TSO": True,
                "PRAM": True,
                "Causal": True,
            },
            source="The R shape resolves: q can run entirely before p, so "
            "every model allows it (sanity entry)",
        ),
        _t(
            "pcg-not-pcd",
            "p: r(y)5 w(x)2 w(x)3 | q: r(x)3 w(y)5",
            {
                "SC": False,
                "PC-G": True,
                "PC": False,
                "PRAM": True,
                "Coherence": True,
                "Causal": False,
            },
            source="Separates Goodman PC from DASH PC (paper Section 3.3 "
            "citing Ahamad et al. [2]): a mutual-future-read loop that "
            "PRAM+coherence tolerates but semi-causality rejects",
        ),
        _t(
            "pcd-not-pcg",
            "p: w(y)1 r(x)0 w(y)3 | q: w(x)4 w(y)5 r(y)1",
            {
                "SC": False,
                "PC-G": False,
                "PC": True,
                "TSO": True,  # so TSO ⊄ PC-G: ppo drops p's w(y)1 -> r(x)0
                "PRAM": True,
                "Coherence": True,
                "Causal": True,
            },
            source="The other direction of Section 3.3's incomparability: "
            "with coherence order y5 < y1, q can read y=1 after its own "
            "y=5; serializing p's view then needs its r(x)0 to bypass its "
            "earlier w(y)1 — allowed by DASH PC's ppo, forbidden by "
            "PC-G's full program order",
        ),
        _t(
            "dekker-ok",
            "p: w(x)1 r(y)1 | q: w(y)1 r(x)1",
            {
                "SC": True,
                "TSO": True,
                "PRAM": True,
            },
            source="Store-buffering, consistent outcome: allowed everywhere",
        ),
    )
}


def get_test(name: str) -> LitmusTest:
    """Look a litmus test up by name.

    Raises
    ------
    KeyError
        If no test of that name exists.
    """
    return CATALOG[name]


def paper_figures() -> tuple[LitmusTest, ...]:
    """The tests corresponding to the paper's Figures 1-4."""
    return tuple(CATALOG[n] for n in ("fig1-sb", "fig2-pc-not-tso", "fig3-pram-not-tso", "fig4-causal-not-tso"))


def catalog_names() -> tuple[str, ...]:
    """All catalog entry names."""
    return tuple(CATALOG)
