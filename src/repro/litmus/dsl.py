"""Compact text notation for execution histories.

The paper writes histories as rows of operations per processor, e.g.
Figure 1::

    p: w(x)1 r(y)0
    q: w(y)1 r(x)0

This module parses exactly that notation (plus a one-line variant using
``|`` as the row separator) into :class:`~repro.core.history.SystemHistory`
values and renders histories back to it.

Grammar
-------
::

    history   := row (('\\n' | '|') row)*
    row       := proc ':' op*
    op        := kind label? '(' location ')' payload
    kind      := 'w' | 'r' | 'u'
    label     := '*'                      # labeled (synchronization) op
    payload   := int | int '->' int      # the latter only for kind 'u' (RMW)

Whitespace between tokens is insignificant; ``#`` starts a comment running
to end of line.  Values are (possibly negative) integers; locations are
identifiers (letters, digits, ``_``, ``[]`` for array cells).
"""

from __future__ import annotations

import re

from repro.core.errors import ParseError
from repro.core.history import HistoryBuilder, SystemHistory
from repro.core.operation import Operation, OpKind

__all__ = ["parse_history", "format_history", "parse_operations"]

_OP_RE = re.compile(
    r"""
    (?P<kind>[wru])
    (?P<label>\*)?
    \(\s*(?P<loc>[A-Za-z_][A-Za-z0-9_\[\]]*)\s*\)
    (?P<v1>-?\d+)
    (?:\s*->\s*(?P<v2>-?\d+))?
    """,
    re.VERBOSE,
)

_ROW_RE = re.compile(r"^\s*(?P<proc>[A-Za-z_][A-Za-z0-9_]*)\s*:\s*(?P<body>.*)$")


def _strip_comment(line: str) -> str:
    pos = line.find("#")
    return line if pos < 0 else line[:pos]


def parse_history(text: str) -> SystemHistory:
    """Parse litmus notation into a :class:`SystemHistory`.

    Rows may be separated by newlines or ``|``.  Processors may not repeat.

    Raises
    ------
    ParseError
        On any syntax error, with the offending fragment in the message.
    """
    rows: list[str] = []
    for line in text.splitlines():
        line = _strip_comment(line)
        rows.extend(part for part in line.split("|") if part.strip())
    if not rows:
        raise ParseError("empty history text")

    builder = HistoryBuilder()
    seen: set[str] = set()
    for row in rows:
        m = _ROW_RE.match(row)
        if m is None:
            raise ParseError(f"malformed row {row.strip()!r} (expected 'proc: ops')")
        proc = m.group("proc")
        if proc in seen:
            raise ParseError(f"duplicate row for processor {proc!r}")
        seen.add(proc)
        builder.proc(proc)
        _parse_ops_into(builder, m.group("body"), row)
    return builder.build()


def _parse_ops_into(builder: HistoryBuilder, body: str, context: str) -> None:
    pos = 0
    n = len(body)
    while pos < n:
        if body[pos].isspace():
            pos += 1
            continue
        m = _OP_RE.match(body, pos)
        if m is None:
            raise ParseError(
                f"cannot parse operation at {body[pos:pos + 20]!r} in row {context.strip()!r}"
            )
        kind, labeled = m.group("kind"), m.group("label") is not None
        loc, v1, v2 = m.group("loc"), int(m.group("v1")), m.group("v2")
        if kind == "w":
            if v2 is not None:
                raise ParseError(f"write {m.group(0)!r} must not use '->'")
            builder.write(loc, v1, labeled=labeled)
        elif kind == "r":
            if v2 is not None:
                raise ParseError(f"read {m.group(0)!r} must not use '->'")
            builder.read(loc, v1, labeled=labeled)
        else:  # RMW
            if v2 is None:
                raise ParseError(f"RMW {m.group(0)!r} requires 'old->new' payload")
            builder.rmw(loc, v1, int(v2), labeled=labeled)
        pos = m.end()


def parse_operations(proc: str, body: str) -> tuple[Operation, ...]:
    """Parse a bare operation sequence (no ``proc:`` prefix) for ``proc``."""
    builder = HistoryBuilder().proc(proc)
    _parse_ops_into(builder, _strip_comment(body), body)
    return builder.build().ops_of(proc)


def _format_op(op: Operation) -> str:
    star = "*" if op.labeled else ""
    if op.kind is OpKind.RMW:
        return f"u{star}({op.location}){op.read_value}->{op.value}"
    return f"{op.kind.value}{star}({op.location}){op.value}"


def format_history(history: SystemHistory, *, oneline: bool = False) -> str:
    """Render a history in the litmus notation accepted by :func:`parse_history`."""
    rows = (
        f"{proc}: " + " ".join(_format_op(op) for op in history[proc])
        for proc in history.procs
    )
    return " | ".join(rows) if oneline else "\n".join(rows)
