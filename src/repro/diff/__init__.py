"""repro.diff — differential testing of the framework against itself.

The repository holds four independent answers to "does model M admit
history H": the layered kernel, the frozen pre-kernel solver, the
per-model fast paths, and the polynomial static pre-pass — plus two
classes of invariant that hold *for free* on any history: the Figure 5
containment lattice and operational-machine soundness (a machine's trace
is always admitted by its own model).  This package cross-examines all of
them at scale:

* :mod:`repro.diff.shapes` — stratified random-history generation
  (structural presets + operational machine traces);
* :mod:`repro.diff.oracles` — the oracle panel and its discrepancy rules;
* :mod:`repro.diff.shrink` — greedy 1-minimal witness shrinking;
* :mod:`repro.diff.corpus` — the resumable JSONL discrepancy corpus,
  whose resolved findings become permanent tier-1 regression fixtures;
* :mod:`repro.diff.fuzz` — the campaign driver behind
  ``python -m repro fuzz`` (parallel through
  :meth:`repro.engine.CheckEngine.map_panel`).
"""

from repro.diff.corpus import CORPUS_VERSION, DiscrepancyCorpus, stratum_key
from repro.diff.fuzz import (
    SEPARATOR_PATTERNS,
    Finding,
    FuzzConfig,
    FuzzReport,
    harvest_fixtures,
    run_fuzz,
)
from repro.diff.oracles import (
    ORACLES,
    Discrepancy,
    agreed_verdicts,
    find_discrepancies,
    panel_verdicts,
)
from repro.diff.shapes import (
    DEFAULT_SHAPES,
    SHAPE_PRESETS,
    ShapePreset,
    resolve_shapes,
)
from repro.diff.shrink import ShrinkResult, shrink_history

__all__ = [
    "CORPUS_VERSION",
    "DEFAULT_SHAPES",
    "Discrepancy",
    "DiscrepancyCorpus",
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "ORACLES",
    "SEPARATOR_PATTERNS",
    "SHAPE_PRESETS",
    "ShapePreset",
    "ShrinkResult",
    "agreed_verdicts",
    "find_discrepancies",
    "harvest_fixtures",
    "panel_verdicts",
    "resolve_shapes",
    "run_fuzz",
    "shrink_history",
    "stratum_key",
]
