"""Greedy witness shrinking: minimize a discrepancy-triggering history.

A fuzzer-found counterexample is only useful once a human can read it, so
every discrepancy is minimized before it is recorded: repeatedly try to
drop one operation (or one whole processor) and keep the smaller history
whenever the *same* discrepancy — same kind, same models — survives the
re-check.  The loop runs to a fixpoint, so the result is 1-minimal: no
single further deletion preserves the discrepancy.

The predicate is re-evaluated from scratch on every candidate (a full
oracle-panel run), which keeps the shrinker honest: it can never "keep" a
history on stale verdicts.  Cost is bounded by the quadratic number of
candidate deletions times the panel cost on *smaller-than-found* histories,
which in practice is far cheaper than the fuzzing run that produced the
witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.history import SystemHistory
from repro.diff.oracles import Discrepancy

__all__ = ["ShrinkResult", "shrink_history"]

#: A predicate deciding whether a candidate history still exhibits the
#: discrepancy being minimized (``None`` = it vanished; keep the larger).
Predicate = Callable[[SystemHistory], "Discrepancy | None"]


@dataclass(frozen=True)
class ShrinkResult:
    """The outcome of one shrink run.

    Attributes
    ----------
    history:
        The 1-minimal history (possibly the input, when nothing drops).
    discrepancy:
        The surviving discrepancy as re-checked on the minimal history.
    steps:
        Accepted deletions (operations plus processors).
    attempts:
        Candidate histories checked, accepted or not.
    """

    history: SystemHistory
    discrepancy: Discrepancy
    steps: int
    attempts: int


def _without_op(history: SystemHistory, uid: tuple) -> SystemHistory:
    """``history`` with one operation deleted (indices re-densified)."""
    smaller, _ = history.project(lambda op: op.uid != uid)
    return smaller


def _without_proc(history: SystemHistory, proc) -> SystemHistory:
    smaller, _ = history.project(lambda op: op.proc != proc)
    return smaller


def shrink_history(
    history: SystemHistory,
    predicate: Predicate,
    *,
    max_attempts: int = 2000,
) -> ShrinkResult:
    """Greedily minimize ``history`` while ``predicate`` keeps holding.

    ``predicate`` must return the discrepancy a candidate still exhibits
    (matching the one being shrunk — callers filter by
    :attr:`~repro.diff.oracles.Discrepancy.key`), or ``None``.  It is
    assumed to hold on ``history`` itself; the returned
    :class:`ShrinkResult` carries its verdict on the final minimum.

    Deletion order is processors first (the biggest single cut), then
    operations from the end of each processor's program backwards (late
    operations constrain fewer reads, so they drop most often); after any
    accepted deletion the scan restarts, giving the 1-minimal fixpoint.
    """
    current = history
    found = predicate(current)
    if found is None:
        raise ValueError("predicate does not hold on the history to shrink")
    steps = 0
    attempts = 0

    def try_candidate(candidate: SystemHistory) -> Discrepancy | None:
        nonlocal attempts
        if len(candidate.operations) == 0:
            return None
        attempts += 1
        return predicate(candidate)

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        # Whole processors first: one accepted cut removes many operations.
        if len(current.procs) > 1:
            for proc in current.procs:
                survived = try_candidate(_without_proc(current, proc))
                if survived is not None:
                    current = _without_proc(current, proc)
                    found = survived
                    steps += 1
                    progress = True
                    break
                if attempts >= max_attempts:
                    break
        if progress:
            continue
        # Then single operations, latest-in-program-order first.
        for proc in current.procs:
            for op in reversed(current.ops_of(proc)):
                survived = try_candidate(_without_op(current, op.uid))
                if survived is not None:
                    current = _without_op(current, op.uid)
                    found = survived
                    steps += 1
                    progress = True
                    break
                if attempts >= max_attempts:
                    break
            if progress or attempts >= max_attempts:
                break
    return ShrinkResult(
        history=current, discrepancy=found, steps=steps, attempts=attempts
    )
