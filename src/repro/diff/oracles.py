"""The oracle panel: four independent answers, cross-examined.

The repository can decide "does model M admit history H" five ways:

* **fast** — the registered preferred decision procedure
  (:meth:`repro.checking.models.MemoryModel.check`: per-model fast paths
  where they exist, the kernel driver otherwise);
* **kernel** — the layered constraint kernel's generic driver
  (:func:`repro.kernel.check_with_spec`), uniformly for every spec-backed
  model;
* **legacy** — the frozen pre-kernel monolithic solver
  (:mod:`repro.checking._legacy_solver`), imported here deliberately: this
  module *is* the equivalence-oracle harness that solver was frozen for;
* **incremental** — the streaming session
  (:class:`repro.kernel.incremental.IncrementalCheck`): the history
  replayed op by op through a growing
  :class:`~repro.kernel.incremental.HistoryStream`, with *every prefix*
  verdict compared against a fresh one-shot check of the same prefix —
  the panel's only oracle that also cross-examines the intermediate
  states, not just the final answer;
* **prepass** — the polynomial static battery
  (:func:`repro.staticcheck.prepass_check`), sound in both directions:
  when it decides, the decision must match the kernel, whether DENY
  (a forced contradiction was found) or ADMIT (a legal topological
  witness was constructed per view).

:func:`panel_verdicts` runs all five; :func:`find_discrepancies` flags every
way their answers can be mutually impossible: direct verdict disagreement,
a decided prepass verdict disagreeing with the kernel in either
direction (a soundness violation), a
streamed prefix verdict diverging from a fresh check of the same prefix,
a verdict pattern contradicting the Figure 5 containment lattice (Steinke
& Nutt's unified-theory invariants, free on every random history), and a
machine trace rejected by the very model the machine implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.checking._legacy_solver import legacy_check_with_spec
from repro.checking.models import MODELS
from repro.core.errors import DiffError
from repro.core.history import SystemHistory
from repro.kernel import check_with_spec
from repro.lattice.classify import extended_edges
from repro.staticcheck.prepass import prepass_check

__all__ = [
    "ORACLES",
    "Discrepancy",
    "agreed_verdicts",
    "find_discrepancies",
    "panel_verdicts",
]

#: The panel's members, in reporting order.
ORACLES: tuple[str, ...] = ("fast", "kernel", "legacy", "incremental", "prepass")


def _incremental_replay(spec, history: SystemHistory) -> tuple[bool, bool]:
    """Replay ``history`` op by op through a streaming session.

    Operations are interleaved round-robin across processors (each
    processor's program order preserved), so every intermediate prefix is
    a real multi-processor history, and *each* prefix's incremental
    verdict is compared against a fresh one-shot ``check_with_spec`` of
    that prefix — allowed, reason, explored count, and witness views all
    have to match, the same parity the kernel test-suite asserts.

    Returns ``(final_allowed, every_prefix_matched)``.
    """
    from itertools import zip_longest

    from repro.kernel.incremental import HistoryStream, IncrementalCheck

    stream = HistoryStream()
    inc = IncrementalCheck(spec, stream)
    result = inc.check()
    ok = True
    per_proc: dict[str, list] = {}
    for op in history.operations:
        per_proc.setdefault(op.proc, []).append(op)
    for round_ops in zip_longest(*per_proc.values()):
        for op in round_ops:
            if op is None:
                continue
            placed, reused = stream.append(op)
            result = inc.on_appended((placed,), reused)
            fresh = check_with_spec(spec, stream.history)
            if (
                result.allowed != fresh.allowed
                or result.reason != fresh.reason
                or result.explored != fresh.explored
                or result.views != fresh.views
            ):
                ok = False
    return result.allowed, ok


def panel_verdicts(
    history: SystemHistory, models: Sequence[str]
) -> dict[str, dict[str, bool]]:
    """Every oracle's verdict on ``history``, per model.

    Returns ``{model: {"fast": bool, "kernel": bool, "legacy": bool,
    "incremental": bool, "incremental_prefix_ok": bool,
    "prepass_deny": bool, "prepass_admit": bool}}`` — a plain picklable
    dictionary, so the engine
    can ship panels across its process boundary.  Models without a
    framework spec (the axiomatic TSO reference) only carry the ``fast``
    verdict: the other oracles are spec-driven.
    ``incremental_prefix_ok`` is the streaming oracle's extra claim: every
    intermediate prefix's incremental verdict matched a fresh check of
    that prefix (see :func:`_incremental_replay`).  ``prepass_deny`` and
    ``prepass_admit`` split the static battery's outcome by polarity;
    both ``False`` means it abstained.
    """
    out: dict[str, dict[str, bool]] = {}
    for name in models:
        model = MODELS.get(name)
        if model is None:
            raise DiffError(
                f"unknown model {name!r}; known: {', '.join(MODELS)}"
            )
        verdicts: dict[str, bool] = {"fast": model.check(history).allowed}
        if model.spec is not None:
            verdicts["kernel"] = check_with_spec(model.spec, history).allowed
            verdicts["legacy"] = legacy_check_with_spec(
                model.spec, history
            ).allowed
            final, prefix_ok = _incremental_replay(model.spec, history)
            verdicts["incremental"] = final
            verdicts["incremental_prefix_ok"] = prefix_ok
            pre = prepass_check(model.spec, history)
            verdicts["prepass_deny"] = pre.decided and not pre.allowed
            verdicts["prepass_admit"] = pre.decided and pre.allowed
        out[name] = verdicts
    return out


def agreed_verdicts(panel: dict[str, dict[str, bool]]) -> dict[str, bool]:
    """The kernel verdict per model (the panel's reference answer)."""
    return {
        name: verdicts.get("kernel", verdicts["fast"])
        for name, verdicts in panel.items()
    }


@dataclass(frozen=True)
class Discrepancy:
    """One way the oracle panel's answers are mutually impossible.

    Attributes
    ----------
    kind:
        ``"oracle-disagreement"``, ``"prepass-unsound"``,
        ``"incremental-divergence"``, ``"lattice-violation"``, or
        ``"machine-unsound"``.
    models:
        The model name(s) involved (one, or the (stronger, weaker) pair of
        a violated lattice edge).
    detail:
        Human-readable statement of the contradiction.
    verdicts:
        The panel rows backing the claim, ``{model: {oracle: verdict}}``.
    """

    kind: str
    models: tuple[str, ...]
    detail: str
    verdicts: dict[str, dict[str, bool]] = field(default_factory=dict, hash=False)

    @property
    def key(self) -> tuple[str, tuple[str, ...]]:
        """The (kind, models) identity a shrink step must preserve."""
        return (self.kind, self.models)

    def render(self) -> str:
        models = "/".join(self.models)
        return f"[{self.kind}] {models}: {self.detail}"


def find_discrepancies(
    panel: dict[str, dict[str, bool]],
    *,
    machine_model: str | None = None,
    edges: Sequence[tuple[str, str]] | None = None,
) -> list[Discrepancy]:
    """Every contradiction the panel's verdicts contain.

    ``machine_model`` names the model whose operational machine generated
    the history (if any): such a trace is allowed by construction, so a
    DENY from that model is itself a discrepancy even though the oracles
    agree with each other.  ``edges`` are the containment claims asserted
    on every history (default: the full registry-derived lattice of
    :func:`~repro.lattice.classify.extended_edges`, so a model registered
    without bespoke plumbing here still gets containment-checked); an
    edge is only checked when both of its models were consulted.
    """
    if edges is None:
        edges = extended_edges()
    found: list[Discrepancy] = []
    for name, verdicts in panel.items():
        row = {name: verdicts}
        spec_backed = "kernel" in verdicts
        if spec_backed:
            answers = {
                o: verdicts[o]
                for o in ("fast", "kernel", "legacy", "incremental")
                if o in verdicts
            }
            if len(set(answers.values())) > 1:
                detail = ", ".join(
                    f"{o}={'ADMIT' if v else 'DENY'}" for o, v in answers.items()
                )
                found.append(
                    Discrepancy("oracle-disagreement", (name,), detail, row)
                )
            if verdicts["prepass_deny"] and verdicts["kernel"]:
                found.append(
                    Discrepancy(
                        "prepass-unsound",
                        (name,),
                        "static pre-pass DENYs a history the kernel ADMITs",
                        row,
                    )
                )
            if verdicts.get("prepass_admit") and not verdicts["kernel"]:
                found.append(
                    Discrepancy(
                        "prepass-unsound",
                        (name,),
                        "static pre-pass ADMITs a history the kernel DENYs",
                        row,
                    )
                )
            if not verdicts.get("incremental_prefix_ok", True):
                found.append(
                    Discrepancy(
                        "incremental-divergence",
                        (name,),
                        "a streamed prefix's incremental verdict diverged "
                        "from a fresh check of the same prefix",
                        row,
                    )
                )
    reference = agreed_verdicts(panel)
    for stronger, weaker in edges:
        if stronger not in reference or weaker not in reference:
            continue
        if reference[stronger] and not reference[weaker]:
            found.append(
                Discrepancy(
                    "lattice-violation",
                    (stronger, weaker),
                    f"{stronger}-admitted but {weaker}-denied "
                    f"(the lattice claims {stronger} ⊆ {weaker})",
                    {stronger: panel[stronger], weaker: panel[weaker]},
                )
            )
    if machine_model is not None:
        if machine_model not in reference:
            raise DiffError(
                f"machine model {machine_model!r} missing from the panel"
            )
        if not reference[machine_model]:
            found.append(
                Discrepancy(
                    "machine-unsound",
                    (machine_model,),
                    f"an operational {machine_model} machine produced this "
                    "trace, but the declarative model denies it",
                    {machine_model: panel[machine_model]},
                )
            )
    return found
