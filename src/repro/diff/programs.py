"""Random-program fuzzing: static DRF verdicts vs dynamic race detection.

The history strata of :mod:`repro.diff.shapes` exercise the *kernel*; the
``program:*`` strata here exercise the *static program analysis*.  Each
sample is a small random pseudocode program; the oracle runs it on an SC
machine under several random schedules and demands that every race the
dynamic :func:`repro.analysis.labeling.find_races` observes is accounted
for by the static :func:`repro.staticcheck.progcheck.analyze_program`
report (flagged as a potential race, or classified cs-protected).  A
statically-certified-DRF program that races dynamically is exactly the
soundness bug the stratum hunts — recorded as a ``static-unsound``
discrepancy with the offending program text, shrunk line-by-line to a
minimal witness.

Three strata, mirroring the structural coverage of the history presets:

* ``program:straightline`` — unstructured reads/writes over bare
  locations with random ``sync`` labels;
* ``program:indexed`` — accesses through thread-indexed locations
  (``a[i]``, ``a[1 - i]``, constants), stressing the aliasing analysis;
* ``program:branchy`` — the same under thread-dependent branches and
  loop-free conditionals, stressing the CFG dataflow;
* ``program:handshake`` — a terminating flag handshake with ``await``,
  the only stratum that generates spin reads (each thread publishes its
  own flag before waiting, so every fair schedule terminates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import find_races
from repro.core.history import SystemHistory
from repro.diff.oracles import Discrepancy
from repro.machines import SCMachine
from repro.programs import RandomScheduler, run
from repro.programs.pseudocode import parse_program
from repro.staticcheck.progcheck import analyze_program, report_covers_races

__all__ = [
    "GeneratedProgram",
    "ProgramShape",
    "PROGRAM_SHAPES",
    "random_program",
    "program_discrepancy",
    "shrink_program",
    "resolve_program_shapes",
]


@dataclass(frozen=True)
class GeneratedProgram:
    """One fuzz sample: program text plus its analysis parameters."""

    text: str
    shared: tuple[str, ...]
    threads: int = 2

    def render(self) -> str:
        header = f"# shared: {', '.join(self.shared) or '(none)'}"
        return header + "\n" + self.text


@dataclass(frozen=True)
class ProgramShape:
    """One program stratum: a named generator regime."""

    name: str
    kind: str  # "straightline" | "indexed" | "branchy" | "handshake"
    statements: int = 5
    threads: int = 2
    p_sync: float = 0.4


PROGRAM_SHAPES: dict[str, ProgramShape] = {
    s.name: s
    for s in (
        ProgramShape("program:straightline", "straightline"),
        ProgramShape("program:indexed", "indexed", statements=5),
        ProgramShape("program:branchy", "branchy", statements=6),
        ProgramShape("program:handshake", "handshake", statements=3),
    )
}


def resolve_program_shapes(names: tuple[str, ...]) -> tuple[ProgramShape, ...]:
    """Presets for ``names``; ``program:*`` expands to every stratum."""
    out: list[ProgramShape] = []
    for name in names:
        if name == "program:*":
            out.extend(PROGRAM_SHAPES.values())
        else:
            out.append(PROGRAM_SHAPES[name])
    seen: set[str] = set()
    unique = []
    for shape in out:
        if shape.name not in seen:
            seen.add(shape.name)
            unique.append(shape)
    return tuple(unique)


# -- generation -----------------------------------------------------------------

_BARE_LOCS = ("x", "y")
_INDEXED = ("a[i]", "a[1 - i]", "a[0]", "a[1]")


def _sync(rng: np.random.Generator, p: float) -> str:
    return " sync" if rng.random() < p else ""


def _access(rng: np.random.Generator, shape: ProgramShape, loc: str, t: int) -> str:
    suffix = _sync(rng, shape.p_sync)
    if rng.random() < 0.5:
        return f"{loc} := {int(rng.integers(1, 4))}{suffix}"
    return f"t{t} := read {loc}{suffix}"


def random_program(
    rng: np.random.Generator, shape: ProgramShape
) -> GeneratedProgram:
    """Draw one program from the stratum (deterministic in ``rng``)."""
    lines: list[str] = []
    if shape.kind == "handshake":
        # Publish own flag, wait for the peer's, then touch shared data.
        # Both flag writes precede both awaits on every schedule, so the
        # program always terminates; only the labels are random.
        lines.append(f"flag[i] := 1{_sync(rng, shape.p_sync)}")
        lines.append(f"await flag[1 - i] == 1{_sync(rng, shape.p_sync)}")
        for t in range(shape.statements):
            loc = _BARE_LOCS[int(rng.integers(0, len(_BARE_LOCS)))]
            lines.append(_access(rng, shape, loc, t))
        return GeneratedProgram("\n".join(lines) + "\n", _BARE_LOCS, shape.threads)

    pool: tuple[str, ...]
    if shape.kind == "indexed":
        pool = _INDEXED + _BARE_LOCS[:1]
    else:
        pool = _BARE_LOCS
    body: list[str] = []
    for t in range(shape.statements):
        loc = pool[int(rng.integers(0, len(pool)))]
        body.append(_access(rng, shape, loc, t))
    if shape.kind == "branchy":
        # Wrap a random middle run of statements in a thread-dependent
        # conditional; sometimes add an else arm.
        cut = int(rng.integers(1, len(body)))
        cond = "i == 0" if rng.random() < 0.5 else "i != 0"
        wrapped = [f"if {cond}:"] + ["  " + s for s in body[:cut]]
        if rng.random() < 0.5 and cut < len(body):
            wrapped += ["else:"] + ["  " + s for s in body[cut:]]
            body = wrapped
        else:
            body = wrapped + body[cut:]
    return GeneratedProgram("\n".join(body) + "\n", _BARE_LOCS, shape.threads)


# -- the static-vs-dynamic oracle ------------------------------------------------


def program_discrepancy(
    sample: GeneratedProgram,
    *,
    name: str = "program",
    runs: int = 6,
    max_steps: int = 600,
) -> tuple[Discrepancy, SystemHistory] | None:
    """Dynamic races the static report cannot account for, if any.

    Runs the program on an SC machine under ``runs`` random schedules; a
    race pair :func:`find_races` observes whose location base the static
    report neither flags nor classifies cs-protected is a soundness bug in
    the static layer.  Returns the discrepancy plus the witnessing
    history, or ``None`` when the static report covers every observed
    race.  Histories from schedules that exceed ``max_steps`` are still
    checked — an incomplete run's races are real races.
    """
    try:
        program = parse_program(sample.text, shared=sample.shared)
        report = analyze_program(
            program, name=name, threads=sample.threads
        )
    except Exception as exc:  # generator bug, not an analysis discrepancy
        raise AssertionError(
            f"generated program failed to parse/analyze: {exc}\n{sample.text}"
        ) from exc
    procs = tuple(f"p{t}" for t in range(sample.threads))
    for seed in range(runs):
        machine = SCMachine(procs)
        factories = {
            proc: (lambda t=t: program.thread(i=t, n=sample.threads))
            for t, proc in enumerate(procs)
        }
        result = run(
            machine, factories, RandomScheduler(seed), max_steps=max_steps
        )
        races = find_races(result.history)
        if races and not report_covers_races(report, races):
            a, b = races[0]
            covered = sorted(report.race_bases | report.cs_protected_bases)
            detail = (
                f"dynamic race on {a.location!r} ({a} vs {b}, schedule seed "
                f"{seed}) not covered by the static report "
                f"(covers: {', '.join(covered) or 'nothing'})\n"
                f"{sample.render()}"
            )
            return (
                Discrepancy("static-unsound", ("progcheck",), detail),
                result.history,
            )
    return None


def shrink_program(
    sample: GeneratedProgram,
    *,
    runs: int = 6,
    max_steps: int = 600,
) -> GeneratedProgram:
    """Line-deletion shrinking: a 1-minimal program keeping the discrepancy.

    Tries deleting each line in turn (skipping candidates that no longer
    parse) until no single deletion preserves the static/dynamic
    disagreement.
    """
    current = sample
    changed = True
    while changed:
        changed = False
        lines = current.text.splitlines()
        for drop in range(len(lines)):
            candidate_text = "\n".join(
                line for k, line in enumerate(lines) if k != drop
            )
            candidate = GeneratedProgram(
                candidate_text + "\n", current.shared, current.threads
            )
            try:
                found = program_discrepancy(
                    candidate, runs=runs, max_steps=max_steps
                )
            except Exception:
                continue  # deletion broke the program; try the next line
            if found is not None:
                current = candidate
                changed = True
                break
    return current
