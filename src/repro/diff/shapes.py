"""Stratified history generation for the differential fuzzer.

A :class:`ShapePreset` names one region of history space worth fuzzing —
small-and-dense, wide, deep, single-location contention, impossible-read
noise, or the trace set of one operational machine — and knows how to draw
samples from it.  A fuzz campaign stratifies its budget across several
presets so no single structural regime dominates the corpus.

Structural presets sample :func:`repro.analysis.random_histories.random_history`
directly; ``machine:*`` presets run a random straight-line program on the
named operational machine (:func:`~repro.analysis.random_histories.machine_history`)
so every sample is, by construction, a trace the machine's declarative model
must admit — the operational leg of the oracle panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.random_histories import machine_history, random_history
from repro.core.errors import DiffError
from repro.core.history import SystemHistory
from repro.machines import (
    CausalMachine,
    CoherentMachine,
    MemoryMachine,
    PCMachine,
    PRAMMachine,
    SCMachine,
    TSOMachine,
)

__all__ = [
    "ShapePreset",
    "SHAPE_PRESETS",
    "DEFAULT_SHAPES",
    "resolve_shapes",
]

#: Machine factories for the ``machine:*`` presets, paired with the model
#: every generated trace must satisfy (mirrors
#: :data:`repro.machines.MACHINE_MODEL_PAIRS`; TSO pairs with the axiomatic
#: reference because the operational machine forwards stores).
_MACHINES: dict[str, tuple[Callable[[tuple[str, ...]], MemoryMachine], str]] = {
    "sc": (lambda procs: SCMachine(procs), "SC"),
    "tso": (lambda procs: TSOMachine(procs), "TSO-axiomatic"),
    "pc": (lambda procs: PCMachine(procs), "PC"),
    "pram": (lambda procs: PRAMMachine(procs), "PRAM"),
    "causal": (lambda procs: CausalMachine(procs), "Causal"),
    "coherent": (lambda procs: CoherentMachine(procs), "Coherence"),
}


@dataclass(frozen=True)
class ShapePreset:
    """One stratum of the fuzzer's history space.

    Attributes
    ----------
    name:
        The preset's registry key (and the prefix of corpus keys).
    procs, ops_per_proc, locations, p_write:
        Generation parameters, passed through to the generator.
    values:
        Extra candidate read values with no writer guarantee (the
        impossible-read noise pool); ``None`` keeps every read observable.
    machine:
        ``None`` for structural sampling, or a key of the machine table for
        operational trace generation.
    """

    name: str
    procs: int = 2
    ops_per_proc: int = 3
    locations: tuple[str, ...] = ("x", "y")
    p_write: float = 0.5
    values: tuple[int, ...] | None = None
    machine: str | None = None

    def __post_init__(self) -> None:
        if self.machine is not None and self.machine not in _MACHINES:
            raise DiffError(
                f"shape {self.name!r}: unknown machine {self.machine!r}; "
                f"known: {', '.join(sorted(_MACHINES))}"
            )

    @property
    def machine_model(self) -> str | None:
        """The model every sample of a machine preset must satisfy."""
        if self.machine is None:
            return None
        return _MACHINES[self.machine][1]

    def generate(self, rng: np.random.Generator) -> SystemHistory:
        """Draw one history from this stratum."""
        if self.machine is not None:
            factory, _ = _MACHINES[self.machine]
            machine = factory(tuple(f"p{i}" for i in range(self.procs)))
            return machine_history(
                machine,
                rng,
                ops_per_proc=self.ops_per_proc,
                locations=self.locations,
                p_write=self.p_write,
            )
        return random_history(
            rng,
            procs=self.procs,
            ops_per_proc=self.ops_per_proc,
            locations=self.locations,
            p_write=self.p_write,
            values=self.values,
        )


def _presets(presets: Sequence[ShapePreset]) -> dict[str, ShapePreset]:
    return {p.name: p for p in presets}


#: The named strata.  Sizes stay within the kernel's comfort zone (the
#: checks are exponential in the worst case) while covering the regimes
#: that historically separate checkers: density, width, depth, contention,
#: impossible reads, and operational traces.
SHAPE_PRESETS: dict[str, ShapePreset] = _presets(
    [
        ShapePreset("tiny", procs=2, ops_per_proc=2, locations=("x",)),
        ShapePreset("small", procs=2, ops_per_proc=3),
        ShapePreset("wide", procs=4, ops_per_proc=2, locations=("x", "y", "z")),
        ShapePreset("deep", procs=2, ops_per_proc=5),
        ShapePreset(
            "contended", procs=3, ops_per_proc=3, locations=("x",), p_write=0.7
        ),
        ShapePreset(
            "sparse",
            procs=3,
            ops_per_proc=3,
            locations=("x", "y", "z", "w"),
            p_write=0.3,
        ),
        ShapePreset("noisy", procs=2, ops_per_proc=3, values=(97, 98, 99)),
        # Long per-processor sessions over few locations: the regime where
        # the session guarantees (ryw/mr/mw/wfr) separate from each other
        # and from PRAM/Causal — violations need several same-processor
        # operations in a row.
        ShapePreset("sessions", procs=2, ops_per_proc=4, p_write=0.4),
        # Write-heavy histories over four locations: the round-robin block
        # maps of partition-2 and partition-3 only disagree once a fourth
        # location exists, so this stratum is where the partition arities
        # separate from each other and from Coherence.
        ShapePreset(
            "blocks",
            procs=3,
            ops_per_proc=2,
            locations=("u", "x", "y", "z"),
            p_write=0.6,
        ),
        ShapePreset("machine:sc", machine="sc", procs=2, ops_per_proc=3),
        ShapePreset("machine:tso", machine="tso", procs=2, ops_per_proc=3),
        ShapePreset("machine:pc", machine="pc", procs=2, ops_per_proc=3),
        ShapePreset("machine:pram", machine="pram", procs=2, ops_per_proc=3),
        ShapePreset("machine:causal", machine="causal", procs=2, ops_per_proc=3),
        ShapePreset("machine:coherent", machine="coherent", procs=2, ops_per_proc=3),
    ]
)

#: The default stratification: every structural preset plus the machine
#: strata whose paired model is spec-backed (so all four oracles apply).
DEFAULT_SHAPES: tuple[str, ...] = (
    "tiny",
    "small",
    "wide",
    "deep",
    "contended",
    "sparse",
    "noisy",
    "sessions",
    "blocks",
    "machine:sc",
    "machine:pram",
    "machine:causal",
)


def resolve_shapes(names: Sequence[str] | str) -> tuple[ShapePreset, ...]:
    """Presets for ``names`` (a sequence or a comma-separated string).

    ``"default"`` (or an empty selection) expands to :data:`DEFAULT_SHAPES`;
    ``"all"`` to every registered preset.
    """
    if isinstance(names, str):
        names = tuple(n for n in names.split(",") if n)
    if not names or tuple(names) == ("default",):
        names = DEFAULT_SHAPES
    elif tuple(names) == ("all",):
        names = tuple(SHAPE_PRESETS)
    unknown = [n for n in names if n not in SHAPE_PRESETS]
    if unknown:
        raise DiffError(
            f"unknown shape preset(s) {', '.join(unknown)}; "
            f"known: {', '.join(SHAPE_PRESETS)}"
        )
    return tuple(SHAPE_PRESETS[n] for n in names)
