"""The differential-fuzzing campaign driver.

:func:`run_fuzz` draws a stratified stream of histories
(:mod:`repro.diff.shapes`), cross-examines every sample with the oracle
panel (:mod:`repro.diff.oracles`) — in parallel through
:meth:`repro.engine.CheckEngine.map_panel` when an engine with workers is
supplied — shrinks every discrepancy to a 1-minimal witness
(:mod:`repro.diff.shrink`) with a kernel :mod:`repro.obs` trace attached,
and records findings in a resumable :class:`~repro.diff.corpus.DiscrepancyCorpus`.

Determinism: each (shape, seed) stratum owns an independent
``numpy.random.Generator`` seeded from ``(seed, shape index)``, so the
sample stream of one stratum never depends on which other strata run, and
a resumed campaign regenerates (and skips) exactly the samples a previous
run already checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.checking.models import MODELS, PAPER_MODELS
from repro.core.errors import DiffError
from repro.core.history import SystemHistory
from repro.diff.corpus import DiscrepancyCorpus, stratum_key
from repro.diff.oracles import (
    Discrepancy,
    agreed_verdicts,
    find_discrepancies,
    panel_verdicts,
)
from repro.diff.programs import (
    PROGRAM_SHAPES,
    ProgramShape,
    program_discrepancy,
    random_program,
    resolve_program_shapes,
    shrink_program,
)
from repro.diff.shapes import ShapePreset, resolve_shapes
from repro.diff.shrink import ShrinkResult, shrink_history
from repro.lattice.classify import extended_edges
from repro.orders.memo import relation_memo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine maps panels)
    from repro.engine.pool import CheckEngine

__all__ = [
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "SEPARATOR_PATTERNS",
    "harvest_fixtures",
    "run_fuzz",
]


@dataclass(frozen=True)
class FuzzConfig:
    """A declarative fuzz campaign description.

    Attributes
    ----------
    seed:
        Base seed; each stratum derives its own generator from it.
    count:
        Total histories across all shapes (split evenly, remainder to the
        earlier shapes).
    shapes:
        Shape preset names (see :data:`repro.diff.shapes.SHAPE_PRESETS`),
        or ``("default",)`` / ``("all",)``.
    models:
        The model panel.  Machine strata implicitly add their paired model.
    shrink:
        Minimize each discrepancy before recording it.
    max_shrink_attempts:
        Bound on candidate re-checks per shrink run.
    trace_steps:
        Cap on rendered kernel-trace steps attached to a minimal witness.
    """

    seed: int = 0
    count: int = 100
    shapes: tuple[str, ...] = ("default",)
    models: tuple[str, ...] = PAPER_MODELS
    shrink: bool = True
    max_shrink_attempts: int = 2000
    trace_steps: int = 60

    def __post_init__(self) -> None:
        if self.count < 1:
            raise DiffError(f"count must be >= 1, got {self.count}")
        if not self.models:
            raise DiffError("a fuzz campaign needs at least one model")
        unknown = [m for m in self.models if m not in MODELS]
        if unknown:
            raise DiffError(
                f"unknown model(s) {', '.join(unknown)}; known: {', '.join(MODELS)}"
            )
        # Fail fast on unknown presets of either kind.
        self.resolved_shapes()
        self.resolved_program_shapes()

    def resolved_shapes(self) -> tuple[ShapePreset, ...]:
        """The concrete *history* presets of :attr:`shapes`.

        ``program:*`` strata are resolved separately by
        :meth:`resolved_program_shapes`; a campaign naming only program
        strata has no history presets at all.
        """
        history = tuple(n for n in self.shapes if not n.startswith("program:"))
        if not history and any(n.startswith("program:") for n in self.shapes):
            return ()
        return resolve_shapes(history if history else self.shapes)

    def resolved_program_shapes(self) -> tuple[ProgramShape, ...]:
        """The ``program:*`` strata of :attr:`shapes` (see
        :mod:`repro.diff.programs`)."""
        names = tuple(n for n in self.shapes if n.startswith("program:"))
        try:
            return resolve_program_shapes(names)
        except KeyError as exc:
            raise DiffError(
                f"unknown program shape {exc.args[0]!r}; known: "
                "program:*, " + ", ".join(sorted(PROGRAM_SHAPES))
            ) from exc

    def describe(self) -> dict:
        """A JSON-compatible description (recorded in the corpus header)."""
        return {
            "seed": self.seed,
            "count": self.count,
            "shapes": [p.name for p in self.resolved_shapes()]
            + [p.name for p in self.resolved_program_shapes()],
            "models": list(self.models),
            "shrink": self.shrink,
        }


@dataclass(frozen=True)
class Finding:
    """One discrepancy, as found and as minimized.

    ``shrunk`` is ``None`` when shrinking was disabled; ``trace`` is the
    rendered kernel trace of the minimal (or original) history under the
    first spec-backed model the discrepancy names.
    """

    key: str
    shape: str
    history: SystemHistory
    discrepancy: Discrepancy
    shrunk: ShrinkResult | None = None
    trace: str = ""

    @property
    def minimal_history(self) -> SystemHistory:
        return self.shrunk.history if self.shrunk is not None else self.history

    def render(self) -> str:
        from repro.litmus import format_history

        lines = [
            f"{self.key}: {self.discrepancy.render()}",
            f"  found:  {format_history(self.history, oneline=True)}",
        ]
        if self.shrunk is not None:
            lines.append(
                f"  shrunk: {format_history(self.shrunk.history, oneline=True)}"
                f"  ({self.shrunk.steps} deletion(s), "
                f"{self.shrunk.attempts} re-check(s))"
            )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """What a campaign checked and what it found."""

    config: FuzzConfig
    checked: int = 0
    skipped: int = 0
    per_shape: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the campaign found no discrepancies."""
        return not self.findings

    def render(self) -> str:
        strata = ", ".join(f"{s}={n}" for s, n in self.per_shape.items())
        lines = [
            f"fuzzed {self.checked} histories "
            f"(seed {self.config.seed}; {strata})"
        ]
        if self.skipped:
            lines.append(f"resumed: {self.skipped} already-checked samples skipped")
        if self.clean:
            lines.append("no discrepancies: all oracles agree, lattice invariants hold")
        else:
            lines.append(f"{len(self.findings)} DISCREPANCY(IES):")
            lines.extend(f.render() for f in self.findings)
        return "\n".join(lines)


def _quotas(count: int, shapes: Sequence[ShapePreset]) -> list[int]:
    """Split ``count`` samples across strata (earlier strata get remainders)."""
    base, extra = divmod(count, len(shapes))
    return [base + (1 if i < extra else 0) for i in range(len(shapes))]


def _panel_models(
    config: FuzzConfig, preset: ShapePreset
) -> tuple[tuple[str, ...], str | None]:
    """The model panel for one stratum (+ the machine-soundness model)."""
    machine_model = preset.machine_model
    models = tuple(config.models)
    if machine_model is not None and machine_model not in models:
        models = models + (machine_model,)
    return models, machine_model


def _kernel_trace(
    history: SystemHistory, discrepancy: Discrepancy, max_steps: int
) -> str:
    """A rendered kernel trace of the first spec-backed model involved."""
    from repro.obs import RecordingSink, render_trace
    from repro.kernel import check_with_spec

    for name in discrepancy.models:
        spec = MODELS[name].spec
        if spec is None:
            continue
        sink = RecordingSink()
        check_with_spec(spec, history, trace=sink)
        return render_trace(sink.events, max_steps=max_steps)
    return ""


def _shrink_predicate(
    target: Discrepancy, models: tuple[str, ...], machine_model: str | None
):
    """A shrink predicate preserving ``target``'s (kind, models) identity.

    ``machine-unsound`` findings keep their machine obligation during
    shrinking: a sub-history of a machine trace is no longer *known* to be
    machine-producible, but the discrepancy claim being minimized is "the
    paired model denies this trace", which only sharpens as operations
    drop — the minimal witness must still be validated against a real
    machine run by a human, and the recorded original preserves the proof.
    """

    def predicate(candidate: SystemHistory) -> Discrepancy | None:
        panel = panel_verdicts(candidate, models)
        for d in find_discrepancies(panel, machine_model=machine_model):
            if d.key == target.key:
                return d
        return None

    return predicate


def run_fuzz(
    config: FuzzConfig,
    engine: "CheckEngine | None" = None,
    corpus: DiscrepancyCorpus | None = None,
    resume: bool = False,
) -> FuzzReport:
    """Run a fuzz campaign; return (and optionally persist) its findings.

    With an ``engine``, whole strata are panel-checked through
    :meth:`~repro.engine.CheckEngine.map_panel` — parallel across worker
    processes when the engine has ``jobs > 1``, with identical verdicts.
    With a ``corpus``, findings are appended as ``discrepancy`` records and
    per-stratum ``progress`` markers make the campaign resumable:
    ``resume=True`` skips samples a previous run already checked.
    """
    if resume and corpus is None:
        raise DiffError("resume needs a corpus to resume from")
    shapes = config.resolved_shapes()
    program_shapes = config.resolved_program_shapes()
    all_quotas = _quotas(
        config.count, tuple(shapes) + tuple(program_shapes)
    )
    quotas = all_quotas[: len(shapes)]
    done = corpus.completed() if (corpus is not None and resume) else {}
    report = FuzzReport(config=config)
    if corpus is not None:
        corpus.append_run_header(
            {**config.describe(), "resumed": bool(done)}
        )

    for shape_index, (preset, quota) in enumerate(zip(shapes, quotas)):
        if quota == 0:
            continue
        models, machine_model = _panel_models(config, preset)
        stratum = stratum_key(preset.name, config.seed)
        already = min(done.get(stratum, 0), quota)
        rng = np.random.default_rng((config.seed, shape_index))
        histories = [preset.generate(rng) for _ in range(quota)]
        todo = histories[already:]
        report.skipped += already
        report.per_shape[preset.name] = quota

        if engine is not None:
            panels = engine.map_panel(todo, models)
        else:
            # Serial path: memoize the derived relations history-major, so
            # the four oracles share one substrate per history.
            panels = []
            with relation_memo():
                for h in todo:
                    panels.append(panel_verdicts(h, models))

        for offset, (history, panel) in enumerate(zip(todo, panels)):
            index = already + offset
            key = f"{stratum}:{index:06d}"
            report.checked += 1
            for d in find_discrepancies(panel, machine_model=machine_model):
                finding = _minimize(config, key, preset, history, d,
                                    models, machine_model)
                report.findings.append(finding)
                if corpus is not None:
                    corpus.append_discrepancy(
                        key,
                        kind=d.kind,
                        models=d.models,
                        detail=d.detail,
                        history=history,
                        shrunk=(
                            finding.shrunk.history
                            if finding.shrunk is not None
                            else None
                        ),
                        verdicts=finding.discrepancy.verdicts,
                        trace=finding.trace,
                        shrink_steps=(
                            finding.shrunk.steps
                            if finding.shrunk is not None
                            else 0
                        ),
                    )
        if corpus is not None:
            corpus.append_progress(stratum, quota)

    for k, (pshape, quota) in enumerate(
        zip(program_shapes, all_quotas[len(shapes):])
    ):
        if quota == 0:
            continue
        stratum = stratum_key(pshape.name, config.seed)
        already = min(done.get(stratum, 0), quota)
        rng = np.random.default_rng((config.seed, len(shapes) + k))
        samples = [random_program(rng, pshape) for _ in range(quota)]
        report.skipped += already
        report.per_shape[pshape.name] = quota
        for index in range(already, quota):
            sample = samples[index]
            key = f"{stratum}:{index:06d}"
            report.checked += 1
            found = program_discrepancy(sample, name=pshape.name)
            if found is None:
                continue
            discrepancy, history = found
            trace = sample.render()
            if config.shrink:
                minimal = shrink_program(sample)
                refound = program_discrepancy(minimal, name=pshape.name)
                if refound is not None:
                    discrepancy, history = refound
                    trace = minimal.render()
            report.findings.append(
                Finding(
                    key=key,
                    shape=pshape.name,
                    history=history,
                    discrepancy=discrepancy,
                    shrunk=None,
                    trace=trace,
                )
            )
            if corpus is not None:
                corpus.append_discrepancy(
                    key,
                    kind=discrepancy.kind,
                    models=discrepancy.models,
                    detail=discrepancy.detail,
                    history=history,
                    shrunk=None,
                    verdicts=discrepancy.verdicts,
                    trace=trace,
                    shrink_steps=0,
                )
        if corpus is not None:
            corpus.append_progress(stratum, quota)
    return report


#: Verdict patterns worth pinning as regression fixtures: ``(label,
#: admitting model, denying model)``.  One per registry-derived lattice
#: edge — a witness that *separates* the weaker model from the stronger,
#: proving the containment is strict — plus notable incomparable pairs in
#: both directions (PC/Causal from Figure 5; the partition arities, whose
#: round-robin block maps stop nesting on four locations).
SEPARATOR_PATTERNS: tuple[tuple[str, str, str], ...] = tuple(
    (f"{weaker}-not-{stronger}", weaker, stronger)
    for stronger, weaker in extended_edges()
) + (
    ("PC-not-Causal", "PC", "Causal"),
    ("Causal-not-PC", "Causal", "PC"),
    ("partition-2-not-partition-3", "partition-2", "partition-3"),
    ("partition-3-not-partition-2", "partition-3", "partition-2"),
)


def _separator_predicate(admit: str, deny: str, models: tuple[str, ...]):
    """A shrink claim: ``admit`` ADMITs, ``deny`` DENYs, panel is clean.

    :func:`~repro.diff.shrink.shrink_history` minimizes any panel-backed
    claim expressed as a ``Discrepancy | None`` predicate; here the claim
    is a *separation* rather than a contradiction, which is how clean
    campaigns still yield minimal, verdict-locked corpus fixtures.
    """

    def predicate(candidate: SystemHistory) -> Discrepancy | None:
        panel = panel_verdicts(candidate, models)
        if find_discrepancies(panel):
            return None  # never lock a fixture on a discrepant candidate
        agreed = agreed_verdicts(panel)
        if agreed[admit] and not agreed[deny]:
            return Discrepancy(
                "separator",
                (admit, deny),
                f"{admit}-admitted, {deny}-denied",
                panel,
            )
        return None

    return predicate


def harvest_fixtures(
    config: FuzzConfig,
    engine: "CheckEngine | None" = None,
) -> list[tuple[str, SystemHistory, dict[str, bool], str]]:
    """Mine a clean campaign for minimal, verdict-locked litmus fixtures.

    For every :data:`SEPARATOR_PATTERNS` entry whose two models are in the
    campaign's panel, this searches the campaign's deterministic sample
    stream for the first separating witness, shrinks it while the
    separation persists (and the panel stays clean), and locks the agreed
    verdict vector of the minimal history.  The harvest seeds the
    checked-in regression corpus: each fixture pins the panel's exact
    answers on a minimal history, so future drift in any oracle trips the
    tier-1 replay test.

    Returns ``[(key, history, expected, origin)]`` — the arguments of
    :meth:`~repro.diff.corpus.DiscrepancyCorpus.append_litmus`.
    """
    wanted = {
        (label, admit, deny)
        for (label, admit, deny) in SEPARATOR_PATTERNS
        if admit in config.models and deny in config.models
    }
    fixtures: list[tuple[str, SystemHistory, dict[str, bool], str]] = []
    shapes = config.resolved_shapes()
    quotas = _quotas(config.count, shapes)
    for shape_index, (preset, quota) in enumerate(zip(shapes, quotas)):
        if not wanted:
            break
        if quota == 0:
            continue
        models, machine_model = _panel_models(config, preset)
        rng = np.random.default_rng((config.seed, shape_index))
        histories = [preset.generate(rng) for _ in range(quota)]
        if engine is not None:
            panels = engine.map_panel(histories, models)
        else:
            panels = []
            with relation_memo():
                for h in histories:
                    panels.append(panel_verdicts(h, models))
        for index, (history, panel) in enumerate(zip(histories, panels)):
            if not wanted:
                break
            if find_discrepancies(panel, machine_model=machine_model):
                continue  # a discrepant history is a bug, not a fixture
            agreed = agreed_verdicts(panel)
            for pattern in sorted(wanted):
                label, admit, deny = pattern
                if not (agreed[admit] and not agreed[deny]):
                    continue
                wanted.discard(pattern)
                shrunk = shrink_history(
                    history,
                    _separator_predicate(admit, deny, models),
                    max_attempts=config.max_shrink_attempts,
                )
                minimal = shrunk.history
                expected = agreed_verdicts(panel_verdicts(minimal, models))
                origin = (
                    f"fuzz(seed={config.seed}, shape={preset.name}, "
                    f"sample={index}); shrunk by {shrunk.steps} deletion(s)"
                )
                fixtures.append(
                    (f"separator:{label}", minimal, expected, origin)
                )
    return fixtures


def _minimize(
    config: FuzzConfig,
    key: str,
    preset: ShapePreset,
    history: SystemHistory,
    discrepancy: Discrepancy,
    models: tuple[str, ...],
    machine_model: str | None,
) -> Finding:
    """Shrink one discrepancy (when enabled) and attach its kernel trace."""
    shrunk: ShrinkResult | None = None
    final = discrepancy
    if config.shrink:
        shrunk = shrink_history(
            history,
            _shrink_predicate(discrepancy, models, machine_model),
            max_attempts=config.max_shrink_attempts,
        )
        final = shrunk.discrepancy
    witness = shrunk.history if shrunk is not None else history
    trace = _kernel_trace(witness, final, config.trace_steps)
    return Finding(
        key=key,
        shape=preset.name,
        history=history,
        discrepancy=final,
        shrunk=shrunk,
        trace=trace,
    )
