"""The discrepancy corpus: fuzzer findings as a permanent JSONL log.

Built on the engine's :class:`~repro.engine.store.JsonlLog` substrate
(append-only, flushed per record, truncated-tail repair, strict about
interior corruption), with four record types:

``run``
    A campaign header: corpus-format version, seed, count, shapes,
    models, start timestamp.  Resumed campaigns append a second header.
``progress``
    ``{"type": "progress", "stratum": "<shape>@<seed>", "done": N}`` —
    the resume marker: the first ``N`` samples of that stratum are
    already checked (last record wins).
``discrepancy``
    One finding: the stable key, the discrepancy kind/models/detail, the
    original and shrunk histories in litmus notation, the oracle
    verdicts, and a rendered kernel trace of the minimal history.
``litmus``
    A *resolved* finding promoted to a regression fixture: the minimal
    history plus the agreed post-fix verdicts every oracle must keep
    reproducing.  ``tests/diff`` replays every ``litmus`` record of the
    checked-in seed corpus as part of tier-1.
"""

from __future__ import annotations

import time

from repro.core.errors import DiffError
from repro.core.history import SystemHistory
from repro.engine.store import JsonlLog
from repro.litmus import format_history, parse_history

__all__ = ["CORPUS_VERSION", "DiscrepancyCorpus", "stratum_key"]

#: Bumped on any incompatible change to the corpus record format.
CORPUS_VERSION = 1


def stratum_key(shape: str, seed: int) -> str:
    """The resume identity of one (shape preset, seed) generation stream."""
    return f"{shape}@{seed}"


class DiscrepancyCorpus(JsonlLog):
    """An append-only JSONL corpus of differential-fuzzing findings."""

    # -- writing -----------------------------------------------------------------

    def append_run_header(self, meta: dict) -> None:
        """Record the start of a campaign (seed, count, shapes, models)."""
        self._append(
            {
                "type": "run",
                "corpus_version": CORPUS_VERSION,
                "started": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                **meta,
            }
        )

    def append_progress(self, stratum: str, done: int) -> None:
        """Mark the first ``done`` samples of ``stratum`` as checked."""
        if done < 0:
            raise DiffError(f"progress must be >= 0, got {done}")
        self._append({"type": "progress", "stratum": stratum, "done": done})

    def append_discrepancy(
        self,
        key: str,
        *,
        kind: str,
        models: tuple[str, ...],
        detail: str,
        history: SystemHistory,
        shrunk: SystemHistory | None = None,
        verdicts: dict | None = None,
        trace: str | None = None,
        shrink_steps: int = 0,
    ) -> None:
        """Record one finding (histories stored as one-line litmus text)."""
        if not key:
            raise DiffError("discrepancy records need a non-empty key")
        record: dict = {
            "type": "discrepancy",
            "key": key,
            "kind": kind,
            "models": list(models),
            "detail": detail,
            "history": format_history(history, oneline=True),
        }
        if shrunk is not None:
            record["shrunk"] = format_history(shrunk, oneline=True)
            record["shrink_steps"] = shrink_steps
        if verdicts is not None:
            record["verdicts"] = verdicts
        if trace is not None:
            record["trace"] = trace
        self._append(record)

    def append_litmus(
        self,
        key: str,
        history: SystemHistory,
        expected: dict[str, bool],
        *,
        origin: str = "",
    ) -> None:
        """Promote a resolved finding to a regression fixture."""
        if not key:
            raise DiffError("litmus records need a non-empty key")
        record = {
            "type": "litmus",
            "key": key,
            "history": format_history(history, oneline=True),
            "expected": expected,
        }
        if origin:
            record["origin"] = origin
        self._append(record)

    # -- reading -----------------------------------------------------------------

    def discrepancies(self) -> list[dict]:
        """Every intact ``discrepancy`` record, in file order."""
        return [r for r in self.records() if r.get("type") == "discrepancy"]

    def litmus_entries(self) -> list[tuple[str, SystemHistory, dict[str, bool]]]:
        """The regression fixtures: ``(key, history, expected verdicts)``."""
        out: list[tuple[str, SystemHistory, dict[str, bool]]] = []
        for r in self.records():
            if r.get("type") != "litmus":
                continue
            try:
                history = parse_history(r["history"])
                expected = dict(r["expected"])
            except KeyError as exc:
                raise DiffError(
                    f"{self.path}: malformed litmus record {r!r}: missing {exc}"
                ) from exc
            out.append((r["key"], history, expected))
        return out

    def completed(self) -> dict[str, int]:
        """Per-stratum resume markers (last ``progress`` record wins)."""
        done: dict[str, int] = {}
        for r in self.records():
            if r.get("type") == "progress":
                done[r["stratum"]] = int(r["done"])
        return done
