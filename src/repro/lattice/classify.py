"""Classify enumerated histories under every model: the Figure 5 engine.

Runs the registered checkers over a history collection and derives the
containment structure empirically.  Containment (``A ⊆ B``: every history
allowed by A is allowed by B) is checked exhaustively over the collection;
strictness additionally requires a separating witness (a history in
``B \\ A``).  The paper's Figure 5 claims both directions for its five
memories; :data:`FIGURE5_EDGES` records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.checking.models import check
from repro.core.history import SystemHistory
from repro.orders.memo import relation_memo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses lattice)
    from repro.engine.pool import CheckEngine

__all__ = [
    "FIGURE5_EDGES",
    "FIGURE5_INCOMPARABLE",
    "ClassificationResult",
    "classify_histories",
    "containment_violations",
    "extended_edges",
    "separating_witnesses",
]

#: (stronger, weaker) pairs asserted by the paper's Figure 5: the stronger
#: memory's history set is strictly contained in the weaker one's.  This
#: is the paper's verdict-locked sub-lattice and never grows; the full
#: registry-derived lattice is :func:`extended_edges`.
FIGURE5_EDGES: tuple[tuple[str, str], ...] = (
    ("SC", "TSO"),
    ("TSO", "PC"),
    ("TSO", "Causal"),
    ("PC", "PRAM"),
    ("Causal", "PRAM"),
)

#: Model pairs Figure 5 shows as incomparable (neither contains the other).
FIGURE5_INCOMPARABLE: tuple[tuple[str, str], ...] = (("PC", "Causal"),)

#: Structural containments among the non-Figure-5 classical models.  Each
#: claim follows from parameter comparison alone: same operation set, the
#: stronger side's mutual-consistency object refines the weaker side's,
#: and its ordering relation contains the weaker side's — so every view
#: assignment the stronger model accepts is accepted by the weaker one.
_CLASSICAL_CLAIMS: tuple[tuple[str, str], ...] = (
    ("SC", "Coherence"),
    ("SC", "CoherentCausal"),
    ("SC", "Hybrid"),
    ("CoherentCausal", "Causal"),
    ("CoherentCausal", "PC-G"),
    ("PC-G", "PRAM"),
    ("PC-G", "Coherence"),
    ("PRAM", "Slow"),
    ("Coherence", "Slow"),
    ("RC_sc", "RC_pc"),
)


def _session_components(spec) -> tuple[str, ...] | None:
    """The session-guarantee components of a spec's ordering, or ``None``."""
    name = spec.ordering.name
    if not name.startswith("session(") or not name.endswith(")"):
        return None
    return tuple(name[len("session(") : -1].split("+"))


def extended_edges(
    models: Sequence[str] | None = None,
) -> tuple[tuple[str, str], ...]:
    """The registry-derived lattice: every claimed (stronger, weaker) pair.

    Starts from :data:`FIGURE5_EDGES` and the classical structural claims,
    then derives the session-guarantee and Partition Consistency family
    edges from the specs actually registered — registering a new
    ``partition-k`` or session meet grows the lattice without touching
    this module:

    * every Partition spec sits strictly between SC and Coherence (the
      one-block instance *is* SC and the per-location instance *is*
      Coherence, so each registered arity refines the one and coarsens
      the other);
    * Causal contains every session meet (causal order contains all four
      session edge kinds), PRAM contains the wfr-free meets (program
      order lacks the cross-processor wfr edges), and a meet contains
      every meet over a subset of its components.

    Distinct partition arities contribute no edge between each other: the
    round-robin block maps of different arity stop being refinements of
    one another on four locations, so the instances are incomparable.

    ``models`` restricts the result to edges with both endpoints in the
    given panel (default: every registered model).  Only claims whose two
    models are registered are ever emitted, so an unregistered name in a
    claim table is inert rather than a crash.
    """
    from repro.checking.models import model_names
    from repro.spec.parameters import MutualConsistency
    from repro.spec.registry import ALL_SPECS

    panel = set(model_names() if models is None else models)
    edges: list[tuple[str, str]] = [
        e for e in FIGURE5_EDGES + _CLASSICAL_CLAIMS if set(e) <= panel
    ]
    sessions = {
        spec.name: set(comps)
        for spec in ALL_SPECS
        if (comps := _session_components(spec)) is not None
    }
    for spec in ALL_SPECS:
        if spec.mutual_consistency is MutualConsistency.PARTITION:
            for edge in (("SC", spec.name), (spec.name, "Coherence")):
                if set(edge) <= panel:
                    edges.append(edge)
    for name, comps in sessions.items():
        claims = [("Causal", name)]
        if "wfr" not in comps:
            claims.append(("PRAM", name))
        for other, other_comps in sessions.items():
            if comps < other_comps:
                claims.append((other, name))
        edges.extend(e for e in claims if set(e) <= panel)
    return tuple(dict.fromkeys(edges))


@dataclass
class ClassificationResult:
    """Verdicts of several models over a history collection.

    Attributes
    ----------
    models:
        The model names consulted, in order.
    histories:
        The classified histories.
    allowed:
        ``allowed[name]`` is the set of history indices the model allows.
    """

    models: tuple[str, ...]
    histories: list[SystemHistory]
    allowed: dict[str, set[int]] = field(default_factory=dict)

    def counts(self) -> dict[str, int]:
        """Histories allowed per model (the Venn-diagram region sizes)."""
        return {name: len(self.allowed[name]) for name in self.models}

    def contains(self, stronger: str, weaker: str) -> bool:
        """True when every history allowed by ``stronger`` is allowed by ``weaker``."""
        return self.allowed[stronger] <= self.allowed[weaker]

    def strictly_contains(self, stronger: str, weaker: str) -> bool:
        """Containment plus a separating witness inside this collection."""
        return self.contains(stronger, weaker) and bool(
            self.allowed[weaker] - self.allowed[stronger]
        )

    def incomparable(self, a: str, b: str) -> bool:
        """Witnessed incomparability: histories exist in both differences."""
        return bool(self.allowed[a] - self.allowed[b]) and bool(
            self.allowed[b] - self.allowed[a]
        )

    def containment_matrix(self) -> dict[tuple[str, str], bool]:
        """All pairwise ``⊆`` verdicts over the collection."""
        return {
            (a, b): self.contains(a, b)
            for a in self.models
            for b in self.models
            if a != b
        }


def classify_histories(
    histories: Iterable[SystemHistory],
    models: Sequence[str],
    engine: "CheckEngine | None" = None,
    prepass: bool = True,
) -> ClassificationResult:
    """Run every named model's checker over every history.

    With an ``engine``, the verdicts come from
    :meth:`repro.engine.CheckEngine.map_classify` instead of direct
    :func:`check` calls — relation-cached, and parallel when the engine has
    ``jobs > 1``.  The results are identical either way.

    ``prepass`` (serial path; the engine path is governed by the engine's
    own flag) runs the sound polynomial pre-pass before each search —
    same verdicts either way, with decided checks (DENY or witnessed
    ADMIT) skipping the search entirely.
    """
    hs = list(histories)
    result = ClassificationResult(tuple(models), hs)
    if engine is not None:
        rows = engine.map_classify(hs, models)
        for name in models:
            result.allowed[name] = {
                i for i, row in enumerate(rows) if row[name]
            }
        return result
    from repro.checking.models import MODELS
    from repro.staticcheck.prepass import prepass_check

    # Serial path: history-major under a relation memo, so the order
    # relations and compiled constraint kernels are derived once per
    # history and shared by every model (the engine path gets the same
    # sharing from its per-worker relation cache).
    for name in models:
        result.allowed[name] = set()
    with relation_memo():
        for i, h in enumerate(hs):
            for name in models:
                spec = MODELS[name].spec if prepass else None
                if spec is not None:
                    verdict = prepass_check(spec, h)
                    if verdict.decided:
                        # Sound in both directions: the polarity is final.
                        if verdict.allowed:
                            result.allowed[name].add(i)
                        continue
                if check(h, name).allowed:
                    result.allowed[name].add(i)
    return result


def containment_violations(
    result: ClassificationResult,
    edges: Sequence[tuple[str, str]] = FIGURE5_EDGES,
) -> dict[tuple[str, str], list[SystemHistory]]:
    """Histories violating the claimed containments (empty = all hold).

    For each claimed edge ``(stronger, weaker)``, lists the histories the
    stronger model allows but the weaker rejects — each one would be a
    counterexample to the paper's Figure 5.
    """
    out: dict[tuple[str, str], list[SystemHistory]] = {}
    for stronger, weaker in edges:
        bad = result.allowed[stronger] - result.allowed[weaker]
        if bad:
            out[(stronger, weaker)] = [result.histories[i] for i in sorted(bad)]
    return out


def separating_witnesses(
    result: ClassificationResult,
    edges: Sequence[tuple[str, str]] = FIGURE5_EDGES,
) -> dict[tuple[str, str], SystemHistory | None]:
    """One history per edge showing strictness (in weaker, not stronger).

    ``None`` for an edge means this collection contains no witness — the
    benchmark then falls back to the catalog's hand-built separators.
    """
    out: dict[tuple[str, str], SystemHistory | None] = {}
    for stronger, weaker in edges:
        extra = result.allowed[weaker] - result.allowed[stronger]
        out[(stronger, weaker)] = (
            result.histories[min(extra)] if extra else None
        )
    return out
