"""Hasse diagram of memory strength: Figure 5 as a graph.

Builds the strictly-stronger-than relation between models — either the
paper's asserted edges or an empirically derived one from a
:class:`~repro.lattice.classify.ClassificationResult` — as a
:class:`networkx.DiGraph`, transitively reduced so that rendering it gives
the paper's figure.
"""

from __future__ import annotations


import networkx as nx

from repro.lattice.classify import FIGURE5_EDGES, ClassificationResult

__all__ = ["paper_hasse", "empirical_hasse", "hasse_levels"]


def paper_hasse() -> nx.DiGraph:
    """Figure 5 as asserted by the paper (edges point stronger → weaker)."""
    g = nx.DiGraph()
    g.add_edges_from(FIGURE5_EDGES)
    return nx.transitive_reduction(g)


def empirical_hasse(result: ClassificationResult) -> nx.DiGraph:
    """The strict-containment relation measured over a history collection.

    An edge ``A → B`` means: over the classified collection, every history
    A allows is allowed by B, and B allows at least one more.  The graph is
    transitively reduced.  With a rich enough collection this reproduces
    :func:`paper_hasse` on the paper's five models.
    """
    g = nx.DiGraph()
    g.add_nodes_from(result.models)
    for a in result.models:
        for b in result.models:
            if a != b and result.strictly_contains(a, b):
                g.add_edge(a, b)
    return nx.transitive_reduction(g)


def hasse_levels(g: nx.DiGraph) -> list[list[str]]:
    """Topological layers of the diagram, strongest models first."""
    return [sorted(layer) for layer in nx.topological_generations(g)]
