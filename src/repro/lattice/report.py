"""Markdown report generation for lattice surveys.

Turns a :class:`~repro.lattice.classify.ClassificationResult` into a
self-contained markdown document: per-model counts, the containment
matrix, strictness witnesses, and the measured Hasse diagram — the
artifact a survey run leaves behind (and what `python -m repro lattice
--report` writes).
"""

from __future__ import annotations

from repro.lattice.classify import (
    ClassificationResult,
    containment_violations,
    extended_edges,
    separating_witnesses,
)
from repro.lattice.hasse import empirical_hasse, hasse_levels
from repro.litmus.dsl import format_history

__all__ = ["lattice_report"]


def lattice_report(
    result: ClassificationResult,
    *,
    title: str = "Memory-model lattice survey",
    edges=None,
) -> str:
    """A markdown report of the classification (see module docstring).

    ``edges`` defaults to the registry-derived lattice restricted to the
    models actually classified, so a survey over any panel — not just the
    paper's five — reports every claim it can check.
    """
    if edges is None:
        edges = extended_edges(result.models)
    total = len(result.histories)
    lines = [f"# {title}", ""]
    lines.append(f"Classified **{total}** histories under {len(result.models)} models.")
    lines.append("")

    lines.append("## Allowed-history counts")
    lines.append("")
    lines.append("| model | allowed | fraction |")
    lines.append("|---|---:|---:|")
    for name, count in result.counts().items():
        pct = 100.0 * count / total if total else 0.0
        lines.append(f"| {name} | {count} | {pct:.1f}% |")
    lines.append("")

    lines.append("## Claimed containments")
    lines.append("")
    violations = containment_violations(result, edges)
    wits = separating_witnesses(result, edges)
    lines.append("| claim | holds | strict (witness in survey) |")
    lines.append("|---|---|---|")
    for edge in edges:
        stronger, weaker = edge
        holds = edge not in violations
        witness = wits.get(edge)
        strict = (
            f"yes — `{format_history(witness, oneline=True)}`"
            if witness is not None
            else "no witness found"
        )
        lines.append(f"| {stronger} ⊆ {weaker} | {'yes' if holds else '**NO**'} | {strict} |")
    lines.append("")

    lines.append("## Pairwise containment matrix (row ⊆ column)")
    lines.append("")
    lines.append("| ⊆ | " + " | ".join(result.models) + " |")
    lines.append("|---|" + "---|" * len(result.models))
    for a in result.models:
        cells = []
        for b in result.models:
            if a == b:
                cells.append("·")
            else:
                cells.append("✓" if result.contains(a, b) else "✗")
        lines.append(f"| **{a}** | " + " | ".join(cells) + " |")
    lines.append("")

    lines.append("## Measured Hasse diagram (strongest first)")
    lines.append("")
    g = empirical_hasse(result)
    for depth, layer in enumerate(hasse_levels(g)):
        lines.append(f"{depth + 1}. {', '.join(layer)}")
    lines.append("")
    lines.append("Edges (stronger → weaker): " + ", ".join(
        f"{a}→{b}" for a, b in sorted(g.edges())
    ))
    lines.append("")
    return "\n".join(lines)
