"""Sampled classification of larger history spaces.

Exhaustive enumeration scales as (2·locations)^slots × read choices, so
beyond the 2×2 grid we verify the Figure 5 structure *statistically*:
uniform samples from a larger :class:`~repro.lattice.enumeration.HistorySpace`
are classified under every model and the containment claims are checked
on the sample.  A single counterexample anywhere disproves a containment
outright; agreement over large samples plus the exhaustive small space is
the evidence the lattice benchmarks report.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.history import HistoryBuilder, SystemHistory
from repro.lattice.classify import ClassificationResult, classify_histories
from repro.lattice.enumeration import HistorySpace

__all__ = ["sample_history", "sample_space", "classify_sample"]


def sample_history(space: HistorySpace, rng: np.random.Generator) -> SystemHistory:
    """One uniform structural sample from the space.

    Matches the enumeration's conventions: write values are distinct by
    slot; reads draw uniformly from {0} ∪ values-written-to-their-location
    in the sampled shape.
    """
    n_slots = space.slots
    kinds = rng.integers(0, 2, size=n_slots)  # 0 = write, 1 = read
    locs = rng.integers(0, len(space.locations), size=n_slots)
    written: dict[str, list[int]] = {loc: [] for loc in space.locations}
    for k in range(n_slots):
        if kinds[k] == 0:
            written[space.locations[locs[k]]].append(k + 1)
    builder = HistoryBuilder()
    for pi, proc in enumerate(space.proc_names()):
        builder.proc(proc)
        for oi in range(space.ops_per_proc):
            k = pi * space.ops_per_proc + oi
            loc = space.locations[locs[k]]
            if kinds[k] == 0:
                builder.write(loc, k + 1)
            else:
                options = [0] + written[loc]
                builder.read(loc, options[int(rng.integers(len(options)))])
    return builder.build()


def sample_space(
    space: HistorySpace, n: int, rng: np.random.Generator
) -> list[SystemHistory]:
    """``n`` independent samples (duplicates possible, harmless)."""
    return [sample_history(space, rng) for _ in range(n)]


def classify_sample(
    space: HistorySpace,
    n: int,
    models: Sequence[str],
    *,
    seed: int = 0,
) -> ClassificationResult:
    """Classify a seeded sample of the space under the named models."""
    rng = np.random.default_rng(seed)
    return classify_histories(sample_space(space, n, rng), models)
