"""Exhaustive enumeration of small system execution histories.

The paper relates memories by *set containment* over the histories they
allow (Section 4, Figure 5).  To check those claims mechanically we
enumerate every small history — every assignment of operation kinds,
locations, and read values to a fixed grid of processors × slots — and run
every checker on each.

To keep the space meaningful and the checkers fast, writes are assigned
globally distinct values (1, 2, … by slot position), the conventional
litmus discipline under which reads-from is unambiguous.  Reads range over
the initial value 0 plus the values written to their location anywhere in
the history (other values are rejected by every model outright and carry
no information).

Symmetry reduction: histories equal up to renaming of processors and
locations (values are canonical already) classify identically under every
model, so :func:`canonical_key` lets callers deduplicate, typically
shrinking the space by close to ``procs! × locations!``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.core.history import HistoryBuilder, SystemHistory

__all__ = ["HistorySpace", "enumerate_histories", "canonical_key", "space_size"]


@dataclass(frozen=True)
class HistorySpace:
    """A grid of histories: ``procs`` processors issuing ``ops_per_proc`` ops.

    Attributes
    ----------
    procs:
        Number of processors (named ``p0``, ``p1``, …).
    ops_per_proc:
        Operations issued by each processor.
    locations:
        Location names available to every operation.
    """

    procs: int = 2
    ops_per_proc: int = 2
    locations: tuple[str, ...] = ("x", "y")

    def __post_init__(self) -> None:
        if self.procs < 1 or self.ops_per_proc < 1 or not self.locations:
            raise ValueError(f"degenerate history space {self}")

    @property
    def slots(self) -> int:
        """Total operation slots in the grid."""
        return self.procs * self.ops_per_proc

    def proc_names(self) -> tuple[str, ...]:
        return tuple(f"p{i}" for i in range(self.procs))


def enumerate_histories(space: HistorySpace) -> Iterator[SystemHistory]:
    """Yield every history of the space (writes distinct-valued by slot).

    Slot ``k`` (row-major: processor index × ops_per_proc + op index)
    writes value ``k + 1`` when it is a write.  Reads enumerate 0 plus all
    values written to their location by any slot of the current shape.
    """
    n_slots = space.slots
    shape_choices = [
        (kind, loc) for kind in ("w", "r") for loc in space.locations
    ]
    proc_names = space.proc_names()
    for shape in itertools.product(shape_choices, repeat=n_slots):
        # Values available per location for this shape.
        written: dict[str, list[int]] = {loc: [] for loc in space.locations}
        for k, (kind, loc) in enumerate(shape):
            if kind == "w":
                written[loc].append(k + 1)
        read_slots = [k for k, (kind, _) in enumerate(shape) if kind == "r"]
        read_options = [
            [0] + written[shape[k][1]] for k in read_slots
        ]
        for combo in itertools.product(*read_options):
            values = {k: v for k, v in zip(read_slots, combo)}
            builder = HistoryBuilder()
            for pi, proc in enumerate(proc_names):
                builder.proc(proc)
                for oi in range(space.ops_per_proc):
                    k = pi * space.ops_per_proc + oi
                    kind, loc = shape[k]
                    if kind == "w":
                        builder.write(loc, k + 1)
                    else:
                        builder.read(loc, values[k])
            yield builder.build()


def space_size(space: HistorySpace) -> int:
    """The exact number of histories :func:`enumerate_histories` yields.

    Computed combinatorially (not by enumeration): for each shape, the
    product over read slots of ``1 + writes to that slot's location``.
    """
    total = 0
    shape_choices = [
        (kind, loc) for kind in ("w", "r") for loc in space.locations
    ]
    for shape in itertools.product(shape_choices, repeat=space.slots):
        written: dict[str, int] = {loc: 0 for loc in space.locations}
        for kind, loc in shape:
            if kind == "w":
                written[loc] += 1
        combos = 1
        for kind, loc in shape:
            if kind == "r":
                combos *= 1 + written[loc]
        total += combos
    return total


def canonical_key(history: SystemHistory) -> tuple:
    """A key equal for histories that differ only by proc/location renaming.

    Minimizes, over all processor permutations, the tuple of per-processor
    operation descriptions with locations renamed in order of first
    appearance.  Write values are renamed by first appearance as well (the
    slot-based values of :func:`enumerate_histories` depend on processor
    position); read values follow the write-value renaming, with 0 fixed.
    """
    procs = list(history.procs)
    best: tuple | None = None
    for perm in itertools.permutations(procs):
        loc_names: dict[str, int] = {}
        val_names: dict[int, int] = {0: 0}
        rows = []
        for proc in perm:
            row = []
            for op in history.ops_of(proc):
                loc_id = loc_names.setdefault(op.location, len(loc_names))
                val = op.value
                val_id = val_names.setdefault(val, len(val_names))
                rv = op.read_value
                rv_id = None if rv is None else val_names.setdefault(rv, len(val_names))
                row.append((op.kind.value, loc_id, val_id, rv_id, op.labeled))
            rows.append(tuple(row))
        key = tuple(rows)
        if best is None or key < best:
            best = key
    assert best is not None
    return best
