"""Relating memories by set containment (paper Section 4, Figure 5)."""

from repro.lattice.classify import (
    FIGURE5_EDGES,
    FIGURE5_INCOMPARABLE,
    ClassificationResult,
    classify_histories,
    extended_edges,
    containment_violations,
    separating_witnesses,
)
from repro.lattice.enumeration import (
    HistorySpace,
    canonical_key,
    enumerate_histories,
    space_size,
)
from repro.lattice.hasse import empirical_hasse, hasse_levels, paper_hasse
from repro.lattice.persistence import load_classification, save_classification
from repro.lattice.report import lattice_report
from repro.lattice.sampling import classify_sample, sample_history, sample_space

__all__ = [
    "canonical_key",
    "ClassificationResult",
    "classify_histories",
    "extended_edges",
    "containment_violations",
    "empirical_hasse",
    "enumerate_histories",
    "FIGURE5_EDGES",
    "FIGURE5_INCOMPARABLE",
    "hasse_levels",
    "classify_sample",
    "lattice_report",
    "load_classification",
    "sample_history",
    "sample_space",
    "save_classification",
    "HistorySpace",
    "paper_hasse",
    "separating_witnesses",
    "space_size",
]
