"""Save and load classification results.

Classifying larger spaces takes minutes; the survey scripts persist their
results so reports and Hasse diagrams can be re-rendered (or extended
with new models) without re-running the checkers.  The format embeds the
histories themselves via :mod:`repro.core.serialization`, so a loaded
result is fully self-contained and re-verifiable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import ParseError
from repro.core.serialization import FORMAT_VERSION, history_from_dict, history_to_dict
from repro.lattice.classify import ClassificationResult

__all__ = ["save_classification", "load_classification"]


def save_classification(result: ClassificationResult, path: str | Path) -> None:
    """Write a classification result as JSON."""
    payload = {
        "version": FORMAT_VERSION,
        "models": list(result.models),
        "histories": [history_to_dict(h) for h in result.histories],
        "allowed": {name: sorted(idx) for name, idx in result.allowed.items()},
    }
    Path(path).write_text(json.dumps(payload, sort_keys=True))


def load_classification(path: str | Path) -> ClassificationResult:
    """Read a classification result written by :func:`save_classification`.

    Raises
    ------
    ParseError
        On version mismatch or structural problems.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid classification file: {exc}") from exc
    if payload.get("version") != FORMAT_VERSION:
        raise ParseError(
            f"unsupported classification version {payload.get('version')!r}"
        )
    try:
        histories = [history_from_dict(d) for d in payload["histories"]]
        result = ClassificationResult(
            tuple(payload["models"]), histories
        )
        result.allowed = {
            name: set(idx) for name, idx in payload["allowed"].items()
        }
    except KeyError as exc:
        raise ParseError(f"classification file lacks {exc}") from exc
    for name in result.models:
        if name not in result.allowed:
            raise ParseError(f"classification file lacks verdicts for {name!r}")
    return result
