"""repro.serve — consistency checking as a service.

The ROADMAP's "consistency checking as a service" item, productionized:
an asyncio HTTP front end over the engine substrate.  Clients submit
histories or litmus text and get back exactly what the in-process API
would have given them — verdict + witness JSON per model, byte-equal to
:func:`repro.checking.check_with_spec` — with every verdict landed in a
result store (JSONL or the content-addressed SQLite backend) keyed by a
content hash, so repeated submissions are served from the store instead
of re-searched.

- :mod:`repro.serve.service` — :class:`CheckService`: content-addressed
  job keys, a thread worker pool with per-thread relation caches, the
  async job table (sweeps), the incremental session table (LRU-bounded
  :class:`~repro.engine.session.EngineSession` instances behind
  ``POST /session`` + ``/session/<id>/append``), store integration, and
  the stats aggregate.
- :mod:`repro.serve.http` — a minimal stdlib HTTP/1.1 layer on asyncio
  streams: bounded request sizes, per-request timeouts, keep-alive,
  structured JSON request logging.
- :mod:`repro.serve.app` — the endpoint table wiring the two together,
  plus :func:`run_server` (the ``python -m repro serve`` body) and
  :class:`ServerThread` (the in-process harness tests and benchmarks
  drive).

See ``docs/serve.md`` for the endpoint reference and deployment notes.
"""

from repro.serve.app import ServeApp, ServerThread, run_server
from repro.serve.http import HttpRequest, HttpServer
from repro.serve.service import CheckService, ServeConfig, job_key

__all__ = [
    "CheckService",
    "HttpRequest",
    "HttpServer",
    "ServeApp",
    "ServeConfig",
    "ServerThread",
    "job_key",
    "run_server",
]
