"""The service core: content-addressed check jobs over a thread pool.

:class:`CheckService` is everything the HTTP layer is not: it resolves
submitted histories (litmus text, catalog names, or wire dicts), keys
each job by a content hash of ``(canonical history, model set)``, runs
checks on a thread pool whose threads each hold a warm
:class:`~repro.engine.cache.RelationCache`, lands every verdict in a
result store (either backend of :func:`repro.engine.sqlstore.open_store`),
and answers repeat submissions from the store or the in-memory result
cache instead of re-searching.

Sweeps are *async jobs*: submission returns a job id immediately (itself
content-addressed, so resubmitting a finished sweep returns its report),
and the job table is what ``GET /job/<id>`` polls.  Graceful shutdown
drains the pool — in-flight jobs finish and their results are persisted
— before the store is summarized and closed.

*Sessions* are the incremental mode: ``POST /session`` opens an
:class:`~repro.engine.session.EngineSession` (a growing history with a
live per-model verdict), ``POST /session/<id>/append`` streams
operations in one at a time and returns per-op admit/deny rows, and
``GET /session/<id>`` snapshots the current prefix — witness views for
admitting models, denial reasons for denying ones.  The table is an LRU
bounded by :attr:`ServeConfig.max_sessions`; the per-session counters in
``GET /stats`` are totalled from the kernel's own
:class:`~repro.obs.events.SessionAppend`/:class:`~repro.obs.events.PrefixReuse`
trace events by a :class:`~repro.obs.sink.SessionStatsSink`.

Verdict fidelity is the contract: a fresh check of a spec-backed model
runs :func:`repro.checking.check_with_spec` and serializes the result
with :func:`repro.core.serialization.check_result_to_dict`, so the HTTP
response carries the *same* verdict + witness JSON the in-process API
returns (the integration suite asserts this for every catalog × model
pair).
"""

from __future__ import annotations

import hashlib
import json
import secrets
import threading
import time
from collections import OrderedDict
from contextlib import AbstractContextManager
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.checking.models import MODELS, PAPER_MODELS, model_names
from repro.core.errors import EngineError, ReproError
from repro.core.history import SystemHistory
from repro.core.serialization import (
    check_result_to_dict,
    history_from_dict,
    history_to_dict,
)
from repro.engine import CheckEngine, SweepSpec, open_store
from repro.engine.cache import RelationCache
from repro.engine.session import EngineSession
from repro.kernel.backend import active_backend, set_backend
from repro.kernel.constraints import plane_cache_stats
from repro.kernel.search import check_with_spec
from repro.obs.sink import SessionStatsSink, tracing
from repro.orders.memo import relation_memo

__all__ = [
    "CheckService",
    "ServeConfig",
    "ServeError",
    "SessionState",
    "job_key",
    "sweep_key",
]


class ServeError(ReproError):
    """A client-attributable service error (maps to HTTP 400)."""


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``python -m repro serve`` lets an operator set."""

    host: str = "127.0.0.1"
    port: int = 8979
    #: Worker threads checking histories (each with its own relation cache).
    workers: int = 2
    #: Store URL (see :func:`repro.engine.sqlstore.open_store`); ``None``
    #: serves from memory only.
    store_url: str | None = None
    #: Run the static DENY pre-pass before searching (sound; same verdicts).
    prepass: bool = True
    #: Worker processes for sweep jobs (1 = in the worker thread).
    sweep_jobs: int = 1
    #: Reject request bodies larger than this (HTTP 413).
    max_request_bytes: int = 1 << 20
    #: Per-request wall clock budget in seconds (HTTP 503 on expiry).
    request_timeout: float = 30.0
    #: Emit one structured JSON log line per request.
    log_requests: bool = True
    #: Bound on in-memory cached check responses (the store is durable).
    result_cache: int = 4096
    #: Bound on live incremental sessions; creating one past the bound
    #: evicts the least-recently-used session.
    max_sessions: int = 64
    #: Kernel mask backend for the whole service process (``--backend``);
    #: ``None`` inherits the process default (``REPRO_BACKEND``).
    backend: str | None = None


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def job_key(history: SystemHistory, models: tuple[str, ...]) -> str:
    """The content address of one check job.

    A hash of the canonical wire encoding of the history plus the sorted
    model set — the same history submitted as litmus text, a catalog
    name, or a wire dict lands on the same key, which is what makes the
    store a cache and not just a log.
    """
    payload = _canonical(
        {"history": history_to_dict(history), "models": sorted(models)}
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"chk:{digest[:32]}"


def sweep_key(spec: SweepSpec) -> str:
    """The content address of a sweep job (its declarative description)."""
    digest = hashlib.sha256(_canonical(spec.describe()).encode("utf-8")).hexdigest()
    return f"swp:{digest[:32]}"


def resolve_history(value: Any) -> SystemHistory:
    """A history from any submission form the API accepts.

    A dict is the versioned wire format; a string is litmus notation or
    a catalog entry name (unambiguous prefixes resolve, mirroring the
    CLI).  Anything else — or a parse failure — raises
    :class:`ServeError`, which the HTTP layer maps to a 400.
    """
    if isinstance(value, dict):
        try:
            return history_from_dict(value)
        except ReproError as exc:
            raise ServeError(f"bad history dict: {exc}") from exc
    if isinstance(value, str):
        from repro.litmus import CATALOG, parse_history

        entry = CATALOG.get(value)
        if entry is None:
            matches = [name for name in CATALOG if name.startswith(value)]
            if len(matches) == 1:
                entry = CATALOG[matches[0]]
        if entry is not None:
            return entry.history
        try:
            return parse_history(value)
        except ReproError as exc:
            raise ServeError(f"bad litmus text: {exc}") from exc
    raise ServeError(
        f"history must be litmus text, a catalog name, or a wire dict; "
        f"got {type(value).__name__}"
    )


def resolve_models(value: Any) -> tuple[str, ...]:
    """A concrete model tuple from ``None``/alias/string/list input.

    ``None`` and ``"paper"`` mean the Figure 5 set, ``"all"`` every
    registered model, ``"spec"`` every spec-backed model; otherwise a
    list (or comma string) of registered names.
    """
    if value is None or value == "paper":
        return PAPER_MODELS
    if value == "all":
        return model_names()
    if value == "spec":
        return tuple(n for n in model_names() if MODELS[n].spec is not None)
    if isinstance(value, str):
        names: tuple[str, ...] = tuple(m for m in value.split(",") if m)
    elif isinstance(value, (list, tuple)) and all(
        isinstance(m, str) for m in value
    ):
        names = tuple(value)
    else:
        raise ServeError(f"bad model set: {value!r}")
    if not names:
        raise ServeError("empty model set")
    unknown = [m for m in names if m not in MODELS]
    if unknown:
        raise ServeError(
            f"unknown model(s) {', '.join(unknown)}; known: "
            f"{', '.join(model_names())}"
        )
    return names


@dataclass
class Job:
    """One async unit in the job table (sweeps; checks resolve inline)."""

    id: str
    kind: str
    status: str = "queued"  # queued | running | done | error
    submitted: float = field(default_factory=time.time)
    detail: dict = field(default_factory=dict)
    result: dict | None = None
    error: str | None = None

    def describe(self) -> dict:
        d: dict = {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
            **self.detail,
        }
        if self.result is not None:
            d["report"] = self.result
        if self.error is not None:
            d["error"] = self.error
        return d


@dataclass
class SessionState:
    """One live incremental session in the service's session table.

    The :class:`~repro.engine.session.EngineSession` is single-threaded
    by contract, so every append (and every state snapshot) holds
    :attr:`lock`; the table itself is an LRU keyed by :attr:`id`.
    """

    id: str
    session: EngineSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    created: float = field(default_factory=time.time)
    last_used: float = field(default_factory=time.time)
    #: Per-op verdict log: one ``{"op", "verdicts", "denying"}`` row per
    #: appended operation, in append order.
    log: list[dict] = field(default_factory=list)


class CheckService:
    """Content-addressed consistency checking over a thread worker pool."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        if self.config.backend is not None:
            # Process-global by design: every check thread, session, and
            # sweep worker of this daemon runs the same kernel backend.
            set_backend(self.config.backend)
        self.store = (
            open_store(self.config.store_url)
            if self.config.store_url
            else None
        )
        self._store_lock = threading.Lock()
        # The warm sweep engine: created on the first sweep job and kept
        # across jobs, so repeated sweeps reuse the worker pool and the
        # shared-memory plane arena instead of paying cold start + a
        # pickled history per job.  drain() closes it.
        self._sweep_engine: CheckEngine | None = None
        self._sweep_engine_lock = threading.Lock()
        # Sweep jobs share that engine (one pool, one arena), so runs are
        # serialized; concurrent submissions queue rather than racing.
        self._sweep_run_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        self._thread_state = threading.local()
        self._results: OrderedDict[str, dict] = OrderedDict()
        self._results_lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._sessions: OrderedDict[str, SessionState] = OrderedDict()
        self._sessions_lock = threading.Lock()
        self._session_counters: dict[str, int] = {
            "created": 0,
            "evicted": 0,
            "closed": 0,
        }
        self._stats_lock = threading.Lock()
        self._verdicts: dict[str, dict[str, int]] = {}
        self._model_seconds: dict[str, float] = {}
        self._counters: dict[str, int] = {
            "checks": 0,
            "cache_hits": 0,
            "store_hits": 0,
            "sweeps": 0,
        }
        self.started = time.time()
        self.closing = False
        # Kernel-level event counts for /stats: one process-global
        # stats sink for the service's lifetime (the obs layer's
        # opt-in installation; zero-cost for models it never touches).
        # The session-aware subclass also totals the incremental
        # counters — appends, planes grown in place, prefix-memory
        # hits/misses — that the /stats "sessions" block reports.
        self._sink = SessionStatsSink()
        self._tracing: AbstractContextManager[Any] | None = tracing(self._sink)
        self._tracing.__enter__()
        if self.store is not None:
            with self._store_lock:
                self.store.append_run_header(
                    {
                        "spec": {"source": "serve"},
                        "jobs": self.config.workers,
                        "started": time.strftime(
                            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                        ),
                        "resumed_keys": len(self.store.completed_keys()),
                    }
                )

    # -- the worker body ---------------------------------------------------------

    def _cache(self) -> RelationCache:
        cache = getattr(self._thread_state, "cache", None)
        if cache is None:
            cache = RelationCache()
            self._thread_state.cache = cache
        return cache

    def _run_check(
        self, key: str, history: SystemHistory, models: tuple[str, ...]
    ) -> dict:
        """Check one history under each model (worker-thread body)."""
        from repro.litmus import format_history

        results: dict[str, dict] = {}
        verdicts: dict[str, bool] = {}
        explored: dict[str, int] = {}
        with relation_memo(self._cache()):
            for name in models:
                model = MODELS[name]
                t0 = time.perf_counter()
                if model.spec is not None:
                    result = check_with_spec(
                        model.spec, history, prepass=self.config.prepass
                    )
                else:
                    result = model.check(history)
                seconds = time.perf_counter() - t0
                results[name] = check_result_to_dict(result)
                verdicts[name] = result.allowed
                explored[name] = result.explored
                self._note_verdict(name, result.allowed, seconds)
        views = {
            name: d["views"]
            for name, d in results.items()
            if d["allowed"] and d["views"]
        }
        response = {
            "key": key,
            "history": format_history(history),
            "models": verdicts,
            "explored": explored,
            "views": views,
            "results": results,
            "cached": False,
        }
        if self.store is not None:
            with self._store_lock:
                self.store.append_result(
                    key, verdicts, explored, views=views or None
                )
        self._remember(key, response)
        return response

    def _note_verdict(self, model: str, allowed: bool, seconds: float) -> None:
        verdict = "admit" if allowed else "deny"
        with self._stats_lock:
            self._counters["checks"] += 1
            per_model = self._verdicts.setdefault(
                model, {"admit": 0, "deny": 0}
            )
            per_model[verdict] += 1
            self._model_seconds[model] = (
                self._model_seconds.get(model, 0.0) + seconds
            )

    def _remember(self, key: str, response: dict) -> None:
        with self._results_lock:
            self._results[key] = response
            self._results.move_to_end(key)
            while len(self._results) > self.config.result_cache:
                self._results.popitem(last=False)

    # -- lookups -----------------------------------------------------------------

    def cached_response(self, key: str) -> dict | None:
        """The response for ``key`` from memory or the store, if known."""
        with self._results_lock:
            hit = self._results.get(key)
        if hit is not None:
            with self._stats_lock:
                self._counters["cache_hits"] += 1
            return {**hit, "cached": True}
        if self.store is None:
            return None
        with self._store_lock:
            if key not in self.store.completed_keys():
                return None
            record = self.store.latest_result(key)
        if record is None:
            return None
        with self._stats_lock:
            self._counters["store_hits"] += 1
        response = {
            "key": key,
            "models": record.get("models", {}),
            "explored": record.get("explored", {}),
            "views": record.get("views", {}),
            "cached": True,
        }
        return response

    # -- submission --------------------------------------------------------------

    def _submit(self, fn, *args) -> Future:
        if self.closing:
            raise EngineError("service is draining; not accepting new work")
        return self._executor.submit(fn, *args)

    def submit_check(
        self, history_input: Any, models_input: Any = None
    ) -> tuple[str, dict | Future]:
        """Key plus either a finished response (cache hit) or a future."""
        history = resolve_history(history_input)
        models = resolve_models(models_input)
        key = job_key(history, models)
        cached = self.cached_response(key)
        if cached is not None:
            return key, cached
        return key, self._submit(self._run_check, key, history, models)

    def submit_sweep(self, params: dict) -> Job:
        """Queue a sweep job; returns its (content-addressed) job entry."""
        allowed = {
            "source",
            "models",
            "procs",
            "ops_per_proc",
            "count",
            "seed",
            "p_write",
        }
        unknown = set(params) - allowed
        if unknown:
            raise ServeError(
                f"unknown sweep parameter(s): {', '.join(sorted(unknown))}"
            )
        if "models" in params:
            params = {**params, "models": resolve_models(params["models"])}
        try:
            spec = SweepSpec(**params)
        except (TypeError, ReproError) as exc:
            raise ServeError(f"bad sweep spec: {exc}") from exc
        job = Job(id=sweep_key(spec), kind="sweep", detail={"spec": spec.describe()})
        with self._jobs_lock:
            existing = self._jobs.get(job.id)
            if existing is not None:
                return existing
            self._jobs[job.id] = job
        with self._stats_lock:
            self._counters["sweeps"] += 1
        self._submit(self._run_sweep, job, spec)
        return job

    def _sweep_engine_handle(self) -> CheckEngine:
        """The service's one persistent sweep engine (created on demand)."""
        with self._sweep_engine_lock:
            if self._sweep_engine is None:
                self._sweep_engine = CheckEngine(
                    jobs=self.config.sweep_jobs,
                    prepass=self.config.prepass,
                    persistent=True,
                    backend=self.config.backend,
                )
            return self._sweep_engine

    def _run_sweep(self, job: Job, spec: SweepSpec) -> None:
        job.status = "running"
        engine = self._sweep_engine_handle()
        try:
            # The sweep shares the service's store; per-record appends
            # are thread-safe on both backends (single O_APPEND writes /
            # SQLite's internal lock), so concurrent /check appends
            # interleave at record granularity.  The run lock only
            # serializes sweeps against each other (shared warm engine).
            with self._sweep_run_lock:
                if self.store is not None:
                    report = engine.run(spec, store=self.store, resume=True)
                else:
                    report = engine.run(spec)
            job.result = {
                "counts": report.counts,
                "metrics": report.metrics.to_dict(),
            }
            job.status = "done"
        except Exception as exc:  # noqa: BLE001 - job errors are data
            job.error = str(exc)
            job.status = "error"

    def job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    # -- incremental sessions ----------------------------------------------------

    def create_session(self, params: Any) -> Future:
        """Queue session creation; the future resolves to the opening state.

        Creation runs on the worker pool because a seed history's
        baseline check is a real search.  The response carries the fresh
        session id and the seed prefix's per-model verdicts.
        """
        if params is None:
            params = {}
        if not isinstance(params, dict):
            raise ServeError("POST /session takes a JSON object")
        unknown = set(params) - {"models", "history", "prepass"}
        if unknown:
            raise ServeError(
                f"unknown session parameter(s): {', '.join(sorted(unknown))}"
            )
        return self._submit(self._open_session, params)

    def _open_session(self, params: dict) -> dict:
        models = resolve_models(params.get("models"))
        non_spec = [m for m in models if MODELS[m].spec is None]
        if non_spec:
            raise ServeError(
                f"sessions need spec-backed models; not: {', '.join(non_spec)}"
            )
        history = None
        if params.get("history") is not None:
            history = resolve_history(params["history"])
        prepass = bool(params.get("prepass", self.config.prepass))
        try:
            session = EngineSession(models, history=history, prepass=prepass)
        except ReproError as exc:
            raise ServeError(str(exc)) from exc
        state = SessionState(
            id=f"ses:{secrets.token_hex(8)}", session=session
        )
        with self._sessions_lock:
            self._sessions[state.id] = state
            self._session_counters["created"] += 1
            while len(self._sessions) > self.config.max_sessions:
                self._sessions.popitem(last=False)
                self._session_counters["evicted"] += 1
        return {
            "session": state.id,
            "models": list(models),
            "prepass": prepass,
            "operations": len(session.history.operations),
            "verdicts": session.verdicts(),
            "denying": list(session.denying()),
        }

    def _lookup_session(self, session_id: str) -> SessionState | None:
        with self._sessions_lock:
            state = self._sessions.get(session_id)
            if state is not None:
                self._sessions.move_to_end(session_id)
        return state

    def append_session(self, session_id: str, params: Any) -> Future | None:
        """Queue appends onto a session; ``None`` for an unknown id (404)."""
        state = self._lookup_session(session_id)
        if state is None:
            return None
        if not isinstance(params, dict):
            raise ServeError("POST /session/<id>/append takes a JSON object")
        if "op" in params:
            lines: list[Any] = [params["op"]]
        elif "ops" in params:
            lines = params["ops"] if isinstance(params["ops"], list) else None
        else:
            raise ServeError('append needs an "op" line or an "ops" list')
        if lines is None or not all(isinstance(x, str) for x in lines):
            raise ServeError('"op"/"ops" entries must be op-line strings')
        if not lines:
            raise ServeError("nothing to append")
        return self._submit(self._append_session, state, lines)

    def _append_session(self, state: SessionState, lines: list[str]) -> dict:
        """Apply op lines one at a time (worker-thread body).

        Each appended operation gets its own per-model verdict row in
        ``steps`` (and the session's durable log).  A bad line raises
        after the preceding ops have landed — the error response says so
        and ``GET /session/<id>`` shows the surviving prefix.
        """
        steps: list[dict] = []
        with state.lock:
            session = state.session
            try:
                for line in lines:
                    for op, results in session.append_line(line):
                        step = {
                            "op": str(op),
                            "verdicts": {
                                m: r.allowed for m, r in results.items()
                            },
                            "denying": [
                                m for m, r in results.items() if not r.allowed
                            ],
                        }
                        steps.append(step)
                        state.log.append(step)
            except ReproError as exc:
                raise ServeError(
                    f"{exc} ({len(steps)} op(s) of this request were "
                    "already appended)"
                ) from exc
            state.last_used = time.time()
            verdicts = session.verdicts()
            return {
                "session": state.id,
                "operations": len(session.history.operations),
                "steps": steps,
                "verdicts": verdicts,
                "denying": list(session.denying()),
                "admitted": all(verdicts.values()),
            }

    def session_state(self, session_id: str) -> dict | None:
        """The ``GET /session/<id>`` snapshot, or ``None`` (404).

        Carries the full per-model results of the current prefix — the
        witness views of admitting models and the denial reasons of
        denying ones — plus the per-op verdict log.
        """
        state = self._lookup_session(session_id)
        if state is None:
            return None
        from repro.litmus import format_history

        with state.lock:
            session = state.session
            results = {
                m: check_result_to_dict(r)
                for m, r in session.last_results.items()
            }
            return {
                "session": state.id,
                "models": list(session.models),
                "prepass": session.prepass,
                "operations": len(session.history.operations),
                "history": format_history(session.history),
                "verdicts": session.verdicts(),
                "denying": list(session.denying()),
                "views": {
                    m: d["views"]
                    for m, d in results.items()
                    if d["allowed"] and d["views"]
                },
                "reasons": {
                    m: d["reason"]
                    for m, d in results.items()
                    if not d["allowed"]
                },
                "results": results,
                "log": list(state.log),
            }

    def close_session(self, session_id: str) -> dict | None:
        """Drop a session from the table; ``None`` for an unknown id."""
        with self._sessions_lock:
            state = self._sessions.pop(session_id, None)
            if state is not None:
                self._session_counters["closed"] += 1
        if state is None:
            return None
        with state.lock:
            return {
                "session": session_id,
                "closed": True,
                "operations": len(state.session.history.operations),
            }

    # -- stats -------------------------------------------------------------------

    def stats(self) -> dict:
        """The ``GET /stats`` aggregate: service + store + kernel events."""
        with self._stats_lock:
            counters = dict(self._counters)
            verdicts = {m: dict(v) for m, v in sorted(self._verdicts.items())}
            model_seconds = {
                m: round(s, 6) for m, s in sorted(self._model_seconds.items())
            }
        with self._jobs_lock:
            jobs_by_status: dict[str, int] = {}
            for job in self._jobs.values():
                jobs_by_status[job.status] = (
                    jobs_by_status.get(job.status, 0) + 1
                )
        with self._sessions_lock:
            sessions = {
                "active": len(self._sessions),
                **self._session_counters,
            }
        # The incremental counters come from the obs events the kernel
        # sessions emit (SessionAppend / PrefixReuse), not from serve's
        # own bookkeeping — /stats is a consumer of the trace stream.
        sessions.update(self._sink.session_counters())
        stats = {
            "uptime_seconds": round(time.time() - self.started, 3),
            "workers": self.config.workers,
            "backend": active_backend().name,
            "plane_cache": plane_cache_stats(),
            "prepass": self.config.prepass,
            "prepass_rules": self._sink.prepass_counters(),
            "counters": counters,
            "verdicts": verdicts,
            "model_seconds": model_seconds,
            "jobs": jobs_by_status,
            "sessions": sessions,
            "events": dict(sorted(self._sink.counts.items())),
        }
        if self.store is not None:
            stats["store"] = {
                "url": self.config.store_url,
                **self.store.summarize(),
            }
        return stats

    # -- shutdown ----------------------------------------------------------------

    def drain(self) -> None:
        """Stop accepting work, finish in-flight jobs, close the store.

        The graceful half of shutdown: every queued/running check and
        sweep completes and lands in the store, then the store gets its
        end-of-run summary record and is closed.  Idempotent.
        """
        self.closing = True
        self._executor.shutdown(wait=True)
        with self._sweep_engine_lock:
            if self._sweep_engine is not None:
                self._sweep_engine.close()
                self._sweep_engine = None
        if self.store is not None:
            with self._store_lock:
                self.store.append_summary(self.store.summarize())
                self.store.close()
            self.store = None
        if self._tracing is not None:
            self._tracing.__exit__(None, None, None)
            self._tracing = None
