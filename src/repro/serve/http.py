"""A minimal asyncio HTTP/1.1 layer — stdlib only, service-shaped.

Not a web framework: exactly the transport the check service needs and
nothing more.  Requests are parsed off an :mod:`asyncio` stream with a
bounded header block and a ``Content-Length``-bounded body (oversize
bodies are refused with 413 *before* being read), handlers run under a
per-request timeout, responses are JSON, connections keep-alive until
either side closes, and every request becomes one structured JSON log
line.  Graceful shutdown stops the listener first, then waits for
open connections to finish their in-flight request.

The handler contract is a coroutine ``(HttpRequest) -> (status,
payload_dict)``; routing lives in :mod:`repro.serve.app`.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

__all__ = ["HttpError", "HttpRequest", "HttpServer", "STATUS_PHRASES"]

log = logging.getLogger("repro.serve")

#: The status lines this server emits.
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on the request line + headers block.
_MAX_HEADER_BYTES = 16 << 10


class HttpError(Exception):
    """An HTTP-level refusal raised during parsing (carries the status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, decoded body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object; :class:`HttpError` 400 otherwise."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


def _parse_query(raw: str) -> dict[str, str]:
    query: dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        name, _, value = part.partition("=")
        query[name] = value
    return query


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Malformed or oversized requests raise :class:`HttpError`; the
    connection loop answers with that status and closes.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial.strip():
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request headers too large")
    if len(header_block) > _MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")
    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    path, _, raw_query = target.partition("?")
    body = b""
    if method in ("POST", "PUT"):
        if "content-length" not in headers:
            raise HttpError(411, "POST requires Content-Length")
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length)
    return HttpRequest(
        method=method,
        path=path,
        query=_parse_query(raw_query),
        headers=headers,
        body=body,
    )


def response_bytes(status: int, payload: dict) -> bytes:
    """One complete HTTP/1.1 response with a JSON body."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


#: The routing contract: a coroutine from request to (status, payload).
Handler = Callable[[HttpRequest], Awaitable[tuple[int, dict]]]


class HttpServer:
    """The asyncio listener: connection loop, timeouts, logging, shutdown."""

    def __init__(
        self,
        handler: Handler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = 1 << 20,
        request_timeout: float = 30.0,
        log_requests: bool = True,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        self.log_requests = log_requests
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and listen; ``port=0`` picks a free port (read it back)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self, *, drain_seconds: float = 30.0) -> None:
        """Stop listening, then let open connections finish (bounded)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [t for t in self._connections if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=drain_seconds)
        for task in self._connections:
            if not task.done():  # pragma: no cover - pathological client
                task.cancel()

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_request_bytes
                    )
                except HttpError as exc:
                    writer.write(
                        response_bytes(exc.status, {"error": str(exc)})
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                t0 = time.perf_counter()
                status, payload = await self._dispatch(request)
                raw = response_bytes(status, payload)
                writer.write(raw)
                await writer.drain()
                if self.log_requests:
                    log.info(
                        "%s",
                        json.dumps(
                            {
                                "ts": time.strftime(
                                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                                ),
                                "method": request.method,
                                "path": request.path,
                                "status": status,
                                "ms": round(
                                    (time.perf_counter() - t0) * 1e3, 3
                                ),
                                "bytes_in": len(request.body),
                                "bytes_out": len(raw),
                            },
                            sort_keys=True,
                        ),
                    )
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> tuple[int, dict]:
        """Run the handler under the per-request timeout; map failures."""
        try:
            return await asyncio.wait_for(
                self.handler(request), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            return 503, {
                "error": (
                    f"request exceeded the {self.request_timeout}s budget"
                )
            }
        except HttpError as exc:
            return exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - boundary: never crash the loop
            log.exception("unhandled error serving %s", request.path)
            return 500, {"error": f"internal error: {exc}"}
