"""The endpoint table, the blocking server entry point, and the harness.

Endpoints (see ``docs/serve.md`` for the full request/response shapes):

=======  ==========================  ==========================================
method   path                        meaning
=======  ==========================  ==========================================
GET      ``/healthz``                liveness (also reports draining state)
GET      ``/models``                 the registered model names
GET      ``/stats``                  service counters, per-model verdicts,
                                     session/incremental totals, store totals
POST     ``/check``                  check a history; sync by default,
                                     ``"async": true`` queues and returns 202
                                     with the content key
POST     ``/sweep``                  queue a sweep job; 202 with the job id
GET      ``/job/<id>``               poll a sweep job
GET      ``/result/<key>``           a completed check by content key
GET      ``/witness/<key>``          just the witness views of a completed
                                     check
POST     ``/session``                open an incremental session; 201 with the
                                     session id and the seed prefix's verdicts
POST     ``/session/<id>/append``    stream op lines in; per-op admit/deny
                                     rows plus the new prefix's verdicts
GET      ``/session/<id>``           snapshot: history, verdicts, witness
                                     views, denial reasons, per-op log
DELETE   ``/session/<id>``           close the session
=======  ==========================  ==========================================

:func:`run_server` is the body of ``python -m repro serve`` (signal-aware,
drains in-flight jobs on SIGINT/SIGTERM); :class:`ServerThread` runs the
same stack on a background thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
import threading
from typing import Any

from repro.checking.models import model_names
from repro.core.errors import EngineError
from repro.serve.http import HttpRequest, HttpServer
from repro.serve.service import CheckService, ServeConfig, ServeError

__all__ = ["ServeApp", "ServerThread", "run_server"]

log = logging.getLogger("repro.serve")


class ServeApp:
    """Routes requests onto a :class:`CheckService`."""

    def __init__(self, service: CheckService) -> None:
        self.service = service

    async def handle(self, request: HttpRequest) -> tuple[int, dict]:
        """The :class:`~repro.serve.http.HttpServer` handler coroutine."""
        method, path = request.method, request.path.rstrip("/") or "/"
        try:
            if path == "/healthz" and method == "GET":
                return 200, {
                    "status": "draining" if self.service.closing else "ok"
                }
            if path == "/models" and method == "GET":
                return 200, {"models": list(model_names())}
            if path == "/stats" and method == "GET":
                return 200, self.service.stats()
            if path == "/check":
                if method != "POST":
                    return 405, {"error": "POST /check"}
                return await self._check(request.json())
            if path == "/sweep":
                if method != "POST":
                    return 405, {"error": "POST /sweep"}
                return self._sweep(request.json())
            if path == "/session":
                if method != "POST":
                    return 405, {"error": "POST /session"}
                return await self._session_create(request.json())
            if path.startswith("/session/"):
                return await self._session(request, path[len("/session/") :])
            if path.startswith("/job/") and method == "GET":
                return self._job(path[len("/job/") :])
            if path.startswith("/result/") and method == "GET":
                return self._result(path[len("/result/") :])
            if path.startswith("/witness/") and method == "GET":
                return self._witness(path[len("/witness/") :])
            return 404, {"error": f"no route for {method} {request.path}"}
        except ServeError as exc:
            return 400, {"error": str(exc)}
        except EngineError as exc:
            # Submission refused: the service is draining.
            return 503, {"error": str(exc)}

    # -- the endpoints -----------------------------------------------------------

    async def _check(self, body: dict) -> tuple[int, dict]:
        if "history" not in body:
            raise ServeError('POST /check needs a "history" field')
        key, outcome = self.service.submit_check(
            body["history"], body.get("models")
        )
        if isinstance(outcome, dict):  # cache or store hit
            return 200, outcome
        if body.get("async"):
            return 202, {
                "key": key,
                "status": "queued",
                "poll": f"/result/{key}",
            }
        return 200, await asyncio.wrap_future(outcome)

    async def _session_create(self, body: dict) -> tuple[int, dict]:
        future = self.service.create_session(body)
        return 201, await asyncio.wrap_future(future)

    async def _session(
        self, request: HttpRequest, tail: str
    ) -> tuple[int, dict]:
        """Dispatch ``/session/<id>`` and ``/session/<id>/append``."""
        if tail.endswith("/append"):
            session_id = tail[: -len("/append")].rstrip("/")
            if request.method != "POST":
                return 405, {"error": f"POST /session/{session_id}/append"}
            future = self.service.append_session(session_id, request.json())
            if future is None:
                return 404, {"error": f"unknown session {session_id!r}"}
            return 200, await asyncio.wrap_future(future)
        if request.method == "GET":
            snapshot = self.service.session_state(tail)
            if snapshot is None:
                return 404, {"error": f"unknown session {tail!r}"}
            return 200, snapshot
        if request.method == "DELETE":
            closed = self.service.close_session(tail)
            if closed is None:
                return 404, {"error": f"unknown session {tail!r}"}
            return 200, closed
        return 405, {"error": f"GET/DELETE /session/{tail}"}

    def _sweep(self, body: dict) -> tuple[int, dict]:
        job = self.service.submit_sweep(body)
        status = 200 if job.status == "done" else 202
        return status, {**job.describe(), "poll": f"/job/{job.id}"}

    def _job(self, job_id: str) -> tuple[int, dict]:
        job = self.service.job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.describe()

    def _result(self, key: str) -> tuple[int, dict]:
        response = self.service.cached_response(key)
        if response is None:
            return 404, {"error": f"no completed result for key {key!r}"}
        return 200, response

    def _witness(self, key: str) -> tuple[int, dict]:
        response = self.service.cached_response(key)
        if response is None:
            return 404, {"error": f"no completed result for key {key!r}"}
        return 200, {
            "key": key,
            "models": response.get("models", {}),
            "views": response.get("views", {}),
        }


async def _serve(config: ServeConfig, *, ready: "threading.Event | None" = None,
                 stop: asyncio.Event | None = None) -> None:
    """The shared server body: start, announce, wait, drain."""
    service = CheckService(config)
    app = ServeApp(service)
    server = HttpServer(
        app.handle,
        host=config.host,
        port=config.port,
        max_request_bytes=config.max_request_bytes,
        request_timeout=config.request_timeout,
        log_requests=config.log_requests,
    )
    await server.start()
    log.info(
        "serving on http://%s:%d (store: %s, workers: %d)",
        config.host,
        server.port,
        config.store_url or "memory only",
        config.workers,
    )
    if stop is None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(signum, stop.set)
    if ready is not None:
        ready.set()
    await stop.wait()
    log.info("shutting down: draining in-flight jobs")
    await server.shutdown()
    await asyncio.get_running_loop().run_in_executor(None, service.drain)
    log.info("drained; store closed")


def run_server(config: ServeConfig) -> int:
    """Serve until SIGINT/SIGTERM; the ``python -m repro serve`` body."""
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    print(
        f"repro serve: listening on http://{config.host}:{config.port} "
        f"(store: {config.store_url or 'memory only'}; Ctrl-C drains and exits)"
    )
    asyncio.run(_serve(config))
    return 0


class ServerThread:
    """The full server stack on a daemon thread (tests and benchmarks).

    ::

        with ServerThread(ServeConfig(port=0, store_url="sqlite:r.db")) as srv:
            conn = http.client.HTTPConnection("127.0.0.1", srv.port)
            ...

    ``port=0`` binds a free port; :attr:`port` holds the real one once
    the context is entered.  Exit requests a graceful shutdown and joins
    the thread — in-flight jobs drain exactly as they do under SIGTERM.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.port: int | None = None
        self.service: CheckService | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = CheckService(self.config)
        self.service = service
        app = ServeApp(service)
        server = HttpServer(
            app.handle,
            host=self.config.host,
            port=self.config.port,
            max_request_bytes=self.config.max_request_bytes,
            request_timeout=self.config.request_timeout,
            log_requests=self.config.log_requests,
        )
        await server.start()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.shutdown()
        await self._loop.run_in_executor(None, service.drain)

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("server failed to start within 30s")
        return self

    def shutdown(self) -> None:
        """Graceful stop: drain in-flight jobs, close the store, join."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
