"""The generic, spec-driven consistency checker (kernel-backed).

``check_with_spec(spec, history)`` decides whether a system execution
history is allowed by the memory model a
:class:`~repro.spec.model_spec.MemoryModelSpec` describes.  Since the
:mod:`repro.kernel` refactor the implementation lives in the kernel's
layered packages — attribution enumeration (:mod:`repro.kernel.rf`),
mutual-consistency candidates (:mod:`repro.kernel.serializations`),
constraint compilation (:mod:`repro.kernel.constraints`) and the
incremental-legality search (:mod:`repro.kernel.search`) — and this module
re-exports the driver under its historical name.

Verdicts, witnesses, ``explored`` counts and budget semantics are identical
to the pre-kernel monolithic solver (asserted against the frozen copy in
``_legacy_solver.py`` by the kernel test suite).
"""

from __future__ import annotations

from repro.kernel.search import SearchBudget, check_with_spec, explain_with_spec

__all__ = ["check_with_spec", "explain_with_spec", "SearchBudget"]
