"""The generic, spec-driven consistency checker.

``check_with_spec(spec, history)`` decides whether a system execution
history is allowed by the memory model a
:class:`~repro.spec.model_spec.MemoryModelSpec` describes, by direct search
over the paper's definition:

1. fix a reads-from attribution (unique under distinct write values,
   enumerated otherwise — see *Ambiguity* below);
2. enumerate the model's mutual-consistency serializations (nothing, a
   total write order, or per-location coherence orders);
3. build the per-view ordering constraints (parameter 3, plus release
   consistency's bracketing and labeled-discipline constraints);
4. for each processor, search for a legal linear extension of its view
   contents (parameter 1) under the constraints.

The history is allowed iff some combination of choices yields a legal view
for every processor; the witness views are returned.

Ambiguity
---------
The paper (and the litmus-test tradition) assumes distinct write values so
the writes-before relation is a function of the history.  When a history
violates that discipline we define "allowed" as: *there exists* a
reads-from attribution under which the model's constraints are satisfiable.
All fast paths and all experiments use distinct values.

Release consistency
-------------------
Labeled-SC (``RC_sc``) is handled by enumerating legal, program-ordered
serializations of the labeled operations and constraining every view's
labeled subsequence to agree with one of them.  Labeled-PC (``RC_pc``)
adds the semi-causality order of the *labeled sub-history* (computed under
the coherence order restricted to labeled writes) to the view constraints.
Both use the framework assumption, made by the paper's Bakery discussion,
that synchronization locations are accessed only by labeled operations.

Note on the paper's release condition: Section 3.4 literally writes that
an ordinary operation *preceding* a release "follows" it in all histories;
that is a typo for *precedes* (RC's defining guarantee is that ordinary
operations complete before the following release performs), and we
implement *precedes*.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.checking.extension import find_legal_extension, iter_legal_extensions
from repro.checking.result import CheckResult
from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.core.view import View
from repro.orders.coherence import (
    CoherenceOrder,
    coherence_relation,
    enumerate_coherence_orders,
    forced_coherence_pairs,
)
from repro.orders.program_order import in_program_order, po_relation
from repro.orders.relation import Relation
from repro.orders.writes_before import (
    ReadsFrom,
    reads_from_candidates,
    reads_from_choices,
    unambiguous_reads_from,
)
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import LabeledDiscipline, MutualConsistency, OperationSet

__all__ = ["check_with_spec", "SearchBudget"]


class SearchBudget:
    """Caps on the solver's enumeration, to fail loudly instead of hanging.

    The decision problem is NP-hard, so *some* budget is unavoidable; the
    defaults comfortably cover every litmus test and the exhaustive lattice
    enumeration while keeping pathological inputs from running away.
    """

    def __init__(
        self,
        max_reads_from: int = 4096,
        max_serializations: int = 200_000,
        max_labeled_orders: int = 100_000,
        use_reads_from_pruning: bool = True,
    ) -> None:
        self.max_reads_from = max_reads_from
        self.max_serializations = max_serializations
        self.max_labeled_orders = max_labeled_orders
        #: Ablation switch: derive forced write-order edges from the
        #: reads-from attribution before enumerating serializations.
        #: Disabling it preserves verdicts but multiplies the number of
        #: candidate write orders examined (see bench_ablation.py).
        self.use_reads_from_pruning = use_reads_from_pruning


def check_with_spec(
    spec: MemoryModelSpec,
    history: SystemHistory,
    budget: SearchBudget | None = None,
) -> CheckResult:
    """Decide whether ``history`` is allowed by the model ``spec`` describes."""
    budget = budget or SearchBudget()

    # A read of a value no write stores (and which is not the initial
    # value) cannot be legal in any view under any model.
    for op, cands in reads_from_candidates(history).items():
        if not cands:
            return CheckResult(
                spec.name,
                False,
                reason=f"{op} observes a value never written to {op.location!r}",
            )

    explored = 0
    for rf in _reads_from_assignments(history, budget):
        # The ordering relation depends on the coherence order only for
        # semi-causality (PC); hoist it out of the candidate loop otherwise.
        fixed_ordering = (
            None
            if spec.ordering.needs_coherence
            else spec.ordering.build(history, rf, None)
        )
        for coherence, mutual_edges in _mutual_candidates(spec, history, rf, budget):
            prepared = _base_constraints(
                spec, history, rf, coherence, mutual_edges, fixed_ordering
            )
            if prepared is None:
                continue
            base, own_ordering = prepared
            for extra in _labeled_constraints(spec, history, rf, coherence, budget):
                explored += 1
                if explored > budget.max_serializations:
                    raise CheckerError(
                        f"{spec.name}: search budget exceeded after "
                        f"{budget.max_serializations} candidate serializations"
                    )
                constraints = base.union(extra) if extra is not None else base
                views = _solve_views(spec, history, constraints, own_ordering)
                if views is not None:
                    return CheckResult(
                        spec.name, True, views=views, explored=explored
                    )
    return CheckResult(
        spec.name,
        False,
        reason="no choice of views satisfies the model's requirements",
        explored=explored,
    )


# -- choice enumeration -------------------------------------------------------


def _reads_from_assignments(
    history: SystemHistory, budget: SearchBudget
) -> Iterator[ReadsFrom]:
    unambiguous = unambiguous_reads_from(history)
    if unambiguous is not None:
        yield unambiguous
        return
    count = 0
    for rf in reads_from_choices(history):
        count += 1
        if count > budget.max_reads_from:
            raise CheckerError(
                f"more than {budget.max_reads_from} reads-from attributions; "
                "use distinct write values"
            )
        yield rf


def _mutual_candidates(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    budget: SearchBudget,
) -> Iterator[tuple[CoherenceOrder | None, Relation[Operation] | None]]:
    """Yield (coherence order, induced cross-view edge relation) pairs."""
    mc = spec.mutual_consistency
    # Reads-from based pruning is only sound when the attribution is the
    # unique one (distinct write values *and* no initial-value ambiguity).
    unambiguous = (
        budget.use_reads_from_pruning
        and unambiguous_reads_from(history) is not None
    )
    if mc in (MutualConsistency.NONE, MutualConsistency.IDENTICAL):
        yield None, None
        return

    if mc is MutualConsistency.TOTAL_WRITE_ORDER:
        writes = history.writes
        forced: Relation[Operation] = Relation(writes)
        for proc in history.procs:
            chain = [op for op in history.ops_of(proc) if op.is_write]
            for a, b in zip(chain, chain[1:]):
                forced.add(a, b)
        if unambiguous:
            # Sound pruning: reads-from fixes some inter-write orderings.
            for loc in history.locations:
                for a, b in forced_coherence_pairs(history, loc, rf).pairs():
                    forced.add(a, b)
        if not forced.is_acyclic():
            return
        for order in forced.all_topological_sorts():
            rel: Relation[Operation] = Relation(history.operations)
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    rel.add(a, b)
            coherence = _split_by_location(order)
            yield coherence, rel
        return

    if mc is MutualConsistency.COHERENCE:
        for coherence in enumerate_coherence_orders(
            history, rf if unambiguous else None
        ):
            yield coherence, coherence_relation(history, coherence)
        return

    if mc is MutualConsistency.LABELED_TOTAL_ORDER:
        # Hybrid consistency: one agreed total order over the labeled
        # (strong) operations, extending each processor's program order
        # on them.
        labeled = history.labeled_ops
        forced_l: Relation[Operation] = Relation(labeled)
        for proc in history.procs:
            chain = [op for op in history.ops_of(proc) if op.labeled]
            for a, b in zip(chain, chain[1:]):
                forced_l.add(a, b)
        for order in forced_l.all_topological_sorts():
            rel: Relation[Operation] = Relation(history.operations)
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    rel.add(a, b)
            yield None, rel
        return

    raise CheckerError(f"unhandled mutual consistency {mc}")  # pragma: no cover


def _split_by_location(order: list[Operation]) -> dict[str, tuple[Operation, ...]]:
    chains: dict[str, list[Operation]] = {}
    for op in order:
        chains.setdefault(op.location, []).append(op)
    return {loc: tuple(ops) for loc, ops in chains.items()}


# -- constraint assembly -------------------------------------------------------


def _base_constraints(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    coherence: CoherenceOrder | None,
    mutual_edges: Relation[Operation] | None,
    fixed_ordering: Relation[Operation] | None = None,
) -> tuple[Relation[Operation], Relation[Operation] | None] | None:
    """Assemble the cross-view constraints and the per-view ordering.

    Returns ``(global_constraints, own_ordering)`` where ``own_ordering``
    is ``None`` when the ordering already lives in the global constraints
    (models where orderings bind every view), or the ordering relation to
    be restricted to each view owner's own operations (release
    consistency's "o1 precedes o2 in S_p" reading).  ``None`` overall when
    the global constraints are cyclic (no views can exist).
    """
    if fixed_ordering is not None:
        ordering = fixed_ordering
    else:
        ordering = spec.ordering.build(history, rf, coherence)
    parts: list[Relation[Operation]] = []
    own_ordering: Relation[Operation] | None = None
    if spec.ordering_own_view_only:
        own_ordering = ordering
    else:
        parts.append(ordering)
    if mutual_edges is not None:
        parts.append(mutual_edges)
    if spec.bracketing:
        parts.append(_bracketing_edges(history, rf))
    if not parts:
        parts.append(Relation(history.operations))
    combined = parts[0].union(*parts[1:]) if len(parts) > 1 else parts[0]
    if not combined.is_acyclic():
        return None
    # Close transitively so restriction to any view preserves all orderings.
    return combined.transitive_closure(), own_ordering


def _bracketing_edges(history: SystemHistory, rf: ReadsFrom) -> Relation[Operation]:
    """Release consistency's two bracketing conditions (Section 3.4).

    * An ordinary operation following an acquire is ordered after the write
      the acquire read, in every view containing both.
    * An ordinary operation preceding a release is ordered before that
      release, in every view containing both.
    """
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for op in ops:
            if op.labeled:
                continue
            # Acquires earlier in program order bracket this ordinary op.
            for earlier in ops[: op.index]:
                if earlier.is_acquire:
                    src = rf.get(earlier)
                    if src is not None:
                        rel.add(src, op)
            # Releases later in program order bracket it from above.
            for later in ops[op.index + 1:]:
                if later.is_release:
                    rel.add(op, later)
    return rel


def _labeled_constraints(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    coherence: CoherenceOrder | None,
    budget: SearchBudget,
) -> Iterator[Relation[Operation] | None]:
    """Extra per-view edges enforcing the labeled discipline, if any."""
    if spec.labeled_discipline is None:
        yield None
        return

    labeled = history.labeled_ops
    if not labeled:
        yield None
        return

    if spec.labeled_discipline is LabeledDiscipline.SC:
        # Enumerate legal SC serializations of the labeled operations and
        # force every view's labeled subsequence to agree with one.
        po_labeled: Relation[Operation] = Relation(labeled)
        for a in labeled:
            for b in labeled:
                if in_program_order(a, b):
                    po_labeled.add(a, b)
        count = 0
        for order in iter_legal_extensions(labeled, po_labeled):
            count += 1
            if count > budget.max_labeled_orders:
                raise CheckerError(
                    "too many labeled serializations; raise the budget"
                )
            rel: Relation[Operation] = Relation(history.operations)
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    rel.add(a, b)
            yield rel
        return

    # Labeled-PC: add the semi-causality of the labeled sub-history.  The
    # attribution is inherited from the ambient reads-from choice so the
    # two levels of the model never disagree about who a labeled read saw.
    from repro.orders.semi_causal import sem_relation  # local to avoid cycle

    sub, back = history.project(lambda op: op.labeled)
    fwd = {back[new.uid].uid: new for new in sub.operations}
    rf_sub: dict[Operation, Operation | None] = {}
    for new_op in sub.operations:
        if new_op.is_read:
            src = rf.get(back[new_op.uid])
            if src is not None and src.uid in fwd and fwd[src.uid].is_write:
                rf_sub[new_op] = fwd[src.uid]
            else:
                rf_sub[new_op] = None
    coherence_sub: dict[str, tuple[Operation, ...]] = {}
    if coherence is not None:
        for loc, chain in coherence.items():
            projected = tuple(fwd[w.uid] for w in chain if w.uid in fwd)
            if projected:
                coherence_sub[loc] = projected
    sem_sub = sem_relation(sub, rf_sub, coherence_sub)
    rel = Relation(history.operations)
    for a, b in sem_sub.pairs():
        rel.add(back[a.uid], back[b.uid])
    if not rel.is_acyclic():
        return
    yield rel.transitive_closure()


# -- view construction -----------------------------------------------------------


def _solve_views(
    spec: MemoryModelSpec,
    history: SystemHistory,
    constraints: Relation[Operation],
    own_ordering: Relation[Operation] | None = None,
) -> dict[Any, View] | None:
    if spec.mutual_consistency is MutualConsistency.IDENTICAL:
        order = find_legal_extension(history.operations, constraints)
        if order is None:
            return None
        return {
            proc: View(proc, order, history, validate=False)
            for proc in history.procs
        }
    views: dict[Any, View] = {}
    for proc in history.procs:
        contents = spec.operation_set.view_contents(history, proc)
        per_view = constraints
        if own_ordering is not None:
            own = {op.uid for op in history.ops_of(proc)}
            per_view = constraints.union(
                own_ordering.restrict(lambda op: op.uid in own)
            )
            if not per_view.is_acyclic():
                return None
        order = find_legal_extension(contents, per_view)
        if order is None:
            return None
        views[proc] = View(proc, order, history, validate=False)
    return views
