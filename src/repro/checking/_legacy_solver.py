"""Frozen pre-kernel generic solver, kept as an equivalence/benchmark oracle.

This is the monolithic ``check_with_spec`` (and its private extension
search) exactly as it stood before the :mod:`repro.kernel` refactor.  It is
**not** part of the public API and receives no new features; it exists so

* ``tests/kernel/test_equivalence.py`` can assert the kernel's verdicts,
  witnesses and ``explored`` counts are identical to the pre-refactor
  solver on every catalog × model pair, and
* ``benchmarks/bench_kernel.py`` can measure the kernel's speedup against
  a live baseline rather than a number in a commit message.

Do not import this module from production code.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.checking.result import CheckResult
from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation
from repro.core.view import View
from repro.orders.coherence import (
    CoherenceOrder,
    coherence_relation,
    enumerate_coherence_orders,
    forced_coherence_pairs,
)
from repro.orders.program_order import in_program_order
from repro.orders.relation import Relation
from repro.orders.writes_before import (
    ReadsFrom,
    reads_from_candidates,
    reads_from_choices,
    unambiguous_reads_from,
)
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import LabeledDiscipline, MutualConsistency

__all__ = ["legacy_check_with_spec", "LegacySearchBudget"]

_MAX_OPS = 64


class LegacySearchBudget:
    """Verbatim copy of the pre-kernel ``SearchBudget``."""

    def __init__(
        self,
        max_reads_from: int = 4096,
        max_serializations: int = 200_000,
        max_labeled_orders: int = 100_000,
        use_reads_from_pruning: bool = True,
    ) -> None:
        self.max_reads_from = max_reads_from
        self.max_serializations = max_serializations
        self.max_labeled_orders = max_labeled_orders
        self.use_reads_from_pruning = use_reads_from_pruning


# -- frozen copy of the old repro.checking.extension search -------------------


def _prepare(
    ops: Sequence[Operation], constraints: Relation[Operation]
) -> tuple[list[int], list[str], list[int | None], list[int | None]] | None:
    n = len(ops)
    if n > _MAX_OPS:
        raise CheckerError(
            f"view of {n} operations exceeds the {_MAX_OPS}-operation solver limit"
        )
    index = {op.uid: i for i, op in enumerate(ops)}
    pred_mask = [0] * n
    for a, b in constraints.pairs():
        ia, ib = index.get(a.uid), index.get(b.uid)
        if ia is not None and ib is not None and ia != ib:
            pred_mask[ib] |= 1 << ia
    if not constraints.restrict(list(ops)).is_acyclic():
        return None
    locations = [op.location for op in ops]
    read_vals: list[int | None] = [
        op.value_read if op.is_read else None for op in ops
    ]
    write_vals: list[int | None] = [
        op.value_written if op.is_write else None for op in ops
    ]
    return pred_mask, locations, read_vals, write_vals


def _legacy_find_legal_extension(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    memoize: bool = True,
) -> list[Operation] | None:
    prep = _prepare(ops, constraints)
    if prep is None:
        return None
    pred_mask, locations, read_vals, write_vals = prep
    n = len(ops)
    loc_names = sorted(set(locations))
    loc_index = {loc: i for i, loc in enumerate(loc_names)}
    op_loc = [loc_index[loc] for loc in locations]

    full = (1 << n) - 1
    failed: set[tuple[int, tuple[int, ...]]] = set()
    order: list[int] = []

    def dfs(placed: int, values: tuple[int, ...]) -> bool:
        if placed == full:
            return True
        key = (placed, values)
        if memoize and key in failed:
            return False
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred_mask[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            order.append(i)
            if dfs(placed | bit, new_values):
                return True
            order.pop()
        if memoize:
            failed.add(key)
        return False

    if dfs(0, tuple([initial] * len(loc_names))):
        return [ops[i] for i in order]
    return None


def _legacy_iter_legal_extensions(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    limit: int | None = None,
):
    prep = _prepare(ops, constraints)
    if prep is None:
        return
    pred_mask, locations, read_vals, write_vals = prep
    n = len(ops)
    loc_names = sorted(set(locations))
    loc_index = {loc: i for i, loc in enumerate(loc_names)}
    op_loc = [loc_index[loc] for loc in locations]
    full = (1 << n) - 1
    order: list[int] = []
    yielded = 0

    def dfs(placed: int, values: tuple[int, ...]):
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if placed == full:
            yielded += 1
            yield [ops[i] for i in order]
            return
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred_mask[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            order.append(i)
            yield from dfs(placed | bit, new_values)
            order.pop()

    yield from dfs(0, tuple([initial] * len(loc_names)))


# -- frozen copy of the old repro.checking.solver -----------------------------


def legacy_check_with_spec(
    spec: MemoryModelSpec,
    history: SystemHistory,
    budget: LegacySearchBudget | None = None,
) -> CheckResult:
    """The pre-kernel ``check_with_spec``, byte-for-byte behaviour."""
    budget = budget or LegacySearchBudget()

    for op, cands in reads_from_candidates(history).items():
        if not cands:
            return CheckResult(
                spec.name,
                False,
                reason=f"{op} observes a value never written to {op.location!r}",
            )

    explored = 0
    for rf in _reads_from_assignments(history, budget):
        fixed_ordering = (
            None
            if spec.ordering.needs_coherence
            else spec.ordering.build(history, rf, None)
        )
        for coherence, mutual_edges in _mutual_candidates(spec, history, rf, budget):
            prepared = _base_constraints(
                spec, history, rf, coherence, mutual_edges, fixed_ordering
            )
            if prepared is None:
                continue
            base, own_ordering = prepared
            for extra in _labeled_constraints(spec, history, rf, coherence, budget):
                explored += 1
                if explored > budget.max_serializations:
                    raise CheckerError(
                        f"{spec.name}: search budget exceeded after "
                        f"{budget.max_serializations} candidate serializations"
                    )
                constraints = base.union(extra) if extra is not None else base
                views = _solve_views(spec, history, constraints, own_ordering)
                if views is not None:
                    return CheckResult(
                        spec.name, True, views=views, explored=explored
                    )
    return CheckResult(
        spec.name,
        False,
        reason="no choice of views satisfies the model's requirements",
        explored=explored,
    )


def _reads_from_assignments(
    history: SystemHistory, budget: LegacySearchBudget
) -> Iterator[ReadsFrom]:
    unambiguous = unambiguous_reads_from(history)
    if unambiguous is not None:
        yield unambiguous
        return
    count = 0
    for rf in reads_from_choices(history):
        count += 1
        if count > budget.max_reads_from:
            raise CheckerError(
                f"more than {budget.max_reads_from} reads-from attributions; "
                "use distinct write values"
            )
        yield rf


def _mutual_candidates(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    budget: LegacySearchBudget,
) -> Iterator[tuple[CoherenceOrder | None, Relation[Operation] | None]]:
    mc = spec.mutual_consistency
    unambiguous = (
        budget.use_reads_from_pruning
        and unambiguous_reads_from(history) is not None
    )
    if mc in (MutualConsistency.NONE, MutualConsistency.IDENTICAL):
        yield None, None
        return

    if mc is MutualConsistency.TOTAL_WRITE_ORDER:
        writes = history.writes
        forced: Relation[Operation] = Relation(writes)
        for proc in history.procs:
            chain = [op for op in history.ops_of(proc) if op.is_write]
            for a, b in zip(chain, chain[1:]):
                forced.add(a, b)
        if unambiguous:
            for loc in history.locations:
                for a, b in forced_coherence_pairs(history, loc, rf).pairs():
                    forced.add(a, b)
        if not forced.is_acyclic():
            return
        for order in forced.all_topological_sorts():
            rel: Relation[Operation] = Relation(history.operations)
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    rel.add(a, b)
            coherence = _split_by_location(order)
            yield coherence, rel
        return

    if mc is MutualConsistency.COHERENCE:
        for coherence in enumerate_coherence_orders(
            history, rf if unambiguous else None
        ):
            yield coherence, coherence_relation(history, coherence)
        return

    if mc is MutualConsistency.PARTITION:
        from itertools import product

        from repro.spec.parameters import partition_block_map

        assert spec.partition_blocks is not None
        block = partition_block_map(history, spec.partition_blocks)
        by_block: list[list[Operation]] = [
            [] for _ in range(spec.partition_blocks)
        ]
        for op in history.writes:
            by_block[block[op.location]].append(op)
        per_block: list[list[tuple[Operation, ...]]] = []
        for b in range(spec.partition_blocks):
            forced_b: Relation[Operation] = Relation(by_block[b])
            for proc in history.procs:
                chain = [
                    op
                    for op in history.ops_of(proc)
                    if op.is_write and block[op.location] == b
                ]
                for x, y in zip(chain, chain[1:]):
                    forced_b.add(x, y)
            if unambiguous:
                for loc in history.locations:
                    if block[loc] != b:
                        continue
                    for x, y in forced_coherence_pairs(history, loc, rf).pairs():
                        forced_b.add(x, y)
            if not forced_b.is_acyclic():
                return
            per_block.append(
                [tuple(order) for order in forced_b.all_topological_sorts()]
            )
        for combo in product(*per_block):
            rel_p: Relation[Operation] = Relation(history.operations)
            coherence_p: dict[str, tuple[Operation, ...]] = {}
            for order in combo:
                for i, a in enumerate(order):
                    for b_op in order[i + 1:]:
                        rel_p.add(a, b_op)
                coherence_p.update(_split_by_location(list(order)))
            yield coherence_p, rel_p
        return

    if mc is MutualConsistency.LABELED_TOTAL_ORDER:
        labeled = history.labeled_ops
        forced_l: Relation[Operation] = Relation(labeled)
        for proc in history.procs:
            chain = [op for op in history.ops_of(proc) if op.labeled]
            for a, b in zip(chain, chain[1:]):
                forced_l.add(a, b)
        for order in forced_l.all_topological_sorts():
            rel: Relation[Operation] = Relation(history.operations)
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    rel.add(a, b)
            yield None, rel
        return

    raise CheckerError(f"unhandled mutual consistency {mc}")  # pragma: no cover


def _split_by_location(order: list[Operation]) -> dict[str, tuple[Operation, ...]]:
    chains: dict[str, list[Operation]] = {}
    for op in order:
        chains.setdefault(op.location, []).append(op)
    return {loc: tuple(ops) for loc, ops in chains.items()}


def _base_constraints(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    coherence: CoherenceOrder | None,
    mutual_edges: Relation[Operation] | None,
    fixed_ordering: Relation[Operation] | None = None,
) -> tuple[Relation[Operation], Relation[Operation] | None] | None:
    if fixed_ordering is not None:
        ordering = fixed_ordering
    else:
        ordering = spec.ordering.build(history, rf, coherence)
    parts: list[Relation[Operation]] = []
    own_ordering: Relation[Operation] | None = None
    if spec.ordering_own_view_only:
        own_ordering = ordering
    else:
        parts.append(ordering)
    if mutual_edges is not None:
        parts.append(mutual_edges)
    if spec.bracketing:
        parts.append(_bracketing_edges(history, rf))
    if not parts:
        parts.append(Relation(history.operations))
    combined = parts[0].union(*parts[1:]) if len(parts) > 1 else parts[0]
    if not combined.is_acyclic():
        return None
    return combined.transitive_closure(), own_ordering


def _bracketing_edges(history: SystemHistory, rf: ReadsFrom) -> Relation[Operation]:
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for op in ops:
            if op.labeled:
                continue
            for earlier in ops[: op.index]:
                if earlier.is_acquire:
                    src = rf.get(earlier)
                    if src is not None:
                        rel.add(src, op)
            for later in ops[op.index + 1:]:
                if later.is_release:
                    rel.add(op, later)
    return rel


def _labeled_constraints(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    coherence: CoherenceOrder | None,
    budget: LegacySearchBudget,
) -> Iterator[Relation[Operation] | None]:
    if spec.labeled_discipline is None:
        yield None
        return

    labeled = history.labeled_ops
    if not labeled:
        yield None
        return

    if spec.labeled_discipline is LabeledDiscipline.SC:
        po_labeled: Relation[Operation] = Relation(labeled)
        for a in labeled:
            for b in labeled:
                if in_program_order(a, b):
                    po_labeled.add(a, b)
        count = 0
        for order in _legacy_iter_legal_extensions(labeled, po_labeled):
            count += 1
            if count > budget.max_labeled_orders:
                raise CheckerError(
                    "too many labeled serializations; raise the budget"
                )
            rel: Relation[Operation] = Relation(history.operations)
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    rel.add(a, b)
            yield rel
        return

    from repro.orders.semi_causal import sem_relation

    sub, back = history.project(lambda op: op.labeled)
    fwd = {back[new.uid].uid: new for new in sub.operations}
    rf_sub: dict[Operation, Operation | None] = {}
    for new_op in sub.operations:
        if new_op.is_read:
            src = rf.get(back[new_op.uid])
            if src is not None and src.uid in fwd and fwd[src.uid].is_write:
                rf_sub[new_op] = fwd[src.uid]
            else:
                rf_sub[new_op] = None
    coherence_sub: dict[str, tuple[Operation, ...]] = {}
    if coherence is not None:
        for loc, chain in coherence.items():
            projected = tuple(fwd[w.uid] for w in chain if w.uid in fwd)
            if projected:
                coherence_sub[loc] = projected
    sem_sub = sem_relation(sub, rf_sub, coherence_sub)
    rel = Relation(history.operations)
    for a, b in sem_sub.pairs():
        rel.add(back[a.uid], back[b.uid])
    if not rel.is_acyclic():
        return
    yield rel.transitive_closure()


def _solve_views(
    spec: MemoryModelSpec,
    history: SystemHistory,
    constraints: Relation[Operation],
    own_ordering: Relation[Operation] | None = None,
) -> dict[Any, View] | None:
    if spec.mutual_consistency is MutualConsistency.IDENTICAL:
        order = _legacy_find_legal_extension(history.operations, constraints)
        if order is None:
            return None
        return {
            proc: View(proc, order, history, validate=False)
            for proc in history.procs
        }
    views: dict[Any, View] = {}
    for proc in history.procs:
        contents = spec.operation_set.view_contents(history, proc)
        per_view = constraints
        if own_ordering is not None:
            own = {op.uid for op in history.ops_of(proc)}
            per_view = constraints.union(
                own_ordering.restrict(lambda op: op.uid in own)
            )
            if not per_view.is_acyclic():
                return None
        order = _legacy_find_legal_extension(contents, per_view)
        if order is None:
            return None
        views[proc] = View(proc, order, history, validate=False)
    return views
