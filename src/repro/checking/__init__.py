"""Consistency checkers: decide whether a history is allowed by a model."""

from repro.checking.axiomatic_tso import check_axiomatic_tso, is_axiomatic_tso
from repro.checking.causal import check_causal, is_causal
from repro.checking.coherence import check_coherence, is_coherent
from repro.checking.extension import (
    count_legal_extensions,
    find_legal_extension,
    iter_legal_extensions,
)
from repro.checking.models import (
    MODELS,
    MemoryModel,
    PAPER_MODELS,
    check,
    classify,
    model_names,
)
from repro.checking.pc import check_pc, check_pc_goodman, is_pc, is_pc_goodman
from repro.checking.pram import check_pram, is_pram
from repro.checking.rc import check_rc_pc, check_rc_sc, is_rc_pc, is_rc_sc
from repro.checking.result import CheckResult, Counterexample, Witness
from repro.checking.sc import check_sc, is_sequentially_consistent
from repro.checking.solver import SearchBudget, check_with_spec, explain_with_spec
from repro.checking.tso import check_tso, is_tso
from repro.checking.witness import validate_witness

__all__ = [
    "check",
    "check_axiomatic_tso",
    "check_causal",
    "check_coherence",
    "check_pc",
    "check_pc_goodman",
    "check_pram",
    "check_rc_pc",
    "check_rc_sc",
    "check_sc",
    "check_tso",
    "check_with_spec",
    "CheckResult",
    "classify",
    "count_legal_extensions",
    "Counterexample",
    "explain_with_spec",
    "find_legal_extension",
    "is_axiomatic_tso",
    "is_causal",
    "is_coherent",
    "is_pc",
    "is_pc_goodman",
    "is_pram",
    "is_rc_pc",
    "is_rc_sc",
    "is_sequentially_consistent",
    "is_tso",
    "iter_legal_extensions",
    "MemoryModel",
    "MODELS",
    "model_names",
    "PAPER_MODELS",
    "SearchBudget",
    "validate_witness",
    "Witness",
]
