"""Fast total-store-ordering checker (paper Section 3.2).

TSO in the paper's framework: views contain own operations plus all remote
writes (``δ_p = w``); all views order *all* writes identically (mutual
consistency); the partial program order ``->ppo`` is respected.

The fast path exploits a structural fact: once the shared write order is
fixed, the views decouple and each processor's reads can be placed
*greedily*.  A read only needs a slot in the write sequence where

* the most recent write to its location stores the value it returned,
* all of its ``->ppo`` predecessors among its own writes are already
  placed, and its own later writes are not,
* it does not precede an earlier (program-ordered) read of its processor.

Placing every read at the earliest feasible slot is optimal because all
constraints relating reads are lower bounds that only grow with later
placement.  This turns the per-write-order check from exponential to
O(reads × writes), leaving only the write-order enumeration exponential —
and that enumeration is pruned by forced reads-from edges.

Falls back to the generic solver for histories with RMW operations or
duplicated write values, where the greedy argument does not apply.
"""

from __future__ import annotations

from typing import Any

from repro.checking.result import CheckResult
from repro.checking.solver import SearchBudget, check_with_spec
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation, OpKind
from repro.core.view import View
from repro.kernel.serializations import forced_write_order
from repro.orders.program_order import ppo_relation
from repro.orders.relation import Relation
from repro.orders.writes_before import unambiguous_reads_from
from repro.spec.registry import TSO_SPEC

__all__ = ["check_tso", "is_tso"]


def check_tso(history: SystemHistory, budget: SearchBudget | None = None) -> CheckResult:
    """Decide TSO membership, with witness views on success."""
    rf = unambiguous_reads_from(history)
    if rf is None or any(op.kind is OpKind.RMW for op in history.operations):
        # Ambiguous reads-from or RMWs: the greedy argument does not apply.
        return check_with_spec(TSO_SPEC, history, budget)

    forced = forced_write_order(history, rf)
    if not forced.is_acyclic():
        return CheckResult(
            "TSO", False, reason="reads-from forces a cyclic write order"
        )

    ppo = ppo_relation(history)
    explored = 0
    for order in forced.all_topological_sorts():
        explored += 1
        views = _views_for_write_order(history, order, ppo)
        if views is not None:
            return CheckResult("TSO", True, views=views, explored=explored)
    return CheckResult(
        "TSO",
        False,
        reason="no shared write order admits legal per-processor views",
        explored=explored,
    )


def is_tso(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_tso`."""
    return check_tso(history).allowed


def _views_for_write_order(
    history: SystemHistory, order: list[Operation], ppo: Relation[Operation]
) -> dict[Any, View] | None:
    """Greedy construction of every processor's view for one write order."""
    wpos = {w.uid: i for i, w in enumerate(order)}
    # Value of each location after the first k writes of `order`.
    nwrites = len(order)
    views: dict[Any, View] = {}
    for proc in history.procs:
        slots = _place_reads(history, proc, order, wpos)
        if slots is None:
            return None
        # Interleave: reads assigned slot s appear just before order[s].
        merged: list[Operation] = []
        reads = [op for op in history.ops_of(proc) if op.is_pure_read]
        ri = 0
        for s in range(nwrites + 1):
            while ri < len(reads) and slots[ri] == s:
                merged.append(reads[ri])
                ri += 1
            if s < nwrites:
                merged.append(order[s])
        views[proc] = View(proc, merged, history, validate=False)
    return views


def _place_reads(
    history: SystemHistory,
    proc: Any,
    order: list[Operation],
    wpos: dict[tuple, int],
) -> list[int] | None:
    """Earliest-feasible slots for ``proc``'s reads, or ``None``.

    Slot ``s`` means "after the first ``s`` writes of the shared order".
    """
    nwrites = len(order)
    # Per-location prefix values: value_at[loc][s] = value after s writes.
    value_at: dict[str, list[int]] = {}
    for loc in history.locations:
        vals = [INITIAL_VALUE]
        for w in order:
            vals.append(w.value_written if w.location == loc else vals[-1])
        value_at[loc] = vals

    ppo = ppo_relation(history)  # cached upstream in check_tso's caller loop
    own_ops = history.ops_of(proc)
    own_writes = [op for op in own_ops if op.is_write]
    reads = [op for op in own_ops if op.is_pure_read]
    slots: list[int] = []
    current_min = 0
    for r in reads:
        lo = current_min
        hi = nwrites
        for w in own_writes:
            if ppo.orders(w, r):
                lo = max(lo, wpos[w.uid] + 1)
            elif ppo.orders(r, w):
                hi = min(hi, wpos[w.uid])
        if lo > hi:
            return None
        vals = value_at[r.location]
        want = r.value_read
        slot = next((s for s in range(lo, hi + 1) if vals[s] == want), None)
        if slot is None:
            return None
        slots.append(slot)
        current_min = slot
    return slots
