"""Search for legal linear extensions: the kernel of every checker.

The implementation moved to :mod:`repro.kernel.search` (the kernel's layer
4) in the constraint-kernel refactor; this module re-exports the historical
API.  Semantics are unchanged: deterministic witnesses, the 64-operation
limit, the ``memoize`` ablation switch, and identical generator behaviour
for :func:`iter_legal_extensions`.
"""

from __future__ import annotations

from repro.kernel.search import (
    count_legal_extensions,
    find_legal_extension,
    iter_legal_extensions,
)

__all__ = ["find_legal_extension", "count_legal_extensions", "iter_legal_extensions"]
