"""Search for legal linear extensions: the kernel of every checker.

Given a set of operations and a constraint relation, find an ordering of
the operations that (a) is a linear extension of the constraints and
(b) is *legal* — every read observes the most recent preceding write to its
location (paper Section 2).  This is the computational core of the whole
framework: a memory model allows a history exactly when such an extension
exists for every processor's view contents under the model's constraints.

The search is a depth-first backtracking construction over bitmask states
with memoized failure states.  A state is the pair *(set of placed
operations, current value of every location)*; two partial sequences with
equal state have identical futures, so each failing state is explored once.
The bitmask representation restricts a single view to 64 operations
far beyond what the exponential-time problem admits anyway (verifying
sequential consistency is NP-complete; Gibbons & Korach 1997).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import CheckerError
from repro.core.operation import INITIAL_VALUE, Operation
from repro.orders.relation import Relation

__all__ = ["find_legal_extension", "count_legal_extensions", "iter_legal_extensions"]

_MAX_OPS = 64


def _prepare(
    ops: Sequence[Operation], constraints: Relation[Operation]
) -> tuple[list[int], list[str], list[int | None], list[int | None]] | None:
    """Precompute predecessor masks and per-op read/write payloads.

    Returns ``None`` when the constraints are cyclic on ``ops`` (no
    extension can exist).
    """
    n = len(ops)
    if n > _MAX_OPS:
        raise CheckerError(
            f"view of {n} operations exceeds the {_MAX_OPS}-operation solver limit"
        )
    index = {op.uid: i for i, op in enumerate(ops)}
    pred_mask = [0] * n
    for a, b in constraints.pairs():
        ia, ib = index.get(a.uid), index.get(b.uid)
        if ia is not None and ib is not None and ia != ib:
            pred_mask[ib] |= 1 << ia
    if not constraints.restrict(list(ops)).is_acyclic():
        return None
    locations = [op.location for op in ops]
    read_vals: list[int | None] = [
        op.value_read if op.is_read else None for op in ops
    ]
    write_vals: list[int | None] = [
        op.value_written if op.is_write else None for op in ops
    ]
    return pred_mask, locations, read_vals, write_vals


def find_legal_extension(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    memoize: bool = True,
) -> list[Operation] | None:
    """One legal linear extension of ``constraints`` over ``ops``, or ``None``.

    Parameters
    ----------
    ops:
        The operations the sequence must contain (each exactly once).
    constraints:
        Required orderings; pairs mentioning operations outside ``ops``
        are ignored.
    initial:
        Initial value of every location.
    memoize:
        Ablation switch: record failing (placed-set, memory-state) pairs
        so each dead state is explored once.  Disabling it preserves
        results but revisits dead states exponentially often on
        unsatisfiable instances (see bench_ablation.py).

    Notes
    -----
    Deterministic: given equal inputs the same witness is returned, which
    keeps test failures and benchmark output reproducible.
    """
    prep = _prepare(ops, constraints)
    if prep is None:
        return None
    pred_mask, locations, read_vals, write_vals = prep
    n = len(ops)
    loc_names = sorted(set(locations))
    loc_index = {loc: i for i, loc in enumerate(loc_names)}
    op_loc = [loc_index[loc] for loc in locations]

    full = (1 << n) - 1
    failed: set[tuple[int, tuple[int, ...]]] = set()
    order: list[int] = []

    def dfs(placed: int, values: tuple[int, ...]) -> bool:
        if placed == full:
            return True
        key = (placed, values)
        if memoize and key in failed:
            return False
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred_mask[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            order.append(i)
            if dfs(placed | bit, new_values):
                return True
            order.pop()
        if memoize:
            failed.add(key)
        return False

    if dfs(0, tuple([initial] * len(loc_names))):
        return [ops[i] for i in order]
    return None


def iter_legal_extensions(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    limit: int | None = None,
):
    """Yield every legal linear extension (small inputs only).

    Unlike :func:`find_legal_extension` this cannot memoize failures across
    branches that must all be enumerated, so it is exponential even on
    *successful* instances; ``limit`` bounds the number of yields.
    """
    prep = _prepare(ops, constraints)
    if prep is None:
        return
    pred_mask, locations, read_vals, write_vals = prep
    n = len(ops)
    loc_names = sorted(set(locations))
    loc_index = {loc: i for i, loc in enumerate(loc_names)}
    op_loc = [loc_index[loc] for loc in locations]
    full = (1 << n) - 1
    order: list[int] = []
    yielded = 0

    def dfs(placed: int, values: tuple[int, ...]):
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if placed == full:
            yielded += 1
            yield [ops[i] for i in order]
            return
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred_mask[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            order.append(i)
            yield from dfs(placed | bit, new_values)
            order.pop()

    yield from dfs(0, tuple([initial] * len(loc_names)))


def count_legal_extensions(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    limit: int = 1_000_000,
) -> int:
    """The number of legal linear extensions (capped at ``limit``)."""
    count = 0
    for _ in iter_legal_extensions(ops, constraints, initial=initial, limit=limit):
        count += 1
    return count
