"""Axiomatic TSO à la Sindhu, Frailong & Cekleov (paper Section 6, E8).

The paper claims its view-based TSO characterization captures the axiomatic
specification of SPARC TSO.  To test that claim empirically we implement
the axiomatic model *independently*:

* **Order** — a single total order ``≤`` over all stores;
* **per-processor FIFO** — ``≤`` extends each processor's program order on
  its own stores (stores drain from a FIFO buffer);
* **LoadOp** — loads of one processor perform in program order, and a store
  program-ordered after a load commits after that load performs;
* **Value** — a load returns the value of the ``≤``-maximal store among
  those committed before it performs *and its own program-earlier stores*
  (store-buffer forwarding);
* **Termination** — implicit: every store occupies a position in ``≤``.

The one semantic gap between this and the paper's characterization is
forwarding: the paper's ``->ppo`` orders a write before a program-later
read *of the same location*, which forbids a processor from seeing its own
store before other processors do.  Hardware TSO permits exactly that
(litmus test ``SB+rfi`` / n5-style shapes).  The equivalence experiment
(``benchmarks/bench_tso_axiomatic.py``) quantifies where the two agree and
exhibits the divergence; see EXPERIMENTS.md.

The checker enumerates store orders (pruned by forced edges) and places
each processor's loads greedily, mirroring :mod:`repro.checking.tso` —
greedy placement is optimal for the same monotonicity reason.
"""

from __future__ import annotations

from typing import Any

from repro.checking.result import CheckResult
from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation, OpKind
from repro.kernel.serializations import forced_write_order
from repro.orders.writes_before import unambiguous_reads_from

__all__ = ["check_axiomatic_tso", "is_axiomatic_tso"]

_MODEL = "TSO-axiomatic"


def check_axiomatic_tso(history: SystemHistory) -> CheckResult:
    """Decide membership in hardware (axiomatic, store-forwarding) TSO.

    Requires distinct write values and no RMW operations — the same
    simplification the paper makes ("we omit [swaps] in this discussion",
    Section 3.2).
    """
    if any(op.kind is OpKind.RMW for op in history.operations):
        raise CheckerError(f"{_MODEL}: RMW operations are not supported")
    rf = unambiguous_reads_from(history)
    if rf is None:
        raise CheckerError(f"{_MODEL}: requires an unambiguous reads-from map")

    # Forwarded (same-processor) sources impose no cross-store constraint
    # beyond the FIFO chains forced_write_order already includes.
    forced = forced_write_order(history, rf)
    if not forced.is_acyclic():
        return CheckResult(
            _MODEL, False, reason="reads-from forces a cyclic store order"
        )

    explored = 0
    for order in forced.all_topological_sorts():
        explored += 1
        if all(_loads_placeable(history, proc, order) for proc in history.procs):
            return CheckResult(_MODEL, True, explored=explored)
    return CheckResult(
        _MODEL,
        False,
        reason="no store order satisfies the Value axiom for all loads",
        explored=explored,
    )


def is_axiomatic_tso(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_axiomatic_tso`."""
    return check_axiomatic_tso(history).allowed


def _loads_placeable(
    history: SystemHistory, proc: Any, order: list[Operation]
) -> bool:
    """Greedy earliest placement of ``proc``'s loads against a store order.

    Slot ``s`` means the load performs after the first ``s`` stores have
    committed to memory.  Constraints: slots are nondecreasing in program
    order (LoadOp); a store program-ordered after a load commits after the
    load performs; the Value axiom with forwarding decides feasibility.
    """
    wpos = {w.uid: i for i, w in enumerate(order)}
    nstores = len(order)
    prefix: dict[str, list[int]] = {}
    for loc in history.locations:
        vals = [INITIAL_VALUE]
        for w in order:
            vals.append(w.value_written if w.location == loc else vals[-1])
        prefix[loc] = vals

    own_ops = history.ops_of(proc)
    current_min = 0
    for r in own_ops:
        if not r.is_pure_read:
            continue
        lo = current_min
        later_stores = [w for w in own_ops[r.index + 1:] if w.is_write]
        hi = min((wpos[w.uid] for w in later_stores), default=nstores)
        if lo > hi:
            return False
        own_prior = None
        for w in own_ops[: r.index]:
            if w.is_write and w.location == r.location:
                own_prior = w  # latest program-earlier own store to the location
        want = r.value_read
        vals = prefix[r.location]
        slot = None
        for s in range(lo, hi + 1):
            if own_prior is not None and wpos[own_prior.uid] >= s:
                value_here = own_prior.value_written  # forwarded from the buffer
            else:
                value_here = vals[s]
            if value_here == want:
                slot = s
                break
        if slot is None:
            return False
        current_min = slot
    return True
