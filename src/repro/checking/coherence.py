"""Plain coherence checker (paper Sections 2 and 3.3).

Coherence alone: views contain own operations plus all remote writes,
respect the partial program order, and all views agree on the order of
writes *to each location* — the mutual-consistency example of Section 2.
Every model in the paper except PRAM and causal memory implies it.
"""

from __future__ import annotations

from repro.checking.result import CheckResult
from repro.checking.solver import SearchBudget, check_with_spec
from repro.core.history import SystemHistory
from repro.spec.registry import COHERENCE_SPEC

__all__ = ["check_coherence", "is_coherent"]


def check_coherence(
    history: SystemHistory, budget: SearchBudget | None = None
) -> CheckResult:
    """Decide coherence, with witness views on success."""
    return check_with_spec(COHERENCE_SPEC, history, budget)


def is_coherent(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_coherence`."""
    return check_coherence(history).allowed
