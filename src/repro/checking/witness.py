"""Independent validation of witness views.

A positive checker verdict carries views; this module re-verifies them
against the spec *without* reusing the solver's machinery — contents,
legality, ordering, and mutual consistency are each checked directly from
the definitions.  The property suite runs every witness produced over the
exhaustive 2×2 space through this validator, so a solver bug that
fabricates invalid witnesses cannot hide behind its own verdict.

For release consistency the labeled *discipline* (SC/PC of the labeled
subsequences) is validated in its mutual-agreement form — all views must
order common labeled operations identically and admit a common extension;
the full discipline re-check would be the solver again.  Bracketing and
coherence are validated exactly.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.core.view import View, first_legality_violation
from repro.orders.relation import Relation
from repro.orders.writes_before import unambiguous_reads_from
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import MutualConsistency

__all__ = ["validate_witness"]


def validate_witness(
    spec: MemoryModelSpec,
    history: SystemHistory,
    views: Mapping[Any, View],
) -> list[str]:
    """All the ways ``views`` fail to witness ``history ∈ spec`` (empty = valid).

    Requires an unambiguous reads-from attribution (the litmus
    discipline); raises :class:`CheckerError` otherwise, since the
    ordering relations are then not functions of the history.
    """
    problems: list[str] = []
    rf = unambiguous_reads_from(history)
    if rf is None:
        raise CheckerError("witness validation requires unambiguous reads-from")

    # -- contents and legality --------------------------------------------------
    for proc in history.procs:
        if proc not in views:
            problems.append(f"missing view for {proc!r}")
            continue
        view = views[proc]
        expected = {op.uid for op in spec.operation_set.view_contents(history, proc)}
        actual = {op.uid for op in view}
        if actual != expected:
            problems.append(
                f"view for {proc!r} has wrong contents: "
                f"missing {sorted(expected - actual)}, extra {sorted(actual - expected)}"
            )
        violation = first_legality_violation(list(view))
        if violation is not None:
            pos, op, want = violation
            problems.append(
                f"view for {proc!r} illegal at {pos}: {op} should read {want}"
            )

    if problems:
        return problems  # structural problems make the rest meaningless

    # -- mutual consistency -------------------------------------------------------
    mc = spec.mutual_consistency
    procs = list(history.procs)
    if mc is MutualConsistency.IDENTICAL:
        first = [op.uid for op in views[procs[0]]]
        for proc in procs[1:]:
            if [op.uid for op in views[proc]] != first:
                problems.append(f"views differ ({proc!r} vs {procs[0]!r}) under IDENTICAL")
    elif mc is MutualConsistency.TOTAL_WRITE_ORDER:
        first = [op.uid for op in views[procs[0]].writes_only]
        for proc in procs[1:]:
            if [op.uid for op in views[proc].writes_only] != first:
                problems.append(f"write orders disagree at {proc!r}")
    elif mc is MutualConsistency.COHERENCE:
        for loc in history.locations:
            first = [op.uid for op in views[procs[0]].writes_to(loc)]
            for proc in procs[1:]:
                if [op.uid for op in views[proc].writes_to(loc)] != first:
                    problems.append(f"coherence order for {loc!r} disagrees at {proc!r}")
    elif mc is MutualConsistency.LABELED_TOTAL_ORDER:
        _check_labeled_agreement(history, views, problems)

    # -- ordering -------------------------------------------------------------------
    coherence = _coherence_from_views(history, views)
    try:
        ordering = spec.ordering.build(history, rf, coherence)
    except ValueError as exc:
        problems.append(f"cannot build ordering relation: {exc}")
        return problems
    for proc in procs:
        view = views[proc]
        for a, b in ordering.pairs():
            if spec.ordering_own_view_only and a.proc != proc:
                continue
            if spec.ordering_own_view_only and b.proc != proc:
                continue
            if a in view and b in view and not view.orders(a, b):
                problems.append(
                    f"view for {proc!r} violates {spec.ordering.name}: {a} -> {b}"
                )

    # -- release consistency extras ----------------------------------------------------
    if spec.bracketing:
        _check_bracketing(history, views, rf, problems)
    if spec.labeled_discipline is not None:
        _check_labeled_agreement(history, views, problems)

    return problems


def _coherence_from_views(
    history: SystemHistory, views: Mapping[Any, View]
) -> dict[str, tuple[Operation, ...]]:
    """Per-location write order as the first view presents it."""
    first = views[history.procs[0]]
    return {loc: first.writes_to(loc) for loc in history.locations}


def _check_labeled_agreement(
    history: SystemHistory, views: Mapping[Any, View], problems: list[str]
) -> None:
    """Views must order common labeled operations identically, and the
    union of their labeled orders must admit a common extension."""
    labeled = history.labeled_ops
    union: Relation[Operation] = Relation(labeled)
    positions: dict[Any, dict[tuple, int]] = {}
    for proc, view in views.items():
        pos = {op.uid: i for i, op in enumerate(view.labeled_only)}
        positions[proc] = pos
    for i, a in enumerate(labeled):
        for b in labeled[i + 1:]:
            orders = set()
            for proc, pos in positions.items():
                if a.uid in pos and b.uid in pos:
                    orders.add(pos[a.uid] < pos[b.uid])
            if len(orders) > 1:
                problems.append(f"views disagree on labeled order of {a} vs {b}")
            elif orders == {True}:
                union.add(a, b)
            elif orders == {False}:
                union.add(b, a)
    if not union.is_acyclic():
        problems.append("labeled orders have no common extension (cyclic)")


def _check_bracketing(
    history: SystemHistory,
    views: Mapping[Any, View],
    rf,
    problems: list[str],
) -> None:
    for proc in history.procs:
        ops = history.ops_of(proc)
        for op in ops:
            if op.labeled:
                continue
            for earlier in ops[: op.index]:
                if earlier.is_acquire:
                    src = rf.get(earlier)
                    if src is None:
                        continue
                    for vproc, view in views.items():
                        if src in view and op in view and not view.orders(src, op):
                            problems.append(
                                f"bracketing violated in {vproc!r}'s view: "
                                f"{src} (acquired) not before {op}"
                            )
            for later in ops[op.index + 1:]:
                if later.is_release:
                    for vproc, view in views.items():
                        if op in view and later in view and not view.orders(op, later):
                            problems.append(
                                f"bracketing violated in {vproc!r}'s view: "
                                f"{op} not before release {later}"
                            )
