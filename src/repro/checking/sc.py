"""Direct sequential-consistency checker (paper Section 3.1).

SC admits a history exactly when one legal total order over *all*
operations respects every processor's program order; every processor view
is that common order.  This is the classic formulation of Lamport (1979),
and in the paper's framework the instance ``δ_p = a``, identical views,
ordering ``->po``.

Implemented directly on the legal-extension kernel (no serialization
enumeration is needed) — this also serves as an independent cross-check of
the generic solver in the test suite.
"""

from __future__ import annotations

from repro.checking.extension import find_legal_extension
from repro.checking.result import CheckResult
from repro.core.history import SystemHistory
from repro.core.view import View
from repro.orders.program_order import po_relation

__all__ = ["check_sc", "is_sequentially_consistent"]


def check_sc(history: SystemHistory) -> CheckResult:
    """Decide SC membership; the witness is the common legal total order."""
    order = find_legal_extension(history.operations, po_relation(history))
    if order is None:
        return CheckResult(
            "SC",
            False,
            reason="no legal total order extends program order",
        )
    views = {
        proc: View(proc, order, history, validate=False) for proc in history.procs
    }
    return CheckResult("SC", True, views=views, explored=1)


def is_sequentially_consistent(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_sc`."""
    return check_sc(history).allowed
