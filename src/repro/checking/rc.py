"""Release-consistency checkers: ``RC_sc`` and ``RC_pc`` (paper Section 3.4).

Both models distinguish *labeled* synchronization operations from ordinary
ones.  Views contain own operations plus all remote writes; all writes are
coherent; local operations obey ``->ppo``; ordinary operations are
bracketed by the acquires/releases around them; and the labeled
subsequences of the views are sequentially consistent (``RC_sc``) or
processor consistent (``RC_pc``).

The framework assumption, matching the paper's Bakery setup (Section 5):
synchronization locations are accessed only by labeled operations, and
ordinary shared locations only by ordinary operations.
"""

from __future__ import annotations

from repro.checking.result import CheckResult
from repro.checking.solver import SearchBudget, check_with_spec
from repro.core.history import SystemHistory
from repro.spec.registry import RC_PC_SPEC, RC_SC_SPEC

__all__ = ["check_rc_sc", "is_rc_sc", "check_rc_pc", "is_rc_pc"]


def check_rc_sc(
    history: SystemHistory, budget: SearchBudget | None = None
) -> CheckResult:
    """Decide ``RC_sc`` membership, with witness views on success."""
    return check_with_spec(RC_SC_SPEC, history, budget)


def is_rc_sc(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_rc_sc`."""
    return check_rc_sc(history).allowed


def check_rc_pc(
    history: SystemHistory, budget: SearchBudget | None = None
) -> CheckResult:
    """Decide ``RC_pc`` membership, with witness views on success."""
    return check_with_spec(RC_PC_SPEC, history, budget)


def is_rc_pc(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_rc_pc`."""
    return check_rc_pc(history).allowed
