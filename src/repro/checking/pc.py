"""Processor-consistency checkers (paper Section 3.3).

Two flavors:

* :func:`check_pc` — PC as defined by Gharachorloo et al. for DASH
  (the paper's primary PC): coherence plus the semi-causality order
  ``(->ppo ∪ ->rwb ∪ ->rrb)+`` inside each view.
* :func:`check_pc_goodman` — Goodman's original processor consistency
  (per Ahamad et al. [2], "The power of processor consistency"): every
  processor has a view of its own operations plus all writes that respects
  *program order* and agrees per-location on write order (i.e. PRAM +
  coherence).  The paper remarks the two definitions are distinct and
  incomparable; the lattice experiment reproduces that.
"""

from __future__ import annotations

from repro.checking.result import CheckResult
from repro.checking.solver import SearchBudget, check_with_spec
from repro.core.history import SystemHistory
from repro.spec.registry import COHERENT_PRAM_SPEC, PC_SPEC

__all__ = ["check_pc", "is_pc", "check_pc_goodman", "is_pc_goodman"]


def check_pc(history: SystemHistory, budget: SearchBudget | None = None) -> CheckResult:
    """Decide DASH processor consistency, with witness views on success."""
    return check_with_spec(PC_SPEC, history, budget)


def is_pc(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_pc`."""
    return check_pc(history).allowed


def check_pc_goodman(
    history: SystemHistory, budget: SearchBudget | None = None
) -> CheckResult:
    """Decide Goodman-style processor consistency (PRAM + coherence)."""
    result = check_with_spec(COHERENT_PRAM_SPEC, history, budget)
    return CheckResult(
        "PC-G", result.allowed, views=result.views,
        reason=result.reason, explored=result.explored,
    )


def is_pc_goodman(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_pc_goodman`."""
    return check_pc_goodman(history).allowed
