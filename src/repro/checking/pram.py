"""Independent PRAM checker (paper Section 3.5).

PRAM (Lipton & Sandberg): views contain own operations plus remote writes,
there is *no* mutual consistency requirement, and views respect only
program order.  Operationally: replicated memories with reliable FIFO
point-to-point update channels.

Because the only ordering constraint is per-processor program order, a view
for processor ``p`` is exactly a legal *merge* of ``1 + (n-1)`` streams:
``p``'s own operation sequence and each remote processor's write sequence.
This checker searches merges directly with memoization on (per-stream
positions, memory state) — an implementation independent of the generic
solver, used to cross-validate it.
"""

from __future__ import annotations

from typing import Any

from repro.checking.result import CheckResult
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation
from repro.core.view import View

__all__ = ["check_pram", "is_pram"]


def check_pram(history: SystemHistory) -> CheckResult:
    """Decide PRAM membership; views are constructed per processor."""
    views: dict[Any, View] = {}
    for proc in history.procs:
        streams: list[tuple[Operation, ...]] = [history.ops_of(proc)]
        streams.extend(
            tuple(op for op in history.ops_of(q) if op.is_write)
            for q in history.procs
            if q != proc
        )
        merged = _legal_merge(tuple(streams))
        if merged is None:
            return CheckResult(
                "PRAM",
                False,
                reason=f"no legal program-ordered view exists for {proc!r}",
            )
        views[proc] = View(proc, merged, history, validate=False)
    return CheckResult("PRAM", True, views=views, explored=1)


def is_pram(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_pram`."""
    return check_pram(history).allowed


def _legal_merge(
    streams: tuple[tuple[Operation, ...], ...]
) -> list[Operation] | None:
    """A legal interleaving consuming each stream in order, or ``None``."""
    k = len(streams)
    lens = tuple(len(s) for s in streams)
    failed: set[tuple[tuple[int, ...], tuple[tuple[str, int], ...]]] = set()
    out: list[Operation] = []

    def dfs(positions: tuple[int, ...], state: dict[str, int]) -> bool:
        if positions == lens:
            return True
        key = (positions, tuple(sorted(state.items())))
        if key in failed:
            return False
        for i in range(k):
            pos = positions[i]
            if pos >= lens[i]:
                continue
            op = streams[i][pos]
            if op.is_read and state.get(op.location, INITIAL_VALUE) != op.value_read:
                continue
            undo = state.get(op.location)
            if op.is_write:
                state[op.location] = op.value_written
            out.append(op)
            next_positions = positions[:i] + (pos + 1,) + positions[i + 1:]
            if dfs(next_positions, state):
                return True
            out.pop()
            if op.is_write:
                if undo is None:
                    del state[op.location]
                else:
                    state[op.location] = undo
        failed.add(key)
        return False

    if dfs(tuple([0] * k), {}):
        return out
    return None
