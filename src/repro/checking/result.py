"""Checker verdicts with witnesses.

The result types moved to :mod:`repro.kernel.results` so the kernel, the
fast checkers and the machines all report through one shape; this module
re-exports them under the historical import path.  A positive verdict
carries the witness processor views (and, from kernel-backed strategies, a
full :class:`~repro.kernel.results.Witness`); a negative verdict carries a
human-readable reason and optionally a
:class:`~repro.kernel.results.Counterexample`.
"""

from __future__ import annotations

from repro.kernel.results import CheckResult, Counterexample, Witness

__all__ = ["CheckResult", "Witness", "Counterexample"]
