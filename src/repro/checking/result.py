"""Checker verdicts with witnesses.

A positive verdict carries the witness processor views — the paper's form
of evidence that a history is allowed (Sections 3.2, 3.3 exhibit exactly
such views).  A negative verdict carries a human-readable reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.view import View

__all__ = ["CheckResult"]


@dataclass(frozen=True)
class CheckResult:
    """The outcome of asking whether a history is allowed by a model.

    Attributes
    ----------
    model:
        Name of the memory model consulted.
    allowed:
        The verdict.
    views:
        For positive verdicts: one witness view per processor (for SC these
        are all the same sequence).  Empty for negative verdicts.
    reason:
        For negative verdicts: why no views exist; for positive ones,
        optionally which choice (reads-from, write order) succeeded.
    explored:
        Number of candidate (reads-from × serialization) combinations the
        checker examined; a cheap effort metric used by the benchmarks.
    """

    model: str
    allowed: bool
    views: Mapping[Any, View] = field(default_factory=dict)
    reason: str = ""
    explored: int = 0

    def __bool__(self) -> bool:
        return self.allowed

    def __str__(self) -> str:
        verdict = "allowed" if self.allowed else "NOT allowed"
        out = [f"{self.model}: {verdict}" + (f" ({self.reason})" if self.reason else "")]
        for proc in sorted(self.views, key=str):
            out.append(f"  {self.views[proc]!r}")
        return "\n".join(out)
