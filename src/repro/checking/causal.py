"""Causal memory checker (paper Section 3.5).

Causal memory strengthens PRAM by requiring views to respect the causal
order ``->co = (->po ∪ ->wb)+`` rather than just program order.  There is
still no mutual consistency requirement, so processors may disagree on the
order of causally unrelated writes.

This wrapper delegates to the generic solver with the causal spec; the
separation exists so client code reads ``check_causal(h)`` and so the
cross-validation tests can target the model by name.
"""

from __future__ import annotations

from repro.checking.result import CheckResult
from repro.checking.solver import SearchBudget, check_with_spec
from repro.core.history import SystemHistory
from repro.spec.registry import CAUSAL_SPEC

__all__ = ["check_causal", "is_causal"]


def check_causal(
    history: SystemHistory, budget: SearchBudget | None = None
) -> CheckResult:
    """Decide causal-memory membership, with witness views on success."""
    return check_with_spec(CAUSAL_SPEC, history, budget)


def is_causal(history: SystemHistory) -> bool:
    """Convenience boolean form of :func:`check_causal`."""
    return check_causal(history).allowed
