"""The checker registry: one :class:`MemoryModel` per memory in the paper.

Each model pairs a declarative spec with the preferred decision procedure
(a fast path where one exists, the generic solver otherwise).  ``check``
and ``classify`` are the top-level entry points most client code uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.checking.axiomatic_tso import check_axiomatic_tso
from repro.checking.causal import check_causal
from repro.checking.coherence import check_coherence
from repro.checking.pc import check_pc, check_pc_goodman
from repro.checking.pram import check_pram
from repro.checking.rc import check_rc_pc, check_rc_sc
from repro.checking.result import CheckResult
from repro.checking.sc import check_sc
from repro.checking.solver import SearchBudget, check_with_spec
from repro.checking.tso import check_tso
from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.registry import (
    CAUSAL_SPEC,
    HYBRID_SPEC,
    COHERENCE_SPEC,
    COHERENT_CAUSAL_SPEC,
    COHERENT_PRAM_SPEC,
    MR_SPEC,
    MW_SPEC,
    PARTITION2_SPEC,
    PARTITION3_SPEC,
    PC_SPEC,
    PRAM_SPEC,
    RC_PC_SPEC,
    RC_SC_SPEC,
    RYW_SPEC,
    SC_SPEC,
    SESSION_CAUSAL_SPEC,
    SLOW_SPEC,
    TSO_SPEC,
    WFR_SPEC,
)

__all__ = ["MemoryModel", "MODELS", "PAPER_MODELS", "check", "classify", "model_names"]


@dataclass(frozen=True)
class MemoryModel:
    """A named memory model bound to its decision procedure.

    Attributes
    ----------
    name:
        Canonical model name (matches the spec's name where one exists).
    spec:
        The declarative three-parameter description, or ``None`` for the
        axiomatic TSO reference model which lives outside the framework.
    checker:
        The preferred decision procedure.
    """

    name: str
    spec: MemoryModelSpec | None
    checker: Callable[[SystemHistory], CheckResult]

    def check(self, history: SystemHistory) -> CheckResult:
        """Decide whether ``history`` is allowed by this model."""
        return self.checker(history)

    def allows(self, history: SystemHistory) -> bool:
        """Boolean form of :meth:`check`."""
        return self.checker(history).allowed

    def check_generic(
        self, history: SystemHistory, budget: SearchBudget | None = None
    ) -> CheckResult:
        """Decide via the generic spec-driven solver (for cross-validation).

        Raises
        ------
        CheckerError
            For models with no framework spec (axiomatic TSO).
        """
        if self.spec is None:
            raise CheckerError(f"{self.name} has no framework specification")
        return check_with_spec(self.spec, history, budget)


def _wrap(fn: Callable[[SystemHistory], CheckResult]) -> Callable[[SystemHistory], CheckResult]:
    return fn


MODELS: dict[str, MemoryModel] = {
    m.name: m
    for m in (
        MemoryModel("SC", SC_SPEC, _wrap(check_sc)),
        MemoryModel("TSO", TSO_SPEC, _wrap(check_tso)),
        MemoryModel("PC", PC_SPEC, _wrap(check_pc)),
        MemoryModel("PRAM", PRAM_SPEC, _wrap(check_pram)),
        MemoryModel("Causal", CAUSAL_SPEC, _wrap(check_causal)),
        MemoryModel("Coherence", COHERENCE_SPEC, _wrap(check_coherence)),
        MemoryModel("RC_sc", RC_SC_SPEC, _wrap(check_rc_sc)),
        MemoryModel("RC_pc", RC_PC_SPEC, _wrap(check_rc_pc)),
        MemoryModel("PC-G", COHERENT_PRAM_SPEC, _wrap(check_pc_goodman)),
        MemoryModel(
            "CoherentCausal",
            COHERENT_CAUSAL_SPEC,
            lambda h: check_with_spec(COHERENT_CAUSAL_SPEC, h),
        ),
        MemoryModel(
            "Hybrid",
            HYBRID_SPEC,
            lambda h: check_with_spec(HYBRID_SPEC, h),
        ),
        MemoryModel(
            "Slow",
            SLOW_SPEC,
            lambda h: check_with_spec(SLOW_SPEC, h),
        ),
        MemoryModel("TSO-axiomatic", None, _wrap(check_axiomatic_tso)),
    )
}

# The session-guarantee and Partition Consistency families have no fast
# paths; the spec-driven kernel is their decision procedure.
MODELS.update(
    {
        spec.name: MemoryModel(
            spec.name,
            spec,
            # Bind per iteration: a bare lambda would close over the loop
            # variable and every entry would check the last spec.
            (lambda s: lambda h: check_with_spec(s, h))(spec),
        )
        for spec in (
            RYW_SPEC,
            MR_SPEC,
            MW_SPEC,
            WFR_SPEC,
            SESSION_CAUSAL_SPEC,
            PARTITION2_SPEC,
            PARTITION3_SPEC,
        )
    }
)

#: The memories Figure 5 relates (the paper's core comparison set).
PAPER_MODELS: tuple[str, ...] = ("SC", "TSO", "PC", "Causal", "PRAM")


def model_names() -> tuple[str, ...]:
    """Names of every registered model."""
    return tuple(MODELS)


def check(history: SystemHistory, model: str) -> CheckResult:
    """Decide whether ``history`` is allowed by the named model.

    Raises
    ------
    CheckerError
        If the model name is unknown.
    """
    try:
        return MODELS[model].check(history)
    except KeyError:
        known = ", ".join(MODELS)
        raise CheckerError(f"unknown model {model!r}; known: {known}") from None


def classify(
    history: SystemHistory, models: tuple[str, ...] | None = None
) -> dict[str, bool]:
    """Verdicts of several models on one history (default: Figure 5's set)."""
    names = models if models is not None else PAPER_MODELS
    return {name: check(history, name).allowed for name in names}
