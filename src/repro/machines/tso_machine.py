"""Store-buffer machine: the SPARC operational model of TSO (Section 3.2).

The paper's description, implemented verbatim: processors have local FIFO
buffers in front of a single-ported shared memory.  A write appends to the
issuing processor's buffer; buffered writes drain to memory in FIFO order
(one drain = one internal event); a read returns the most recently written
value from the local buffer when one exists, otherwise the memory value.

Note on fidelity: buffer forwarding (a processor reading its own buffered
write) is part of this operational description, yet the paper's *view*
characterization of TSO — via ``->ppo``'s same-location write→read edge and
mutual write-order consistency — rejects some forwarded outcomes (e.g. the
``sb-fwd`` litmus test).  The machine therefore witnesses one side of the
E8 equivalence experiment: its traces always satisfy *axiomatic* TSO, but
not always the paper's TSO.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.core.errors import MachineError
from repro.core.operation import INITIAL_VALUE
from repro.machines.base import EventKey, MemoryMachine

__all__ = ["TSOMachine"]


class TSOMachine(MemoryMachine):
    """Per-processor FIFO store buffers over a single shared memory.

    Parameters
    ----------
    procs:
        Processor identifiers.
    forwarding:
        ``True`` (default): a read returns the youngest buffered store to
        its location — SPARC hardware behavior, matching the axiomatic
        model.  ``False``: a read of a location the processor has
        buffered stores for first drains the buffer up to and including
        the youngest such store, then reads memory — the variant whose
        traces always satisfy the *paper's* view characterization of TSO
        (its ``->ppo`` orders a write before any program-later read of
        the same location, which forwarding breaks; experiment E8).
    """

    def __init__(self, procs: Sequence[Any], *, forwarding: bool = True) -> None:
        super().__init__(procs)
        self.forwarding = forwarding
        self.name = "TSO-machine" if forwarding else "TSO-machine(no-fwd)"
        self._memory: dict[str, int] = {}
        self._buffers: dict[Any, deque[tuple[str, int]]] = {
            p: deque() for p in self.procs
        }

    # -- value semantics -----------------------------------------------------------

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        if self.forwarding:
            for loc, value in reversed(self._buffers[proc]):
                if loc == location:
                    return value  # forwarded from the youngest buffered store
        elif any(loc == location for loc, _ in self._buffers[proc]):
            # No forwarding: the read stalls until its own store to this
            # location is globally visible, modeled as a synchronous
            # drain through that store.
            buf = self._buffers[proc]
            while buf:
                loc, value = buf.popleft()
                self._memory[loc] = value
                if loc == location:
                    if any(l == location for l, _ in buf):
                        continue  # a younger store to it is still queued
                    break
        return self._memory.get(location, INITIAL_VALUE)

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        self._buffers[proc].append((location, value))

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        # SPARC swap semantics: the buffer drains first, then the swap
        # executes atomically against memory (load and store adjacent in
        # the memory order).
        self._drain_proc(proc)
        old = self._memory.get(location, INITIAL_VALUE)
        self._memory[location] = value
        return old

    # -- internal events ----------------------------------------------------------

    def internal_events(self) -> list[EventKey]:
        return [("drain", p) for p in self.procs if self._buffers[p]]

    def fire(self, key: EventKey) -> None:
        match key:
            case ("drain", proc) if self._buffers.get(proc):
                location, value = self._buffers[proc].popleft()
                self._memory[location] = value
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")

    # -- introspection --------------------------------------------------------------

    def buffered(self, proc: Any) -> tuple[tuple[str, int], ...]:
        """The pending stores of ``proc``, oldest first."""
        return tuple(self._buffers[proc])

    def _drain_proc(self, proc: Any) -> None:
        buf = self._buffers[proc]
        while buf:
            location, value = buf.popleft()
            self._memory[location] = value
