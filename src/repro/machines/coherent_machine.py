"""Coherent-only machine: per-location serialization, unordered delivery.

The weakest machine with any mutual consistency: writes are serialized per
location (coherence) but updates travel to each replica independently and
may be applied in *any* order across locations and sources — there are no
FIFO channels.  Last-writer-wins by location serial keeps replicas
coherent.  Its traces satisfy plain coherence (per-location SC) but none
of the cross-location orderings of PRAM or PC.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.errors import MachineError
from repro.core.operation import INITIAL_VALUE
from repro.machines.base import EventKey, MemoryMachine

__all__ = ["CoherentMachine"]


class CoherentMachine(MemoryMachine):
    """Replicated memory, per-location write serialization, no channel order."""

    name = "Coherent-machine"

    def __init__(self, procs: Sequence[Any]) -> None:
        super().__init__(procs)
        self._replicas: dict[Any, dict[str, tuple[int, int]]] = {
            p: {} for p in self.procs
        }
        self._loc_serial: dict[str, int] = {}
        self._latest: dict[str, int] = {}  # value of the max-serial write
        # In-flight updates per destination, delivered in any order:
        # update id -> (location, value, serial).
        self._pending: dict[Any, dict[int, tuple[str, int, int]]] = {
            p: {} for p in self.procs
        }
        self._next_update_id = 0

    # -- value semantics -----------------------------------------------------------

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        entry = self._replicas[proc].get(location)
        return entry[0] if entry is not None else INITIAL_VALUE

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        serial = self._loc_serial.get(location, 0) + 1
        self._loc_serial[location] = serial
        self._latest[location] = value
        self._apply(proc, location, value, serial)
        for dst in self.procs:
            if dst != proc:
                self._pending[dst][self._next_update_id] = (location, value, serial)
                self._next_update_id += 1

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        # Atomic at the location's serialization point: observe the
        # globally newest value, then serialize the store right after it.
        old = self._latest.get(location, INITIAL_VALUE)
        self._do_write(proc, location, value, labeled)
        return old

    def _apply(self, proc: Any, location: str, value: int, serial: int) -> None:
        current = self._replicas[proc].get(location)
        if current is None or serial > current[1]:
            self._replicas[proc][location] = (value, serial)

    # -- internal events ----------------------------------------------------------

    def internal_events(self) -> list[EventKey]:
        return [
            ("apply", dst, uid)
            for dst, pending in self._pending.items()
            for uid in pending
        ]

    def fire(self, key: EventKey) -> None:
        match key:
            case ("apply", dst, uid) if uid in self._pending.get(dst, {}):
                location, value, serial = self._pending[dst].pop(uid)
                self._apply(dst, location, value, serial)
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")
