"""Operational memory simulators (the hardware-substitute substrate)."""

from repro.machines.base import EventKey, MemoryMachine
from repro.machines.causal_machine import CausalMachine
from repro.machines.coherent_machine import CoherentMachine
from repro.machines.pc_machine import PCMachine
from repro.machines.pram_machine import PRAMMachine
from repro.machines.rc_machine import RCMachine
from repro.machines.sc_machine import SCMachine
from repro.machines.tso_machine import TSOMachine

__all__ = [
    "CausalMachine",
    "CoherentMachine",
    "EventKey",
    "MemoryMachine",
    "PCMachine",
    "PRAMMachine",
    "RCMachine",
    "SCMachine",
    "TSOMachine",
]

#: Machine classes paired with the model every trace must satisfy, used by
#: the soundness property tests (operational ⊆ declarative).
MACHINE_MODEL_PAIRS: tuple[tuple[type[MemoryMachine], str], ...] = (
    (SCMachine, "SC"),
    (TSOMachine, "TSO-axiomatic"),  # forwarding: see tso_machine docstring
    (PCMachine, "PC"),
    (PRAMMachine, "PRAM"),
    (CausalMachine, "Causal"),
    (CoherentMachine, "Coherence"),
)

__all__.append("MACHINE_MODEL_PAIRS")
