"""Atomic shared-memory machine: the operational model behind SC.

One memory, one port: every operation executes instantly and atomically in
issue order.  Every trace of this machine is sequentially consistent (the
issue order itself is the common legal view), which the property tests
verify against :func:`repro.checking.check_sc`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.operation import INITIAL_VALUE
from repro.machines.base import MemoryMachine

__all__ = ["SCMachine"]


class SCMachine(MemoryMachine):
    """Single-copy atomic memory; the strongest (and simplest) machine."""

    name = "SC-machine"

    def __init__(self, procs: Sequence[Any]) -> None:
        super().__init__(procs)
        self._memory: dict[str, int] = {}

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        return self._memory.get(location, INITIAL_VALUE)

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        self._memory[location] = value

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        old = self._memory.get(location, INITIAL_VALUE)
        self._memory[location] = value
        return old
