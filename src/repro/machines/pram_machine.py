"""Replicated-memory machine with FIFO update channels: PRAM (Section 3.5).

The paper's operational definition of Lipton & Sandberg's pipelined RAM,
implemented verbatim: every processor holds a complete copy of memory;
reads return the local value; writes update the local copy and broadcast
the update on reliable, point-to-point ordered channels; updates are
applied asynchronously and atomically.  One channel delivery is one
internal event, so a scheduler can reorder deliveries from *different*
sources arbitrarily while each channel stays FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.core.errors import MachineError
from repro.core.operation import INITIAL_VALUE
from repro.machines.base import EventKey, MemoryMachine

__all__ = ["PRAMMachine"]


class PRAMMachine(MemoryMachine):
    """Full replication, local reads, FIFO-per-channel asynchronous updates."""

    name = "PRAM-machine"

    def __init__(self, procs: Sequence[Any]) -> None:
        super().__init__(procs)
        self._replicas: dict[Any, dict[str, int]] = {p: {} for p in self.procs}
        self._latest: dict[str, int] = {}  # newest issued value per location
        # _channels[(src, dst)] — updates in flight from src to dst, FIFO.
        self._channels: dict[tuple[Any, Any], deque[tuple[str, int]]] = {
            (src, dst): deque()
            for src in self.procs
            for dst in self.procs
            if src != dst
        }

    # -- value semantics -----------------------------------------------------------

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        return self._replicas[proc].get(location, INITIAL_VALUE)

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        self._replicas[proc][location] = value
        self._latest[location] = value
        for dst in self.procs:
            if dst != proc:
                self._channels[(proc, dst)].append((location, value))

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        # Atomic read-modify-write: per the paper's footnote 4 these are
        # handled like writes visible to everyone; operationally the
        # coherence hardware serializes them, so the read half observes
        # the globally newest issue (not the possibly stale replica).
        old = self._latest.get(location, INITIAL_VALUE)
        self._do_write(proc, location, value, labeled)
        return old

    # -- internal events ----------------------------------------------------------

    def internal_events(self) -> list[EventKey]:
        return [
            ("deliver", src, dst)
            for (src, dst), chan in self._channels.items()
            if chan
        ]

    def fire(self, key: EventKey) -> None:
        match key:
            case ("deliver", src, dst) if self._channels.get((src, dst)):
                location, value = self._channels[(src, dst)].popleft()
                self._replicas[dst][location] = value
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")

    # -- introspection --------------------------------------------------------------

    def in_flight(self, src: Any, dst: Any) -> tuple[tuple[str, int], ...]:
        """Updates queued from ``src`` to ``dst``, oldest first."""
        return tuple(self._channels[(src, dst)])
