"""Vector-clock replicated machine: causal memory (Section 3.5).

Causal memory strengthens PRAM by delivering updates only when their causal
predecessors have been applied.  We implement the standard causal-broadcast
construction (as in the causal memory paper of Ahamad, Burns, Hutto &
Neiger): each processor keeps a vector clock counting the writes it has
applied per origin; a write is stamped with its origin's vector at issue
time; a replica may apply an update only when it has already applied every
write the update causally depends on.

Reads are local, so read-to-write causality is carried by the issuing
processor's own vector (a processor's vector reflects everything it has
*seen*, hence everything any of its reads could have observed).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.errors import MachineError
from repro.core.operation import INITIAL_VALUE
from repro.machines.base import EventKey, MemoryMachine

__all__ = ["CausalMachine"]


class CausalMachine(MemoryMachine):
    """Replicated memory with causal (vector-clock gated) update delivery."""

    name = "Causal-machine"

    def __init__(self, procs: Sequence[Any]) -> None:
        super().__init__(procs)
        self._replicas: dict[Any, dict[str, int]] = {p: {} for p in self.procs}
        self._latest: dict[str, int] = {}  # newest issued value per location
        self._vectors: dict[Any, dict[Any, int]] = {
            p: {q: 0 for q in self.procs} for p in self.procs
        }
        # Pending updates per destination: (origin, seq, deps, loc, value).
        self._pending: dict[Any, list[tuple[Any, int, dict[Any, int], str, int]]] = {
            p: [] for p in self.procs
        }

    # -- value semantics -----------------------------------------------------------

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        return self._replicas[proc].get(location, INITIAL_VALUE)

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        vec = self._vectors[proc]
        deps = dict(vec)  # everything proc has applied happens-before this write
        vec[proc] += 1
        seq = vec[proc]
        self._replicas[proc][location] = value
        self._latest[location] = value
        for dst in self.procs:
            if dst != proc:
                self._pending[dst].append((proc, seq, deps, location, value))

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        # Atomic at the location's global serialization point (the paper's
        # footnote 4 treats RMWs as writes seen by every processor).
        old = self._latest.get(location, INITIAL_VALUE)
        self._do_write(proc, location, value, labeled)
        return old

    # -- internal events ----------------------------------------------------------

    def _ready(self, dst: Any, entry: tuple[Any, int, dict[Any, int], str, int]) -> bool:
        origin, seq, deps, _, _ = entry
        vec = self._vectors[dst]
        if vec[origin] != seq - 1:
            return False  # origin's earlier writes not yet applied (FIFO)
        return all(vec[q] >= deps[q] for q in self.procs if q != origin)

    def internal_events(self) -> list[EventKey]:
        events: list[EventKey] = []
        for dst in self.procs:
            for entry in self._pending[dst]:
                if self._ready(dst, entry):
                    events.append(("apply", dst, entry[0], entry[1]))
        return events

    def fire(self, key: EventKey) -> None:
        match key:
            case ("apply", dst, origin, seq):
                for i, entry in enumerate(self._pending[dst]):
                    if entry[0] == origin and entry[1] == seq:
                        if not self._ready(dst, entry):
                            raise MachineError(
                                f"{self.name}: update {key!r} is not causally ready"
                            )
                        _, _, _, location, value = entry
                        del self._pending[dst][i]
                        self._replicas[dst][location] = value
                        self._vectors[dst][origin] = seq
                        return
                raise MachineError(f"{self.name}: no pending update {key!r}")
            case _:
                raise MachineError(f"{self.name}: malformed event {key!r}")

    # -- introspection --------------------------------------------------------------

    def vector_of(self, proc: Any) -> dict[Any, int]:
        """A copy of ``proc``'s applied-writes vector clock."""
        return dict(self._vectors[proc])
