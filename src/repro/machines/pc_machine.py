"""DASH-style processor-consistent machine (Section 3.3).

A software stand-in for the DASH cache hierarchy that motivated PC:

* every processor keeps a full replica and reads locally (so a read may
  bypass the processor's own earlier write to a different location — the
  writes are still propagating);
* a write is serialized *per location* by a global sequence counter (the
  directory's ownership order in DASH), applied locally at once, and
  shipped to every other replica on a FIFO channel;
* a replica applies incoming updates in channel (program) order, but an
  update older in its location's serial order than what the replica
  already holds is suppressed — last-writer-wins by location sequence,
  which is exactly coherence.

FIFO channels give the "previous accesses performed first" half of the
paper's two PC conditions; the per-location serial numbers give coherence.
The property suite checks every reachable trace of small programs against
:func:`repro.checking.check_pc`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.core.errors import MachineError
from repro.core.operation import INITIAL_VALUE
from repro.machines.base import EventKey, MemoryMachine

__all__ = ["PCMachine"]


class PCMachine(MemoryMachine):
    """Replicated memory with per-location write serialization + FIFO updates."""

    name = "PC-machine"

    def __init__(self, procs: Sequence[Any]) -> None:
        super().__init__(procs)
        # Replica state: location -> (value, location-serial of that value).
        self._replicas: dict[Any, dict[str, tuple[int, int]]] = {
            p: {} for p in self.procs
        }
        self._loc_serial: dict[str, int] = {}
        self._latest: dict[str, int] = {}  # value of the max-serial write
        self._channels: dict[tuple[Any, Any], deque[tuple[str, int, int]]] = {
            (src, dst): deque()
            for src in self.procs
            for dst in self.procs
            if src != dst
        }

    # -- value semantics -----------------------------------------------------------

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        entry = self._replicas[proc].get(location)
        return entry[0] if entry is not None else INITIAL_VALUE

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        serial = self._loc_serial.get(location, 0) + 1
        self._loc_serial[location] = serial
        self._latest[location] = value
        self._apply(proc, location, value, serial)
        for dst in self.procs:
            if dst != proc:
                self._channels[(proc, dst)].append((location, value, serial))

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        # Atomic at the location's serialization point (the directory in
        # DASH): observe the newest serialized value, store right after it.
        old = self._latest.get(location, INITIAL_VALUE)
        self._do_write(proc, location, value, labeled)
        return old

    def _apply(self, proc: Any, location: str, value: int, serial: int) -> None:
        current = self._replicas[proc].get(location)
        if current is None or serial > current[1]:
            self._replicas[proc][location] = (value, serial)
        # Older serial: suppressed — the replica already holds a
        # coherence-newer value for this location.

    # -- internal events ----------------------------------------------------------

    def internal_events(self) -> list[EventKey]:
        return [
            ("deliver", src, dst)
            for (src, dst), chan in self._channels.items()
            if chan
        ]

    def fire(self, key: EventKey) -> None:
        match key:
            case ("deliver", src, dst) if self._channels.get((src, dst)):
                location, value, serial = self._channels[(src, dst)].popleft()
                self._apply(dst, location, value, serial)
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")

    # -- introspection --------------------------------------------------------------

    def serial_of(self, location: str) -> int:
        """How many writes the location's serial order contains so far."""
        return self._loc_serial.get(location, 0)
