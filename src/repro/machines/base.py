"""Operational memory machines: the systems the paper's models abstract.

The paper defines each memory twice: operationally (store buffers for TSO,
replicated memories with FIFO channels for PRAM, the DASH protocol for PC
and RC) and non-operationally (processor views).  We reproduce the
operational side as simulators so the two directions can be checked against
each other: every trace a machine can produce must be allowed by the
corresponding view-based model.

Hardware substitution note: these machines stand in for the SPARC and DASH
hardware the original memories ran on.  Each machine implements exactly the
paper's operational description; nondeterminism (message delivery, buffer
drains) is externalized through :meth:`MemoryMachine.internal_events` /
:meth:`MemoryMachine.fire` so one scheduler can drive random testing and
bounded exhaustive exploration alike.

Protocol
--------
* ``read/write/rmw`` are invoked synchronously by the program layer; every
  machine completes them immediately against its local state (asynchrony
  lives in the internal events).
* ``internal_events()`` returns the currently enabled internal transitions
  as stable, hashable keys; ``fire(key)`` executes one.
* ``history()`` assembles the recorded operations into a
  :class:`~repro.core.history.SystemHistory` ready for the checkers.
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, Sequence

from repro.core.errors import MachineError
from repro.core.history import ProcessorHistory, SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation, OpKind

__all__ = ["MemoryMachine", "EventKey"]

#: Stable identifier of an enabled internal machine transition.
EventKey = Hashable


class MemoryMachine(abc.ABC):
    """Common machinery for the operational memory simulators.

    Subclasses implement the value semantics (:meth:`_do_read`,
    :meth:`_do_write`, :meth:`_do_rmw`) and the asynchronous transitions;
    this base class records the per-processor operation history.
    """

    #: Human-readable machine name, e.g. ``"TSO-machine"``.
    name: str = "machine"

    def __init__(self, procs: Sequence[Any]) -> None:
        if len(set(procs)) != len(procs):
            raise MachineError(f"duplicate processor ids in {procs!r}")
        self.procs: tuple[Any, ...] = tuple(procs)
        self._ops: dict[Any, list[Operation]] = {p: [] for p in self.procs}

    # -- program-facing API -----------------------------------------------------

    def read(self, proc: Any, location: str, *, labeled: bool = False) -> int:
        """Execute a read by ``proc`` and return the observed value."""
        self._require_proc(proc)
        value = self._do_read(proc, location, labeled)
        self._record(proc, OpKind.READ, location, value, None, labeled)
        return value

    def write(self, proc: Any, location: str, value: int, *, labeled: bool = False) -> None:
        """Execute a write by ``proc``."""
        self._require_proc(proc)
        self._do_write(proc, location, value, labeled)
        self._record(proc, OpKind.WRITE, location, value, None, labeled)

    def rmw(self, proc: Any, location: str, value: int, *, labeled: bool = False) -> int:
        """Atomically read ``location`` and store ``value``; returns old value.

        Models *test-and-set*-style instructions; per the paper's footnote 4
        they are treated as writes for view purposes.
        """
        self._require_proc(proc)
        old = self._do_rmw(proc, location, value, labeled)
        self._record(proc, OpKind.RMW, location, value, old, labeled)
        return old

    # -- scheduler-facing API ----------------------------------------------------

    def internal_events(self) -> list[EventKey]:
        """Keys of the internal transitions currently enabled."""
        return []

    def fire(self, key: EventKey) -> None:
        """Execute the internal transition identified by ``key``.

        Raises
        ------
        MachineError
            If the key does not denote a currently enabled event.
        """
        raise MachineError(f"{self.name} has no internal events (got {key!r})")

    def quiescent(self) -> bool:
        """True when no internal work is pending."""
        return not self.internal_events()

    def drain(self, max_steps: int = 100_000) -> None:
        """Fire enabled events (first-enabled order) until quiescent.

        Deterministic; schedulers wanting nondeterministic drains should
        drive :meth:`fire` themselves.
        """
        steps = 0
        while True:
            events = self.internal_events()
            if not events:
                return
            self.fire(events[0])
            steps += 1
            if steps > max_steps:
                raise MachineError(f"{self.name} failed to quiesce in {max_steps} steps")

    # -- results -------------------------------------------------------------------

    def history(self) -> SystemHistory:
        """The system execution history recorded so far."""
        return SystemHistory(
            ProcessorHistory(p, list(self._ops[p])) for p in self.procs
        )

    def operation_count(self) -> int:
        """Total number of operations recorded."""
        return sum(len(ops) for ops in self._ops.values())

    # -- subclass hooks ---------------------------------------------------------------

    @abc.abstractmethod
    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        """Compute the value a read observes (no recording)."""

    @abc.abstractmethod
    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        """Apply a write (no recording)."""

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        """Apply an atomic read-modify-write; default is unsupported."""
        raise MachineError(f"{self.name} does not support RMW operations")

    # -- helpers -------------------------------------------------------------------

    def _require_proc(self, proc: Any) -> None:
        if proc not in self._ops:
            raise MachineError(f"unknown processor {proc!r} (have {self.procs!r})")

    def _record(
        self,
        proc: Any,
        kind: OpKind,
        location: str,
        value: int,
        read_value: int | None,
        labeled: bool,
    ) -> None:
        ops = self._ops[proc]
        ops.append(
            Operation(
                proc=proc,
                index=len(ops),
                kind=kind,
                location=location,
                value=value,
                read_value=read_value,
                labeled=labeled,
            )
        )

    @staticmethod
    def _fresh_memory() -> dict[str, int]:
        """A memory replica with every location at the initial value."""
        return {}

    @staticmethod
    def _load(memory: dict[str, int], location: str) -> int:
        return memory.get(location, INITIAL_VALUE)
