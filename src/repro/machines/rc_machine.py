"""Release-consistent machines: ``RC_sc`` and ``RC_pc`` (Section 3.4).

Simulates the DASH memory system the paper analyzes.  Operations carry a
``labeled`` flag; labeled reads are *acquires* and labeled writes are
*releases*.  Two propagation planes:

Ordinary plane
    Replicated memory with per-location serial numbers (coherence is
    required even for ordinary writes) and completely unordered delivery —
    ordinary writes "could be propagated independently and their values may
    arrive in different order at different caches".

Labeled plane — mode ``"sc"``
    Labeled operations execute atomically against a single master copy of
    the synchronization locations, in issue order.  The labeled
    subsequence of any trace is therefore sequentially consistent.

Labeled plane — mode ``"pc"``
    Labeled operations use the DASH PC protocol of
    :class:`~repro.machines.pc_machine.PCMachine`: local reads, per-location
    serialization, FIFO propagation.  Acquires may observe stale
    synchronization values — exactly the weakness the Bakery algorithm
    trips over (Section 5).

Bracketing (both modes)
    Before a release *performs* anywhere, the releaser's prior ordinary
    writes must have performed everywhere.  In ``"sc"`` mode the release
    flushes the releaser's in-flight ordinary updates before touching the
    master ("eager release").  In ``"pc"`` mode the release's update is
    applied at each replica only after the releaser's prior ordinary
    updates have been applied there (a per-source barrier count carried on
    the release message).

The framework assumption of the paper's Section 5 applies: synchronization
locations are accessed only by labeled operations, ordinary locations only
by ordinary operations.  The machine enforces it at run time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Literal, Sequence

from repro.core.errors import MachineError
from repro.core.operation import INITIAL_VALUE
from repro.machines.base import EventKey, MemoryMachine

__all__ = ["RCMachine"]


class RCMachine(MemoryMachine):
    """Release consistency with SC or PC labeled operations."""

    def __init__(self, procs: Sequence[Any], labeled_mode: Literal["sc", "pc"] = "sc") -> None:
        super().__init__(procs)
        if labeled_mode not in ("sc", "pc"):
            raise MachineError(f"labeled_mode must be 'sc' or 'pc', got {labeled_mode!r}")
        self.labeled_mode = labeled_mode
        self.name = f"RC_{labeled_mode}-machine"

        # Location discipline bookkeeping (sync vs ordinary).
        self._loc_kind: dict[str, bool] = {}  # location -> labeled?

        # Ordinary plane: coherent, unordered delivery.
        self._ord_replicas: dict[Any, dict[str, tuple[int, int]]] = {
            p: {} for p in self.procs
        }
        self._ord_serial: dict[str, int] = {}
        self._ord_pending: dict[Any, dict[int, tuple[Any, str, int, int]]] = {
            p: {} for p in self.procs
        }
        self._next_uid = 0
        # How many ordinary updates from src have been applied at dst.
        self._ord_applied_from: dict[tuple[Any, Any], int] = {
            (s, d): 0 for s in self.procs for d in self.procs if s != d
        }
        self._ord_sent_by: dict[Any, int] = {p: 0 for p in self.procs}

        # Labeled plane, mode "sc": one master copy.
        self._master: dict[str, int] = {}

        # Labeled plane, mode "pc": PC-style replicas + FIFO channels.
        # Channel entries: (location, value, serial, barrier) where barrier
        # is the count of the source's prior ordinary updates that must be
        # applied at the destination before a *release* may apply.
        self._sync_replicas: dict[Any, dict[str, tuple[int, int]]] = {
            p: {} for p in self.procs
        }
        self._sync_serial: dict[str, int] = {}
        self._sync_latest: dict[str, int] = {}
        self._sync_channels: dict[tuple[Any, Any], deque[tuple[str, int, int, int]]] = {
            (s, d): deque() for s in self.procs for d in self.procs if s != d
        }

    # -- location discipline ---------------------------------------------------------

    def _check_discipline(self, location: str, labeled: bool) -> None:
        kind = self._loc_kind.get(location)
        if kind is None:
            self._loc_kind[location] = labeled
        elif kind != labeled:
            role = "synchronization" if kind else "ordinary"
            raise MachineError(
                f"{self.name}: location {location!r} is a {role} location; "
                "mixing labeled and ordinary accesses is outside the "
                "properly-labeled discipline (paper Section 5)"
            )

    # -- value semantics -----------------------------------------------------------

    def _do_read(self, proc: Any, location: str, labeled: bool) -> int:
        self._check_discipline(location, labeled)
        if not labeled:
            entry = self._ord_replicas[proc].get(location)
            return entry[0] if entry is not None else INITIAL_VALUE
        if self.labeled_mode == "sc":
            return self._master.get(location, INITIAL_VALUE)
        entry = self._sync_replicas[proc].get(location)
        return entry[0] if entry is not None else INITIAL_VALUE

    def _do_write(self, proc: Any, location: str, value: int, labeled: bool) -> None:
        self._check_discipline(location, labeled)
        if not labeled:
            self._ordinary_write(proc, location, value)
            return
        # Release: prior ordinary writes must perform before the release does.
        if self.labeled_mode == "sc":
            self._flush_ordinary_from(proc)
            self._master[location] = value
            return
        serial = self._sync_serial.get(location, 0) + 1
        self._sync_serial[location] = serial
        self._sync_latest[location] = value
        self._apply_sync(proc, location, value, serial)
        barrier = self._ord_sent_by[proc]
        for dst in self.procs:
            if dst != proc:
                self._sync_channels[(proc, dst)].append((location, value, serial, barrier))

    def _do_rmw(self, proc: Any, location: str, value: int, labeled: bool) -> int:
        self._check_discipline(location, labeled)
        if not labeled:
            raise MachineError(f"{self.name}: ordinary RMW is not modeled")
        if self.labeled_mode == "sc":
            self._flush_ordinary_from(proc)
            old = self._master.get(location, INITIAL_VALUE)
            self._master[location] = value
            return old
        # PC-mode RMW: atomic at the location's serialization point.
        old = self._sync_latest.get(location, INITIAL_VALUE)
        serial = self._sync_serial.get(location, 0) + 1
        self._sync_serial[location] = serial
        self._sync_latest[location] = value
        self._apply_sync(proc, location, value, serial)
        barrier = self._ord_sent_by[proc]
        for dst in self.procs:
            if dst != proc:
                self._sync_channels[(proc, dst)].append((location, value, serial, barrier))
        return old

    # -- ordinary plane ---------------------------------------------------------------

    def _ordinary_write(self, proc: Any, location: str, value: int) -> None:
        serial = self._ord_serial.get(location, 0) + 1
        self._ord_serial[location] = serial
        self._apply_ordinary(proc, location, value, serial)
        self._ord_sent_by[proc] += 1
        for dst in self.procs:
            if dst != proc:
                self._ord_pending[dst][self._next_uid] = (proc, location, value, serial)
                self._next_uid += 1

    def _apply_ordinary(self, proc: Any, location: str, value: int, serial: int) -> None:
        current = self._ord_replicas[proc].get(location)
        if current is None or serial > current[1]:
            self._ord_replicas[proc][location] = (value, serial)

    def _apply_sync(self, proc: Any, location: str, value: int, serial: int) -> None:
        current = self._sync_replicas[proc].get(location)
        if current is None or serial > current[1]:
            self._sync_replicas[proc][location] = (value, serial)

    def _flush_ordinary_from(self, src: Any) -> None:
        """Apply every in-flight ordinary update originating at ``src``."""
        for dst in self.procs:
            if dst == src:
                continue
            pending = self._ord_pending[dst]
            for uid in sorted(u for u, e in pending.items() if e[0] == src):
                origin, location, value, serial = pending.pop(uid)
                self._apply_ordinary(dst, location, value, serial)
                self._ord_applied_from[(origin, dst)] += 1

    # -- internal events ----------------------------------------------------------

    def internal_events(self) -> list[EventKey]:
        events: list[EventKey] = [
            ("ord", dst, uid)
            for dst, pending in self._ord_pending.items()
            for uid in pending
        ]
        if self.labeled_mode == "pc":
            for (src, dst), chan in self._sync_channels.items():
                if not chan:
                    continue
                _, _, _, barrier = chan[0]
                if self._ord_applied_from[(src, dst)] >= barrier:
                    events.append(("sync", src, dst))
        return events

    def fire(self, key: EventKey) -> None:
        match key:
            case ("ord", dst, uid) if uid in self._ord_pending.get(dst, {}):
                origin, location, value, serial = self._ord_pending[dst].pop(uid)
                self._apply_ordinary(dst, location, value, serial)
                self._ord_applied_from[(origin, dst)] += 1
            case ("sync", src, dst) if self._sync_channels.get((src, dst)):
                location, value, serial, barrier = self._sync_channels[(src, dst)][0]
                if self._ord_applied_from[(src, dst)] < barrier:
                    raise MachineError(
                        f"{self.name}: release barrier not met for {key!r}"
                    )
                self._sync_channels[(src, dst)].popleft()
                self._apply_sync(dst, location, value, serial)
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")
