"""The paper's Figure 6, as pseudocode text.

The Bakery algorithm exactly as the paper displays it, in the
:mod:`repro.programs.pseudocode` language — the ``sync`` suffix is the
paper's labeling of every synchronization operation, and the critical
section contains one ordinary shared access pair, as the paper's
assumptions require (ordinary variables accessed only inside, sync
variables only outside).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.programs.pseudocode import PseudoProgram, parse_program
from repro.programs.runner import ThreadFactory

__all__ = ["FIGURE6_TEXT", "figure6_program"]

FIGURE6_TEXT = """
# Lamport's Bakery algorithm, processor p_i of n (paper Figure 6).
choosing[i] := 1 sync
m := 0
for j in 0..n-1:                       # mine = 1 + max{number[j] | j != i}
  if j != i:
    t := read number[j] sync
    m := max(m, t)
mine := 1 + m
number[i] := mine sync
choosing[i] := 0 sync
for j in 0..n-1:
  if j != i:
    await choosing[j] == 0 sync        # repeat test until not choosing[j]
    while true:
      other := read number[j] sync
      if other == 0 or (mine, i) < (other, j):
        break
cs_enter
d := read shared                       # ordinary operations in the
shared := d * n + i + 1                # critical section
cs_exit
number[i] := 0 sync
"""


def figure6_program(n: int) -> Mapping[Any, ThreadFactory]:
    """Thread factories compiled from the Figure 6 text, for ``n`` processors."""
    program: PseudoProgram = parse_program(FIGURE6_TEXT, shared=("shared",))
    return {
        f"p{i}": (lambda i=i: program.thread(i=i, n=n)) for i in range(n)
    }
