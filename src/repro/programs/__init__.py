"""Concurrent test programs: threads, schedulers, runner, mutex algorithms."""

from repro.programs.ops import CsEnter, CsExit, Read, Request, Rmw, Write
from repro.programs.modelcheck import (
    ExplorationReport,
    find_schedule,
    reachable_outcomes,
    verify_mutual_exclusion,
)
from repro.programs.figure6 import FIGURE6_TEXT, figure6_program
from repro.programs.pseudocode import PseudoProgram, compile_program, parse_program
from repro.programs.runner import RunResult, Setup, ThreadFactory, explore, run
from repro.programs.workloads import (
    barrier_program,
    ping_pong,
    producer_consumer,
    stale_reads,
    work_queue,
)
from repro.programs.scheduler import (
    BiasedScheduler,
    DelayDeliveriesScheduler,
    EagerDeliveryScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
)

__all__ = [
    "barrier_program",
    "CsEnter",
    "CsExit",
    "BiasedScheduler",
    "DelayDeliveriesScheduler",
    "EagerDeliveryScheduler",
    "FairScheduler",
    "ExplorationReport",
    "compile_program",
    "explore",
    "FIGURE6_TEXT",
    "figure6_program",
    "parse_program",
    "PseudoProgram",
    "find_schedule",
    "reachable_outcomes",
    "verify_mutual_exclusion",
    "RandomScheduler",
    "Read",
    "Request",
    "Rmw",
    "RoundRobinScheduler",
    "run",
    "RunResult",
    "Scheduler",
    "ping_pong",
    "producer_consumer",
    "stale_reads",
    "work_queue",
    "ScriptedScheduler",
    "Setup",
    "ThreadFactory",
    "Write",
]
