"""Lamport's Bakery algorithm (paper Figure 6).

The n-processor mutual-exclusion algorithm the paper uses to distinguish
``RC_sc`` from ``RC_pc`` (Section 5).  All synchronization accesses —
everything outside the critical and remainder sections — are labeled, as
the paper prescribes; the critical section touches only ordinary shared
locations.  The algorithm is correct on sequentially consistent memory
(and hence, properly labeled, on ``RC_sc``), and fails on ``RC_pc``.

Locations: ``choosing[i]`` (1 = true, 0 = false) and ``number[i]``.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.programs.ops import CsEnter, CsExit, Read, Request, Write
from repro.programs.runner import ThreadFactory

__all__ = ["bakery_thread", "bakery_program", "choosing_loc", "number_loc"]


def choosing_loc(i: int) -> str:
    """Location name of ``choosing[i]``."""
    return f"choosing[{i}]"


def number_loc(i: int) -> str:
    """Location name of ``number[i]``."""
    return f"number[{i}]"


def bakery_thread(
    i: int,
    n: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Iterator[Request]:
    """The Bakery code of processor ``p_i`` (Figure 6), as a thread body.

    Parameters
    ----------
    i, n:
        This processor's index and the total processor count.
    iterations:
        How many times to enter the critical section.
    labeled:
        Label the synchronization operations (the paper's proper labeling);
        pass ``False`` to run the unlabeled variant on non-RC machines.
    cs_body:
        Execute an ordinary read-modify-write of a shared datum inside the
        critical section (exercises the ordinary/labeled split).
    """
    for it in range(iterations):
        # doorway: take a ticket
        yield Write(choosing_loc(i), 1, labeled)
        maximum = 0
        for j in range(n):
            if j != i:
                val = yield Read(number_loc(j), labeled)
                maximum = max(maximum, val)
        mine = 1 + maximum
        yield Write(number_loc(i), mine, labeled)
        yield Write(choosing_loc(i), 0, labeled)
        # wait for every other processor
        for j in range(n):
            if j == i:
                continue
            while True:
                test = yield Read(choosing_loc(j), labeled)
                if test == 0:
                    break
            while True:
                other = yield Read(number_loc(j), labeled)
                if other == 0 or (mine, i) < (other, j):
                    break
        yield CsEnter()
        if cs_body:
            val = yield Read("shared", False)
            yield Write("shared", val * n + i + 1, False)
        yield CsExit()
        yield Write(number_loc(i), 0, labeled)


def bakery_program(
    n: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Mapping[Any, ThreadFactory]:
    """Thread factories for an ``n``-processor Bakery run (procs ``p0..``)."""
    return {
        f"p{i}": (
            lambda i=i: bakery_thread(
                i, n, iterations=iterations, labeled=labeled, cs_body=cs_body
            )
        )
        for i in range(n)
    }
