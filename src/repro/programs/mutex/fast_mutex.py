"""Lamport's fast mutual-exclusion algorithm (1987).

A third read/write-only algorithm, with a contention-free fast path of
seven memory accesses.  Like Bakery it assumes sequential consistency, so
it belongs in the same experiment family: correct when the
synchronization operations are SC, breakable when they are weaker.

Processor ids are encoded ``1..n`` in the ``x``/``y`` locations (0 means
"nobody", matching the initial value).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.programs.ops import CsEnter, CsExit, Read, Request, Write
from repro.programs.runner import ThreadFactory

__all__ = ["fast_mutex_thread", "fast_mutex_program"]


def fast_mutex_thread(
    i: int,
    n: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Iterator[Request]:
    """Lamport's fast mutex for processor ``i`` (0-based) of ``n``."""
    me = i + 1
    for _ in range(iterations):
        while True:  # "start:"
            yield Write(f"b[{i}]", 1, labeled)
            yield Write("x", me, labeled)
            y = yield Read("y", labeled)
            if y != 0:
                yield Write(f"b[{i}]", 0, labeled)
                while True:
                    y = yield Read("y", labeled)
                    if y == 0:
                        break
                continue  # goto start
            yield Write("y", me, labeled)
            x = yield Read("x", labeled)
            if x != me:
                yield Write(f"b[{i}]", 0, labeled)
                for j in range(n):
                    while True:
                        bj = yield Read(f"b[{j}]", labeled)
                        if bj == 0:
                            break
                y = yield Read("y", labeled)
                if y != me:
                    while True:
                        y = yield Read("y", labeled)
                        if y == 0:
                            break
                    continue  # goto start
            break  # entry won
        yield CsEnter()
        if cs_body:
            val = yield Read("shared", False)
            yield Write("shared", val * n + i + 1, False)
        yield CsExit()
        yield Write("y", 0, labeled)
        yield Write(f"b[{i}]", 0, labeled)


def fast_mutex_program(
    n: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Mapping[Any, ThreadFactory]:
    """Thread factories for ``n`` fast-mutex contenders (``p0..``)."""
    return {
        f"p{i}": (
            lambda i=i: fast_mutex_thread(
                i, n, iterations=iterations, labeled=labeled, cs_body=cs_body
            )
        )
        for i in range(n)
    }
