"""Test-and-set spinlock.

The read-modify-write baseline: unlike Bakery, Peterson, and Dekker it
does *not* rely on plain reads and writes, so it stays correct even on
memories where those algorithms break — the paper's footnote 4 treats RMW
operations as writes that appear in every view, and every machine here
implements them atomically at the location's serialization point.
Contrast with Section 5's point that the *read/write* algorithms are what
distinguish ``RC_sc`` from ``RC_pc``.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.programs.ops import CsEnter, CsExit, Read, Request, Rmw, Write
from repro.programs.runner import ThreadFactory

__all__ = ["spinlock_thread", "spinlock_program"]

#: The lock location; 0 = free, 1 = held.
LOCK = "lock"


def spinlock_thread(
    i: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Iterator[Request]:
    """Acquire via test-and-set, release via an ordinary-looking store."""
    for _ in range(iterations):
        while True:
            old = yield Rmw(LOCK, 1, labeled)
            if old == 0:
                break
        yield CsEnter()
        if cs_body:
            val = yield Read("shared", False)
            yield Write("shared", val * 10 + i + 1, False)
        yield CsExit()
        yield Write(LOCK, 0, labeled)


def spinlock_program(
    n: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Mapping[Any, ThreadFactory]:
    """Thread factories for ``n`` spinlock contenders (``p0..``)."""
    return {
        f"p{i}": (
            lambda i=i: spinlock_thread(
                i, iterations=iterations, labeled=labeled, cs_body=cs_body
            )
        )
        for i in range(n)
    }
