"""Mutual-exclusion algorithms used in the Section 5 experiments."""

from repro.programs.mutex.bakery import bakery_program, bakery_thread
from repro.programs.mutex.dekker import dekker_program, dekker_thread
from repro.programs.mutex.fast_mutex import fast_mutex_program, fast_mutex_thread
from repro.programs.mutex.peterson import peterson_program, peterson_thread
from repro.programs.mutex.spinlock import spinlock_program, spinlock_thread

__all__ = [
    "bakery_program",
    "bakery_thread",
    "dekker_program",
    "dekker_thread",
    "fast_mutex_program",
    "fast_mutex_thread",
    "peterson_program",
    "peterson_thread",
    "spinlock_program",
    "spinlock_thread",
]
