"""Dekker's two-processor mutual-exclusion algorithm.

The oldest software mutual-exclusion solution; included as a second
read/write-only baseline.  Like Peterson and Bakery it is SC-correct and
sensitive to write→read reordering.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.programs.ops import CsEnter, CsExit, Read, Request, Write
from repro.programs.runner import ThreadFactory

__all__ = ["dekker_thread", "dekker_program"]


def dekker_thread(
    i: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Iterator[Request]:
    """Dekker's algorithm for processor ``i`` ∈ {0, 1}."""
    other = 1 - i
    for _ in range(iterations):
        yield Write(f"wants[{i}]", 1, labeled)
        while True:
            w = yield Read(f"wants[{other}]", labeled)
            if w == 0:
                break
            t = yield Read("turn", labeled)
            if t != i:
                yield Write(f"wants[{i}]", 0, labeled)
                while True:
                    t = yield Read("turn", labeled)
                    if t == i:
                        break
                yield Write(f"wants[{i}]", 1, labeled)
        yield CsEnter()
        if cs_body:
            val = yield Read("shared", False)
            yield Write("shared", val * 2 + i + 1, False)
        yield CsExit()
        yield Write("turn", other, labeled)
        yield Write(f"wants[{i}]", 0, labeled)


def dekker_program(
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Mapping[Any, ThreadFactory]:
    """Thread factories for the two Dekker processors (``p0``, ``p1``).

    Note: processor 0 initially holds the turn (``turn`` starts at the
    initial value 0).
    """
    return {
        f"p{i}": (
            lambda i=i: dekker_thread(
                i, iterations=iterations, labeled=labeled, cs_body=cs_body
            )
        )
        for i in range(2)
    }
