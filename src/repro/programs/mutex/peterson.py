"""Peterson's two-processor mutual-exclusion algorithm.

A baseline companion to the Bakery experiment: like Bakery it relies only
on reads and writes, is correct under SC, and fails under memories that
weaken the write→read program order (its ``flag``/``turn`` handshake is
exactly the store-buffering pattern).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.programs.ops import CsEnter, CsExit, Read, Request, Write
from repro.programs.runner import ThreadFactory

__all__ = ["peterson_thread", "peterson_program"]


def peterson_thread(
    i: int,
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Iterator[Request]:
    """Peterson's algorithm for processor ``i`` ∈ {0, 1}."""
    other = 1 - i
    for _ in range(iterations):
        yield Write(f"flag[{i}]", 1, labeled)
        yield Write("turn", other, labeled)
        while True:
            f = yield Read(f"flag[{other}]", labeled)
            if f == 0:
                break
            t = yield Read("turn", labeled)
            if t == i:
                break
        yield CsEnter()
        if cs_body:
            val = yield Read("shared", False)
            yield Write("shared", val * 2 + i + 1, False)
        yield CsExit()
        yield Write(f"flag[{i}]", 0, labeled)


def peterson_program(
    *,
    iterations: int = 1,
    labeled: bool = True,
    cs_body: bool = True,
) -> Mapping[Any, ThreadFactory]:
    """Thread factories for the two Peterson processors (``p0``, ``p1``)."""
    return {
        f"p{i}": (
            lambda i=i: peterson_thread(
                i, iterations=iterations, labeled=labeled, cs_body=cs_body
            )
        )
        for i in range(2)
    }
