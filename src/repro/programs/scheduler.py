"""Schedulers: policies for resolving execution nondeterminism.

The runner presents, at every step, the list of enabled events — one per
runnable thread plus one per enabled internal machine transition (message
delivery, buffer drain).  A scheduler picks one.  All interleaving *and*
propagation nondeterminism flows through this single interface, so the
same machinery drives random stress testing, adversarial searches, and
bounded exhaustive exploration (via :class:`ScriptedScheduler` replay).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.errors import SchedulerError

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    "BiasedScheduler",
    "DelayDeliveriesScheduler",
    "EagerDeliveryScheduler",
    "FairScheduler",
]

#: Event tuples as produced by the runner: ("thread", proc) or ("machine", key).
Event = tuple


class Scheduler(abc.ABC):
    """Chooses one enabled event per step."""

    @abc.abstractmethod
    def choose(self, events: Sequence[Event]) -> int:
        """Return the index of the chosen event within ``events``.

        ``events`` is never empty; the runner stops on quiescence.
        """

    def reset(self) -> None:
        """Prepare for a fresh run (optional)."""


class RandomScheduler(Scheduler):
    """Uniform random choice; reproducible from a seed.

    The workhorse for stress testing: with enough runs it finds most
    weak-memory surprises, including the RC_pc Bakery violation.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose(self, events: Sequence[Event]) -> int:
        return int(self._rng.integers(len(events)))

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class RoundRobinScheduler(Scheduler):
    """Cycle deterministically through event slots.

    Approximates a fair interleaving; useful as a smoke-test baseline.
    """

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, events: Sequence[Event]) -> int:
        idx = self._counter % len(events)
        self._counter += 1
        return idx

    def reset(self) -> None:
        self._counter = 0


class ScriptedScheduler(Scheduler):
    """Replay a fixed choice sequence; choose 0 when the script runs out.

    The building block of bounded exhaustive exploration: the explorer
    enumerates scripts in depth-first order (see
    :func:`repro.programs.runner.explore`).
    """

    def __init__(self, script: Sequence[int]) -> None:
        self._script = list(script)
        self._pos = 0
        #: (position, number of enabled events) recorded at each step —
        #: the explorer reads this to compute the next script.
        self.decisions: list[int] = []

    def choose(self, events: Sequence[Event]) -> int:
        self.decisions.append(len(events))
        if self._pos < len(self._script):
            idx = self._script[self._pos]
            self._pos += 1
            if idx >= len(events):
                raise SchedulerError(
                    f"scripted choice {idx} out of range for {len(events)} events"
                )
            return idx
        return 0

    def reset(self) -> None:
        self._pos = 0
        self.decisions = []


class DelayDeliveriesScheduler(Scheduler):
    """Adversarial: starve the machine's internal events as long as possible.

    Threads run (in round-robin) while messages sit in flight, maximizing
    staleness — the natural adversary for weak-memory algorithms.  Internal
    events fire only when no thread can run.
    """

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, events: Sequence[Event]) -> int:
        thread_idx = [i for i, e in enumerate(events) if e[0] == "thread"]
        if thread_idx:
            idx = thread_idx[self._counter % len(thread_idx)]
            self._counter += 1
            return idx
        return 0

    def reset(self) -> None:
        self._counter = 0


class BiasedScheduler(Scheduler):
    """Random choice with a tunable propagation probability.

    With probability ``p_machine`` (and at least one internal event
    enabled) a machine event fires; otherwise a thread runs.  Sweeping
    ``p_machine`` turns a machine into a dial from fully adversarial
    (``0.0`` ≈ :class:`DelayDeliveriesScheduler`) to eager (``1.0``),
    which is how the scalability experiment draws violation-rate and
    staleness curves against propagation speed.
    """

    def __init__(self, seed: int = 0, p_machine: float = 0.5) -> None:
        if not 0.0 <= p_machine <= 1.0:
            raise SchedulerError(f"p_machine must be in [0, 1], got {p_machine}")
        self._seed = seed
        self.p_machine = p_machine
        self._rng = np.random.default_rng(seed)

    def choose(self, events: Sequence[Event]) -> int:
        machine_idx = [i for i, e in enumerate(events) if e[0] == "machine"]
        thread_idx = [i for i, e in enumerate(events) if e[0] == "thread"]
        if machine_idx and (not thread_idx or self._rng.random() < self.p_machine):
            return machine_idx[int(self._rng.integers(len(machine_idx)))]
        if thread_idx:
            return thread_idx[int(self._rng.integers(len(thread_idx)))]
        return machine_idx[int(self._rng.integers(len(machine_idx)))]

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class FairScheduler(Scheduler):
    """Random choice with a delivery quota: no message starves forever.

    Every ``quota`` consecutive non-machine choices force one machine
    event (when any is enabled).  Spin-loop programs that diverge under
    :class:`DelayDeliveriesScheduler` terminate under this policy, which
    makes it the right default for liveness-sensitive workloads such as
    ping-pong.
    """

    def __init__(self, seed: int = 0, quota: int = 4) -> None:
        self._seed = seed
        self._quota = quota
        self._rng = np.random.default_rng(seed)
        self._since_machine = 0

    def choose(self, events: Sequence[Event]) -> int:
        machine_idx = [i for i, e in enumerate(events) if e[0] == "machine"]
        if machine_idx and self._since_machine >= self._quota:
            self._since_machine = 0
            return machine_idx[int(self._rng.integers(len(machine_idx)))]
        idx = int(self._rng.integers(len(events)))
        if events[idx][0] == "machine":
            self._since_machine = 0
        else:
            self._since_machine += 1
        return idx

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._since_machine = 0


class EagerDeliveryScheduler(Scheduler):
    """The opposite adversary: flush all internal events before any thread step.

    Under eager delivery every replica is as fresh as possible, which makes
    weak machines behave almost like SC — useful as a control in the Bakery
    experiment.
    """

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, events: Sequence[Event]) -> int:
        for i, e in enumerate(events):
            if e[0] == "machine":
                return i
        idx = self._counter % len(events)
        self._counter += 1
        return idx

    def reset(self) -> None:
        self._counter = 0
