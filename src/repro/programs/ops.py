"""Operation requests yielded by test-program threads.

A thread is a Python generator that ``yield``\\ s these request objects;
the runner executes each against the memory machine and sends the result
(for reads and RMWs) back into the generator.  ``CsEnter``/``CsExit``
delimit critical sections for the mutual-exclusion monitor and do not
touch memory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Read", "Write", "Rmw", "CsEnter", "CsExit", "Request"]


@dataclass(frozen=True)
class Read:
    """Read ``location``; the runner sends the observed value back."""

    location: str
    labeled: bool = False


@dataclass(frozen=True)
class Write:
    """Write ``value`` to ``location``."""

    location: str
    value: int
    labeled: bool = False


@dataclass(frozen=True)
class Rmw:
    """Atomically store ``value`` to ``location``; the old value is sent back."""

    location: str
    value: int
    labeled: bool = False


@dataclass(frozen=True)
class CsEnter:
    """Mark entry into the critical section (monitor-only, no memory effect)."""


@dataclass(frozen=True)
class CsExit:
    """Mark exit from the critical section (monitor-only, no memory effect)."""


Request = Read | Write | Rmw | CsEnter | CsExit
