"""Bounded model checking over program schedules.

Convenience layers over :func:`repro.programs.runner.explore`:

* :func:`find_schedule` — search for an execution satisfying a predicate
  (e.g. "produces this exact history", "violates mutual exclusion") and
  return the witnessing run;
* :func:`verify_mutual_exclusion` — exhaustively check a mutual-exclusion
  program on a machine, returning either a proof of safety over the
  explored bound or the violating run;
* :func:`reachable_outcomes` — collect the distinct read-value outcomes a
  program can produce on a machine, the standard litmus-test question.

All are exponential in program size — the explorer enumerates every
schedule — so they are tools for the paper-scale programs this repository
studies, not a general-purpose model checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.history import SystemHistory
from repro.programs.runner import RunResult, Setup, explore

__all__ = [
    "ExplorationReport",
    "find_schedule",
    "verify_mutual_exclusion",
    "reachable_outcomes",
]


@dataclass(frozen=True)
class ExplorationReport:
    """Outcome of an exhaustive schedule exploration.

    Attributes
    ----------
    safe:
        True when no explored run satisfied the violation predicate.
    runs:
        Number of complete executions enumerated.
    incomplete:
        Runs that hit the step bound (their suffixes are unexplored; a
        nonzero count means the verdict is bounded, not total).
    witness:
        The first violating run, when one exists.
    """

    safe: bool
    runs: int
    incomplete: int
    witness: RunResult | None = None

    @property
    def exhaustive(self) -> bool:
        """True when every run completed within the step bound."""
        return self.incomplete == 0


def find_schedule(
    setup: Setup,
    predicate: Callable[[RunResult], bool],
    *,
    max_steps: int = 200,
    max_runs: int | None = None,
) -> RunResult | None:
    """First run (in exploration order) satisfying ``predicate``, or ``None``."""
    for result in explore(setup, max_steps=max_steps, max_runs=max_runs):
        if predicate(result):
            return result
    return None


def verify_mutual_exclusion(
    setup: Setup,
    *,
    max_steps: int = 400,
    max_runs: int | None = None,
) -> ExplorationReport:
    """Exhaustively check the critical-section invariant of a program.

    Stops early at the first violation.  When ``max_runs`` truncates the
    exploration or runs hit ``max_steps``, a ``safe`` verdict is bounded
    rather than total (see :attr:`ExplorationReport.exhaustive`).
    """
    runs = incomplete = 0
    for result in explore(setup, max_steps=max_steps, max_runs=max_runs):
        runs += 1
        if not result.completed:
            incomplete += 1
        if result.mutex_violation:
            return ExplorationReport(False, runs, incomplete, witness=result)
    return ExplorationReport(True, runs, incomplete)


def reachable_outcomes(
    setup: Setup,
    *,
    max_steps: int = 200,
    max_runs: int | None = None,
) -> dict[tuple[tuple[Any, int, int], ...], SystemHistory]:
    """All distinct read-outcome tuples a program can produce.

    The key identifies each read by ``(proc, index, value)``; the value is
    one witnessing history.  This answers the litmus question "which
    outcomes are reachable on this machine?" exhaustively.
    """
    outcomes: dict[tuple[tuple[Any, int, int], ...], SystemHistory] = {}
    for result in explore(setup, max_steps=max_steps, max_runs=max_runs):
        if not result.completed:
            continue
        key = tuple(
            (op.proc, op.index, op.value_read)
            for op in result.history.operations
            if op.is_read
        )
        outcomes.setdefault(key, result.history)
    return outcomes
