"""Execute concurrent test programs on operational memory machines.

Threads are generators yielding :mod:`repro.programs.ops` requests; the
runner interleaves thread steps with the machine's internal events under a
:class:`~repro.programs.scheduler.Scheduler`, records the resulting
:class:`~repro.core.history.SystemHistory`, and monitors critical-section
occupancy.  :func:`explore` enumerates *every* schedule of a small program
by depth-first script replay — the bounded model checker used by the
Bakery experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Mapping

from repro.core.errors import ProgramError
from repro.core.history import SystemHistory
from repro.machines.base import MemoryMachine
from repro.programs.ops import CsEnter, CsExit, Read, Request, Rmw, Write
from repro.programs.scheduler import Scheduler, ScriptedScheduler

__all__ = ["RunResult", "run", "explore", "ThreadFactory", "Setup"]

#: A thread body: a generator yielding requests, receiving read results.
ThreadBody = Generator[Request, int | None, None]
#: Creates a fresh thread body for a processor.
ThreadFactory = Callable[[], ThreadBody]
#: Creates a fresh (machine, {proc: thread factory}) pair per run.
Setup = Callable[[], tuple[MemoryMachine, Mapping[Any, ThreadFactory]]]


@dataclass
class RunResult:
    """Everything observed during one program execution.

    Attributes
    ----------
    history:
        The system execution history the machine recorded.
    completed:
        Whether every thread ran to completion within the step bound.
    steps:
        Number of scheduler decisions taken.
    cs_events:
        Chronological ``(step, proc, "enter" | "exit")`` critical-section
        marks.
    max_in_cs:
        Peak number of processors simultaneously inside critical sections.
    mutex_violation:
        True when ``max_in_cs >= 2`` — the Bakery failure signature.
    """

    history: SystemHistory
    completed: bool
    steps: int
    cs_events: list[tuple[int, Any, str]] = field(default_factory=list)
    max_in_cs: int = 0

    @property
    def mutex_violation(self) -> bool:
        return self.max_in_cs >= 2


def run(
    machine: MemoryMachine,
    threads: Mapping[Any, ThreadFactory],
    scheduler: Scheduler,
    *,
    max_steps: int = 10_000,
) -> RunResult:
    """Run ``threads`` on ``machine`` under ``scheduler``.

    Thread processors must be a subset of the machine's processors.  The
    run ends when every thread has finished (remaining in-flight machine
    work cannot change the recorded history) or when ``max_steps``
    scheduler decisions have been made (busy-wait loops under adversarial
    schedulers may spin forever; such runs return ``completed=False``).
    """
    for proc in threads:
        if proc not in machine.procs:
            raise ProgramError(f"thread processor {proc!r} unknown to {machine.name}")

    bodies: dict[Any, ThreadBody] = {}
    pending_send: dict[Any, int | None] = {}
    finished: set[Any] = set()
    for proc, factory in threads.items():
        body = factory()
        bodies[proc] = body
        pending_send[proc] = None

    cs_events: list[tuple[int, Any, str]] = []
    in_cs: set[Any] = set()
    max_in_cs = 0
    steps = 0

    # Prime every generator to its first yield.
    requests: dict[Any, Request] = {}
    for proc, body in bodies.items():
        try:
            requests[proc] = body.send(None)
        except StopIteration:
            finished.add(proc)

    while len(finished) < len(bodies):
        events: list[tuple] = [
            ("thread", proc) for proc in bodies if proc not in finished
        ]
        events.extend(("machine", key) for key in machine.internal_events())
        if steps >= max_steps:
            return RunResult(
                machine.history(), False, steps, cs_events, max_in_cs
            )
        idx = scheduler.choose(events)
        kind, payload = events[idx][0], events[idx][1]
        steps += 1
        if kind == "machine":
            machine.fire(payload)
            continue
        proc = payload
        req = requests[proc]
        result: int | None = None
        match req:
            case Read(location=loc, labeled=lab):
                result = machine.read(proc, loc, labeled=lab)
            case Write(location=loc, value=v, labeled=lab):
                machine.write(proc, loc, v, labeled=lab)
            case Rmw(location=loc, value=v, labeled=lab):
                result = machine.rmw(proc, loc, v, labeled=lab)
            case CsEnter():
                if proc in in_cs:
                    raise ProgramError(f"{proc!r} entered the critical section twice")
                in_cs.add(proc)
                max_in_cs = max(max_in_cs, len(in_cs))
                cs_events.append((steps, proc, "enter"))
            case CsExit():
                if proc not in in_cs:
                    raise ProgramError(f"{proc!r} exited a critical section it is not in")
                in_cs.remove(proc)
                cs_events.append((steps, proc, "exit"))
            case _:
                raise ProgramError(f"thread {proc!r} yielded unknown request {req!r}")
        try:
            requests[proc] = bodies[proc].send(result)
        except StopIteration:
            finished.add(proc)

    return RunResult(machine.history(), True, steps, cs_events, max_in_cs)


def explore(
    setup: Setup,
    *,
    max_steps: int = 200,
    max_runs: int | None = None,
) -> Iterator[RunResult]:
    """Enumerate every schedule of a program, depth-first, by replay.

    Each complete execution is re-run from a fresh ``setup()`` with a
    scripted choice prefix; the enumeration backtracks over the last
    decision with unexplored alternatives.  Exponential — use only on
    small programs (a handful of operations per thread).

    Parameters
    ----------
    setup:
        Builds a *fresh* machine and thread set for every replay.
    max_steps:
        Step bound per run (runs hitting it are yielded with
        ``completed=False`` and still backtracked through).
    max_runs:
        Optional cap on the number of executions enumerated.
    """
    script: list[int] = []
    runs = 0
    while True:
        machine, threads = setup()
        sched = ScriptedScheduler(script)
        result = run(machine, threads, sched, max_steps=max_steps)
        yield result
        runs += 1
        if max_runs is not None and runs >= max_runs:
            return
        # Find the deepest decision that still has an unexplored branch.
        decisions = sched.decisions
        chosen = script + [0] * (len(decisions) - len(script))
        pos = len(decisions) - 1
        while pos >= 0 and chosen[pos] + 1 >= decisions[pos]:
            pos -= 1
        if pos < 0:
            return
        script = chosen[:pos] + [chosen[pos] + 1]
