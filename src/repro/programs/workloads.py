"""DSM-style workload programs beyond mutual exclusion.

The paper motivates weak memories with parallel and distributed
applications sharing state through reads and writes; these are the
classic communication skeletons of that world, written against the
thread/request API so they run on every machine:

* :func:`producer_consumer` — flag-guarded hand-off of a batch of values;
* :func:`ping_pong` — two processors alternating on one location;
* :func:`barrier_program` — sense-reversing-style arrival counter built
  from per-processor arrival flags (read/write only);
* :func:`work_queue` — a test-and-set protected queue index.

Each returns thread factories plus (where meaningful) a *validator* that
inspects the run's history for the workload's correctness condition —
the experiments use these to show which memories preserve which idioms.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.core.history import SystemHistory
from repro.programs.ops import Read, Request, Rmw, Write
from repro.programs.runner import ThreadFactory

__all__ = [
    "producer_consumer",
    "ping_pong",
    "barrier_program",
    "work_queue",
    "stale_reads",
]


def producer_consumer(
    items: int = 3, *, labeled_flag: bool = False
) -> Mapping[Any, ThreadFactory]:
    """One producer fills ``data[i]`` then raises ``flag[i]``; the consumer
    spins on each flag and reads the datum.

    On memories preserving write order (SC, TSO, causal, PRAM) every
    consumed value equals the produced one; on weaker memories the
    consumer can observe a raised flag with stale data —
    :func:`stale_reads` counts those.
    """

    def producer() -> Iterator[Request]:
        for i in range(items):
            yield Write(f"data[{i}]", 100 + i)
            yield Write(f"flag[{i}]", 1, labeled_flag)

    def consumer() -> Iterator[Request]:
        for i in range(items):
            while True:
                f = yield Read(f"flag[{i}]", labeled_flag)
                if f == 1:
                    break
            yield Read(f"data[{i}]")

    return {"prod": producer, "cons": consumer}


def stale_reads(history: SystemHistory, items: int) -> int:
    """Consumer reads of ``data[i]`` that missed the produced value."""
    stale = 0
    for op in history.ops_of("cons"):
        if op.is_read and op.location.startswith("data["):
            i = int(op.location[5:-1])
            if op.value_read != 100 + i:
                stale += 1
    return stale


def ping_pong(rounds: int = 3) -> Mapping[Any, ThreadFactory]:
    """Two processors alternate writing a token: 1,2,3,… on one location.

    ``p`` writes odd values after seeing the previous even one; ``q``
    mirrors.  Terminates on every machine that eventually propagates
    writes (all of ours, under fair schedulers).
    """

    def player(mine_odd: bool) -> Callable[[], Iterator[Request]]:
        def body() -> Iterator[Request]:
            turn = 1 if mine_odd else 2
            for _ in range(rounds):
                while True:
                    v = yield Read("token")
                    if v == turn - 1:
                        break
                yield Write("token", turn)
                turn += 2
        return body

    return {"p": player(True), "q": player(False)}


def barrier_program(n: int = 3) -> Mapping[Any, ThreadFactory]:
    """An arrival barrier from per-processor flags (reads/writes only).

    Every processor writes a pre-barrier datum, raises its arrival flag,
    waits until all flags are up, then reads every *other* processor's
    datum.  On SC all post-barrier reads see the pre-barrier writes;
    weak memories can leak stale values (count them with a validator on
    ``pre[i]`` reads).
    """

    def member(i: int) -> Callable[[], Iterator[Request]]:
        def body() -> Iterator[Request]:
            yield Write(f"pre[{i}]", 10 + i)
            yield Write(f"arrive[{i}]", 1)
            for j in range(n):
                while True:
                    a = yield Read(f"arrive[{j}]")
                    if a == 1:
                        break
            for j in range(n):
                if j != i:
                    yield Read(f"pre[{j}]")
        return body

    return {f"p{i}": member(i) for i in range(n)}


def work_queue(
    n_workers: int = 2, n_items: int = 4
) -> Mapping[Any, ThreadFactory]:
    """Workers claim items by test-and-set on per-item claim words.

    Each worker sweeps the items and attempts ``claim[i] := my-id`` with
    an atomic RMW; whoever reads back 0 owns the item.  RMWs serialize at
    the location (paper footnote 4 treats them as writes visible to all),
    so no item is ever claimed twice — on *any* of the machines.  The
    correctness condition is checkable from the history: for each item,
    exactly one RMW observed 0.
    """

    def worker(w: int) -> Callable[[], Iterator[Request]]:
        def body() -> Iterator[Request]:
            me = w + 1
            for i in range(n_items):
                old = yield Rmw(f"claim[{i}]", me)
                if old == 0:
                    yield Write(f"done[{i}]", me)
        return body

    return {f"w{i}": worker(i) for i in range(n_workers)}
