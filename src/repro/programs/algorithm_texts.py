"""More algorithms as pseudocode text.

Companions to :mod:`repro.programs.figure6`: Peterson's algorithm and the
(deliberately broken) test-then-set protocol, written in the pseudocode
language.  The text forms are used by the examples and cross-checked
against the handwritten generators in the test suite.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.programs.pseudocode import parse_program
from repro.programs.runner import ThreadFactory

__all__ = [
    "PETERSON_TEXT",
    "NAIVE_LOCK_TEXT",
    "MISLABELED_BAKERY_TEXT",
    "peterson_text_program",
    "naive_lock_text_program",
    "mislabeled_bakery_program",
]

PETERSON_TEXT = """
# Peterson's two-processor algorithm, processor i (other = 1 - i).
flag[i] := 1 sync
turn := 1 - i sync
while true:
  f := read flag[1 - i] sync
  if f == 0:
    break
  t := read turn sync
  if t == i:
    break
cs_enter
d := read shared
shared := d * 2 + i + 1
cs_exit
flag[i] := 0 sync
"""

NAIVE_LOCK_TEXT = """
# Broken test-then-set "lock": the test and the set are not atomic.
f := read lock
if f == 0:
  lock := 1
  cs_enter
  cs_exit
  lock := 0
"""

MISLABELED_BAKERY_TEXT = """
# Figure 6's Bakery algorithm with every `sync` label dropped — a
# deliberately improperly-labeled variant (paper Section 3.4): the
# choosing/number handshake operations compete but are left ordinary.
choosing[i] := 1
m := 0
for j in 0..n-1:
  if j != i:
    t := read number[j]
    m := max(m, t)
mine := 1 + m
number[i] := mine
choosing[i] := 0
for j in 0..n-1:
  if j != i:
    await choosing[j] == 0
    while true:
      other := read number[j]
      if other == 0 or (mine, i) < (other, j):
        break
cs_enter
d := read shared
shared := d * n + i + 1
cs_exit
number[i] := 0
"""


def peterson_text_program() -> Mapping[Any, ThreadFactory]:
    """Thread factories compiled from :data:`PETERSON_TEXT` (procs p0, p1)."""
    program = parse_program(PETERSON_TEXT, shared=("turn", "shared"))
    return {f"p{i}": (lambda i=i: program.thread(i=i)) for i in range(2)}


def naive_lock_text_program(n: int = 2) -> Mapping[Any, ThreadFactory]:
    """Thread factories for the broken protocol (exhaustively refutable)."""
    program = parse_program(NAIVE_LOCK_TEXT, shared=("lock",))
    return {f"p{i}": (lambda i=i: program.thread(i=i)) for i in range(n)}


def mislabeled_bakery_program(n: int = 2) -> Mapping[Any, ThreadFactory]:
    """Thread factories for the improperly-labeled Bakery variant."""
    program = parse_program(MISLABELED_BAKERY_TEXT, shared=("shared",))
    return {f"p{i}": (lambda i=i: program.thread(i=i, n=n)) for i in range(n)}
