"""A tiny pseudocode language for shared-memory algorithms.

The paper presents the Bakery algorithm as pseudocode (Figure 6); this
module lets such algorithms be *written as text* and compiled to thread
bodies for the runner — so Figure 6 can live in the repository verbatim
rather than hand-translated.

Language
--------
Line-oriented, indentation-scoped (multiples of two spaces)::

    choosing[i] := 1 sync          # write (sync → labeled operation)
    m := 0                         # local variable assignment
    for j in 0..n-1:               # inclusive integer range
      if j != i:
        t := read number[j] sync   # shared read into a local
        m := max(m, t)
    await choosing[j] == 0 sync    # spin until the shared location holds v
    cs_enter
    cs_exit
    while true:                    # loops; `break` exits the innermost

Expressions are evaluated with Python's evaluator over the local-variable
environment plus the thread parameters (e.g. ``i``, ``n``) and the safe
builtins ``max``/``min``/``abs``; shared memory is touched **only** by
the dedicated statements (``x := e sync?`` writes when ``x`` contains
``[`` or is declared shared, ``v := read x`` reads, ``await x == e``
spins), so every memory operation is explicit in the text, as in the
paper's figures.

Grammar summary (``sync`` marks labeled operations)::

    stmt := target ':=' expr ['sync']          # write or local assign
          | name ':=' 'read' loc ['sync']      # shared read
          | 'await' loc '==' expr ['sync']     # spin loop
          | 'if' expr ':' | 'elif' expr ':' | 'else:'
          | 'while' expr ':' | 'for' name 'in' expr '..' expr ':'
          | 'break' | 'continue' | 'pass'
          | 'cs_enter' | 'cs_exit'

A *location* is a name, optionally with a bracketed index expression
(``number[j]``); index expressions are evaluated in the environment, so
``number[j]`` with ``j = 2`` touches the location ``"number[2]"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.core.errors import ParseError, ProgramError
from repro.programs.ops import CsEnter, CsExit, Read, Request, Write

__all__ = ["parse_program", "compile_program", "PseudoProgram"]

_SAFE_BUILTINS = {"max": max, "min": min, "abs": abs, "len": len, "true": 1, "false": 0}

_LOC_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)(\[(.+)\])?$")


# -- AST ------------------------------------------------------------------------


@dataclass
class _Node:
    line: int


@dataclass
class _Assign(_Node):
    target: str  # raw location/name text
    expr: str
    sync: bool
    shared: bool


@dataclass
class _SharedRead(_Node):
    name: str
    loc: str
    sync: bool


@dataclass
class _Await(_Node):
    loc: str
    expr: str
    sync: bool


@dataclass
class _If(_Node):
    arms: list[tuple[str | None, list["_Node"]]] = field(default_factory=list)


@dataclass
class _While(_Node):
    cond: str
    body: list["_Node"] = field(default_factory=list)


@dataclass
class _For(_Node):
    var: str
    lo: str
    hi: str
    body: list["_Node"] = field(default_factory=list)


@dataclass
class _Simple(_Node):
    kind: str  # break / continue / pass / cs_enter / cs_exit


@dataclass
class PseudoProgram:
    """A parsed pseudocode program (see :func:`parse_program`)."""

    body: list[_Node]
    shared_names: frozenset[str]

    def thread(self, **params: Any) -> Iterator[Request]:
        """Instantiate a thread body with the given parameters."""
        return _execute(self.body, dict(params), self.shared_names)


# -- parser ---------------------------------------------------------------------


def parse_program(text: str, *, shared: tuple[str, ...] = ()) -> PseudoProgram:
    """Parse pseudocode into a program.

    ``shared`` lists bare names that denote shared locations when written
    (bracketed names like ``number[j]`` are always shared).
    """
    lines: list[tuple[int, int, str]] = []  # (lineno, indent, content)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip())
        if indent % 2:
            raise ParseError(f"line {lineno}: indentation must be multiples of 2")
        lines.append((lineno, indent // 2, stripped.strip()))
    body, rest = _parse_block(lines, 0, 0)
    if rest != len(lines):
        raise ParseError(f"line {lines[rest][0]}: unexpected dedent structure")
    return PseudoProgram(body, frozenset(shared))


def _parse_block(
    lines: list[tuple[int, int, str]], pos: int, depth: int
) -> tuple[list[_Node], int]:
    body: list[_Node] = []
    while pos < len(lines):
        lineno, indent, content = lines[pos]
        if indent < depth:
            break
        if indent > depth:
            raise ParseError(f"line {lineno}: unexpected indent")
        node, pos = _parse_stmt(lines, pos, depth)
        body.append(node)
    return body, pos


def _parse_stmt(
    lines: list[tuple[int, int, str]], pos: int, depth: int
) -> tuple[_Node, int]:
    lineno, _, content = lines[pos]

    if content in ("break", "continue", "pass", "cs_enter", "cs_exit"):
        return _Simple(lineno, content), pos + 1

    if content.startswith("await "):
        rest, sync = _strip_sync(content[len("await "):])
        if "==" not in rest:
            raise ParseError(f"line {lineno}: await needs 'loc == expr'")
        loc, expr = (s.strip() for s in rest.split("==", 1))
        return _Await(lineno, loc, expr, sync), pos + 1

    m = re.match(r"^if (.+):$", content)
    if m:
        node = _If(lineno)
        body, pos = _parse_block(lines, pos + 1, depth + 1)
        node.arms.append((m.group(1), body))
        while pos < len(lines) and lines[pos][1] == depth:
            nxt = lines[pos][2]
            m2 = re.match(r"^elif (.+):$", nxt)
            if m2:
                body, pos = _parse_block(lines, pos + 1, depth + 1)
                node.arms.append((m2.group(1), body))
                continue
            if nxt == "else:":
                body, pos = _parse_block(lines, pos + 1, depth + 1)
                node.arms.append((None, body))
            break
        return node, pos

    m = re.match(r"^while (.+):$", content)
    if m:
        body, pos = _parse_block(lines, pos + 1, depth + 1)
        return _While(lineno, m.group(1), body), pos

    m = re.match(r"^for ([A-Za-z_][A-Za-z0-9_]*) in (.+)\.\.(.+):$", content)
    if m:
        body, pos = _parse_block(lines, pos + 1, depth + 1)
        return _For(lineno, m.group(1), m.group(2).strip(), m.group(3).strip(), body), pos

    if ":=" in content:
        target, rhs = (s.strip() for s in content.split(":=", 1))
        rhs, sync = _strip_sync(rhs)
        m = re.match(r"^read\s+(.+)$", rhs)
        if m:
            if "[" in target:
                raise ParseError(f"line {lineno}: read target must be a local name")
            return _SharedRead(lineno, target, m.group(1).strip(), sync), pos + 1
        shared = "[" in target
        return _Assign(lineno, target, rhs, sync, shared), pos + 1

    raise ParseError(f"line {lineno}: cannot parse {content!r}")


def _strip_sync(text: str) -> tuple[str, bool]:
    text = text.strip()
    if text.endswith(" sync"):
        return text[: -len(" sync")].strip(), True
    return text, False


# -- interpreter ------------------------------------------------------------------


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _eval(expr: str, env: Mapping[str, Any], lineno: int) -> Any:
    try:
        return eval(expr, {"__builtins__": {}}, {**_SAFE_BUILTINS, **env})
    except Exception as exc:
        raise ProgramError(f"line {lineno}: {expr!r}: {exc}") from exc


def _loc_name(loc: str, env: Mapping[str, Any], lineno: int) -> str:
    m = _LOC_RE.match(loc.strip())
    if m is None:
        raise ProgramError(f"line {lineno}: bad location {loc!r}")
    base, _, index = m.groups()
    if index is None:
        return base
    return f"{base}[{_eval(index, env, lineno)}]"


def _execute(
    body: list[_Node], env: dict[str, Any], shared_names: frozenset[str]
) -> Iterator[Request]:
    for node in body:
        match node:
            case _Simple(kind="break"):
                raise _Break()
            case _Simple(kind="continue"):
                raise _Continue()
            case _Simple(kind="pass"):
                pass
            case _Simple(kind="cs_enter"):
                yield CsEnter()
            case _Simple(kind="cs_exit"):
                yield CsExit()
            case _Assign(target=target, expr=expr, sync=sync, shared=shared):
                base = target.split("[", 1)[0]
                value = _eval(expr, env, node.line)
                if shared or base in shared_names:
                    yield Write(_loc_name(target, env, node.line), int(value), sync)
                else:
                    env[target] = value
            case _SharedRead(name=name, loc=loc, sync=sync):
                value = yield Read(_loc_name(loc, env, node.line), sync)
                env[name] = value
            case _Await(loc=loc, expr=expr, sync=sync):
                want = _eval(expr, env, node.line)
                while True:
                    value = yield Read(_loc_name(loc, env, node.line), sync)
                    if value == want:
                        break
            case _If(arms=arms):
                for cond, arm_body in arms:
                    if cond is None or _eval(cond, env, node.line):
                        yield from _execute(arm_body, env, shared_names)
                        break
            case _While(cond=cond, body=loop_body):
                while _eval(cond, env, node.line):
                    try:
                        yield from _execute(loop_body, env, shared_names)
                    except _Break:
                        break
                    except _Continue:
                        continue
            case _For(var=var, lo=lo, hi=hi, body=loop_body):
                lo_v = int(_eval(lo, env, node.line))
                hi_v = int(_eval(hi, env, node.line))
                for v in range(lo_v, hi_v + 1):
                    env[var] = v
                    try:
                        yield from _execute(loop_body, env, shared_names)
                    except _Break:
                        break
                    except _Continue:
                        continue
            case _:
                raise ProgramError(f"unknown node {node!r}")


def compile_program(
    text: str, *, shared: tuple[str, ...] = ()
) -> "PseudoProgram":
    """Alias of :func:`parse_program`, reading as 'compile to a program'."""
    return parse_program(text, shared=shared)
