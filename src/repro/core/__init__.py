"""Core data model: operations, histories, views, legality.

This subpackage implements Section 2 of the paper — the objects every other
layer (orders, specs, checkers, machines, programs) is built from.
"""

from repro.core.errors import (
    AmbiguousValueError,
    CheckerError,
    EngineError,
    HistoryError,
    IllegalViewError,
    MachineError,
    MalformedOperationError,
    ParseError,
    ProgramError,
    ReproError,
    SchedulerError,
    SpecError,
)
from repro.core.history import HistoryBuilder, ProcessorHistory, SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation, OpKind, read, rmw, write
from repro.core.view import (
    View,
    check_view_contents,
    first_legality_violation,
    is_legal_sequence,
)

__all__ = [
    "AmbiguousValueError",
    "CheckerError",
    "EngineError",
    "HistoryBuilder",
    "HistoryError",
    "IllegalViewError",
    "INITIAL_VALUE",
    "is_legal_sequence",
    "check_view_contents",
    "first_legality_violation",
    "MachineError",
    "MalformedOperationError",
    "Operation",
    "OpKind",
    "ParseError",
    "ProcessorHistory",
    "ProgramError",
    "read",
    "ReproError",
    "rmw",
    "SchedulerError",
    "SpecError",
    "SystemHistory",
    "View",
    "write",
]
