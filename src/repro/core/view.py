"""Processor views: legal sequential histories (paper Section 2).

A *view* ``S_{p+δp}`` for processor ``p`` is a single sequence containing all
of ``p``'s operations plus a model-specified subset ``δ_p`` of other
processors' operations.  A view is *legal* when every read returns the value
written by the most recent preceding write to the same location in the view
(or the initial value 0 when no such write exists).

The paper's entire framework rests on legality plus three per-model
parameters; this module implements legality exactly once so that every
checker, machine and property test shares the same definition.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.errors import HistoryError, IllegalViewError
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation

__all__ = [
    "View",
    "first_legality_violation",
    "is_legal_sequence",
    "check_view_contents",
]


def first_legality_violation(
    ops: Sequence[Operation], initial: int = INITIAL_VALUE
) -> tuple[int, Operation, int] | None:
    """Return the first legality violation in ``ops`` or ``None``.

    Scans the sequence maintaining the current value of every location.  The
    read half of an operation must observe the current value; the write half
    then replaces it.  RMW operations exercise both rules atomically.

    Returns
    -------
    ``None`` if the sequence is legal, otherwise ``(position, operation,
    expected_value)`` identifying the first read that returned the wrong
    value.
    """
    state: dict[str, int] = {}
    for i, op in enumerate(ops):
        if op.is_read:
            expected = state.get(op.location, initial)
            if op.value_read != expected:
                return (i, op, expected)
        if op.is_write:
            state[op.location] = op.value_written
    return None


def is_legal_sequence(ops: Sequence[Operation], initial: int = INITIAL_VALUE) -> bool:
    """True when every read in ``ops`` observes the most recent write."""
    return first_legality_violation(ops, initial) is None


def check_view_contents(
    ops: Sequence[Operation], history: SystemHistory, proc: Any
) -> None:
    """Validate that ``ops`` could be the *contents* of a view for ``proc``.

    Checks the paper's set-of-operations requirement: the view must contain
    every operation of ``proc`` exactly once, and only operations drawn from
    the history.  (Which *remote* operations must appear is model-specific
    and checked by the model's spec, not here.)

    Raises
    ------
    IllegalViewError
        If an operation is duplicated, foreign to the history, or one of
        ``proc``'s operations is missing.
    """
    seen: set[tuple[Any, int]] = set()
    for op in ops:
        try:
            known = history.op(op.proc, op.index)
        except HistoryError:
            known = None
        if known != op:
            raise IllegalViewError(f"{op} is not an operation of the history")
        if op.uid in seen:
            raise IllegalViewError(f"{op} appears more than once in the view")
        seen.add(op.uid)
    for op in history.ops_of(proc):
        if op.uid not in seen:
            raise IllegalViewError(f"view for {proc!r} is missing its own {op}")


class View(Sequence[Operation]):
    """An ordered, legal view ``S_{p+δp}`` of the shared memory for one processor.

    Instances are validated at construction: the sequence must be legal, must
    contain all of the owner's operations, and must not duplicate or invent
    operations.  Model-specific requirements (the contents of ``δ_p``,
    ordering constraints, mutual consistency) are enforced by
    :mod:`repro.spec` and :mod:`repro.checking`, which *produce* views.
    """

    __slots__ = ("_proc", "_ops", "_positions")

    def __init__(
        self,
        proc: Any,
        ops: Iterable[Operation],
        history: SystemHistory | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self._proc = proc
        self._ops = tuple(ops)
        self._positions = {op.uid: i for i, op in enumerate(self._ops)}
        if validate:
            violation = first_legality_violation(self._ops)
            if violation is not None:
                pos, op, expected = violation
                raise IllegalViewError(
                    f"view for {proc!r} is not legal: position {pos} {op} "
                    f"should have read {expected}"
                )
            if history is not None:
                check_view_contents(self._ops, history, proc)

    @property
    def proc(self) -> Any:
        """The processor whose perspective this view records."""
        return self._proc

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, i):  # type: ignore[override]
        return self._ops[i]

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._proc == other._proc and self._ops == other._ops

    def __hash__(self) -> int:
        return hash((self._proc, self._ops))

    def __repr__(self) -> str:
        body = " ".join(str(op) for op in self._ops)
        return f"S_{{{self._proc}}}: {body}"

    # -- queries -------------------------------------------------------------

    def position(self, op: Operation) -> int:
        """Index of ``op`` within the view.

        Raises
        ------
        IllegalViewError
            If the operation is not part of the view.
        """
        try:
            return self._positions[op.uid]
        except KeyError:
            raise IllegalViewError(f"{op} does not appear in view for {self._proc!r}") from None

    def __contains__(self, op: object) -> bool:
        return isinstance(op, Operation) and op.uid in self._positions

    def orders(self, first: Operation, second: Operation) -> bool:
        """True when ``first`` precedes ``second`` in this view."""
        return self.position(first) < self.position(second)

    def restricted(self, predicate) -> tuple[Operation, ...]:
        """Subsequence of operations satisfying ``predicate`` (e.g. ``S_p|_w``).

        The paper writes ``S_{p+w}|_w`` for the view with all reads removed
        and ``S_p|_ℓ`` for its labeled subsequence; this implements that
        restriction operator.
        """
        return tuple(op for op in self._ops if predicate(op))

    @property
    def writes_only(self) -> tuple[Operation, ...]:
        """``S|_w``: the view restricted to write-half operations."""
        return self.restricted(lambda op: op.is_write)

    @property
    def labeled_only(self) -> tuple[Operation, ...]:
        """``S|_ℓ``: the view restricted to labeled operations."""
        return self.restricted(lambda op: op.labeled)

    def writes_to(self, location: str) -> tuple[Operation, ...]:
        """The view's write order for one location (coherence order slice)."""
        return self.restricted(lambda op: op.is_write and op.location == location)
