"""Serialization of histories and views to/from JSON-compatible structures.

The benchmark harness and the lattice-enumeration cache persist histories to
disk; this module provides a stable, versioned wire format.  The compact
litmus *text* notation (``p: w(x)1 r(y)0 | q: ...``) lives in
:mod:`repro.litmus.dsl`; this module is the structured counterpart.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import ParseError
from repro.core.history import ProcessorHistory, SystemHistory
from repro.core.operation import Operation, OpKind
from repro.core.view import View

__all__ = [
    "FORMAT_VERSION",
    "operation_to_dict",
    "operation_from_dict",
    "history_to_dict",
    "history_from_dict",
    "history_to_json",
    "history_from_json",
    "view_to_dict",
    "view_from_dict",
    "check_result_to_dict",
    "check_result_from_dict",
]

#: Bumped on any incompatible change to the wire format.
FORMAT_VERSION = 1


def operation_to_dict(op: Operation) -> dict[str, Any]:
    """Encode one operation as a plain dictionary."""
    d: dict[str, Any] = {
        "proc": op.proc,
        "index": op.index,
        "kind": op.kind.value,
        "location": op.location,
        "value": op.value,
    }
    if op.read_value is not None:
        d["read_value"] = op.read_value
    if op.labeled:
        d["labeled"] = True
    return d


def operation_from_dict(d: dict[str, Any]) -> Operation:
    """Decode one operation from :func:`operation_to_dict` output."""
    try:
        return Operation(
            proc=d["proc"],
            index=d["index"],
            kind=OpKind(d["kind"]),
            location=d["location"],
            value=d["value"],
            read_value=d.get("read_value"),
            labeled=d.get("labeled", False),
        )
    except (KeyError, ValueError) as exc:
        raise ParseError(f"malformed operation record {d!r}: {exc}") from exc


def history_to_dict(history: SystemHistory) -> dict[str, Any]:
    """Encode a system history as a versioned plain dictionary."""
    return {
        "version": FORMAT_VERSION,
        "processors": {
            str(proc): [operation_to_dict(op) for op in history[proc]]
            for proc in history.procs
        },
    }


def history_from_dict(d: dict[str, Any]) -> SystemHistory:
    """Decode a system history from :func:`history_to_dict` output."""
    version = d.get("version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported history format version {version!r}")
    try:
        processors = d["processors"]
    except KeyError as exc:
        raise ParseError("history record lacks 'processors'") from exc
    return SystemHistory(
        ProcessorHistory(proc, [operation_from_dict(o) for o in ops])
        for proc, ops in processors.items()
    )


def history_to_json(history: SystemHistory, *, indent: int | None = None) -> str:
    """Encode a system history as a JSON string."""
    return json.dumps(history_to_dict(history), indent=indent, sort_keys=True)


def history_from_json(text: str) -> SystemHistory:
    """Decode a system history from :func:`history_to_json` output."""
    try:
        d = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    return history_from_dict(d)


def view_to_dict(view: View) -> dict[str, Any]:
    """Encode a view (owner + operation identity sequence)."""
    return {
        "version": FORMAT_VERSION,
        "proc": view.proc,
        "ops": [operation_to_dict(op) for op in view],
    }


def view_from_dict(d: dict[str, Any], history: SystemHistory | None = None) -> View:
    """Decode a view; validates against ``history`` when provided."""
    version = d.get("version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported view format version {version!r}")
    return View(
        d["proc"], [operation_from_dict(o) for o in d["ops"]], history
    )


# -- check results (verdict + witness/counterexample) --------------------------


def _witness_to_dict(witness: Any) -> dict[str, Any]:
    d: dict[str, Any] = {
        "views": [
            view_to_dict(witness.views[proc])
            for proc in sorted(witness.views, key=str)
        ]
    }
    if witness.reads_from is not None:
        d["reads_from"] = [
            {
                "read": operation_to_dict(r),
                "source": None if src is None else operation_to_dict(src),
            }
            for r, src in witness.reads_from.items()
        ]
    if witness.coherence is not None:
        d["coherence"] = {
            loc: [operation_to_dict(w) for w in chain]
            for loc, chain in witness.coherence.items()
        }
    return d


def _witness_from_dict(d: dict[str, Any], history: SystemHistory | None):
    from repro.kernel.results import Witness

    views = {}
    for vd in d["views"]:
        view = view_from_dict(vd, history)
        views[view.proc] = view
    reads_from = None
    if "reads_from" in d:
        reads_from = {
            operation_from_dict(e["read"]): (
                None if e["source"] is None else operation_from_dict(e["source"])
            )
            for e in d["reads_from"]
        }
    coherence = None
    if "coherence" in d:
        coherence = {
            loc: tuple(operation_from_dict(o) for o in chain)
            for loc, chain in d["coherence"].items()
        }
    return Witness(views=views, reads_from=reads_from, coherence=coherence)


def _counterexample_to_dict(cx: Any) -> dict[str, Any]:
    d: dict[str, Any] = {"model": cx.model, "kind": cx.kind, "detail": cx.detail}
    if cx.proc is not None:
        d["proc"] = cx.proc
    if cx.cycle:
        d["cycle"] = [operation_to_dict(op) for op in cx.cycle]
    if cx.stuck_after:
        d["stuck_after"] = cx.stuck_after
    if cx.blocked:
        d["blocked"] = [
            {"op": operation_to_dict(op), "why": why} for op, why in cx.blocked
        ]
    return d


def _counterexample_from_dict(d: dict[str, Any]):
    from repro.kernel.results import Counterexample

    return Counterexample(
        model=d["model"],
        kind=d["kind"],
        detail=d["detail"],
        proc=d.get("proc"),
        cycle=tuple(operation_from_dict(o) for o in d.get("cycle", ())),
        stuck_after=d.get("stuck_after", 0),
        blocked=tuple(
            (operation_from_dict(e["op"]), e["why"]) for e in d.get("blocked", ())
        ),
    )


def check_result_to_dict(result: Any) -> dict[str, Any]:
    """Encode a :class:`~repro.kernel.results.CheckResult`, views included.

    The engine's result store uses this (under ``--store-views``) so that a
    positive verdict's witness survives the trip to disk instead of being
    reduced to a boolean.
    """
    d: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "model": result.model,
        "allowed": result.allowed,
        "reason": result.reason,
        "explored": result.explored,
        "views": [
            view_to_dict(result.views[proc])
            for proc in sorted(result.views, key=str)
        ],
    }
    if result.witness is not None:
        d["witness"] = _witness_to_dict(result.witness)
    if result.counterexample is not None:
        d["counterexample"] = _counterexample_to_dict(result.counterexample)
    return d


def check_result_from_dict(
    d: dict[str, Any], history: SystemHistory | None = None
):
    """Decode :func:`check_result_to_dict` output back to a ``CheckResult``.

    Views are re-validated against ``history`` when one is provided.  The
    decoded operations compare equal to (but are not identical with) the
    history's own objects, like every decoder in this module.
    """
    from repro.kernel.results import CheckResult

    version = d.get("version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported check-result format version {version!r}")
    try:
        views = {}
        for vd in d["views"]:
            view = view_from_dict(vd, history)
            views[view.proc] = view
        return CheckResult(
            model=d["model"],
            allowed=d["allowed"],
            views=views,
            reason=d.get("reason", ""),
            explored=d.get("explored", 0),
            witness=(
                _witness_from_dict(d["witness"], history)
                if "witness" in d
                else None
            ),
            counterexample=(
                _counterexample_from_dict(d["counterexample"])
                if "counterexample" in d
                else None
            ),
        )
    except KeyError as exc:
        raise ParseError(f"malformed check-result record: missing {exc}") from exc
