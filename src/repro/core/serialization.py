"""Serialization of histories and views to/from JSON-compatible structures.

The benchmark harness and the lattice-enumeration cache persist histories to
disk; this module provides a stable, versioned wire format.  The compact
litmus *text* notation (``p: w(x)1 r(y)0 | q: ...``) lives in
:mod:`repro.litmus.dsl`; this module is the structured counterpart.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import ParseError
from repro.core.history import ProcessorHistory, SystemHistory
from repro.core.operation import Operation, OpKind
from repro.core.view import View

__all__ = [
    "FORMAT_VERSION",
    "operation_to_dict",
    "operation_from_dict",
    "history_to_dict",
    "history_from_dict",
    "history_to_json",
    "history_from_json",
    "view_to_dict",
    "view_from_dict",
]

#: Bumped on any incompatible change to the wire format.
FORMAT_VERSION = 1


def operation_to_dict(op: Operation) -> dict[str, Any]:
    """Encode one operation as a plain dictionary."""
    d: dict[str, Any] = {
        "proc": op.proc,
        "index": op.index,
        "kind": op.kind.value,
        "location": op.location,
        "value": op.value,
    }
    if op.read_value is not None:
        d["read_value"] = op.read_value
    if op.labeled:
        d["labeled"] = True
    return d


def operation_from_dict(d: dict[str, Any]) -> Operation:
    """Decode one operation from :func:`operation_to_dict` output."""
    try:
        return Operation(
            proc=d["proc"],
            index=d["index"],
            kind=OpKind(d["kind"]),
            location=d["location"],
            value=d["value"],
            read_value=d.get("read_value"),
            labeled=d.get("labeled", False),
        )
    except (KeyError, ValueError) as exc:
        raise ParseError(f"malformed operation record {d!r}: {exc}") from exc


def history_to_dict(history: SystemHistory) -> dict[str, Any]:
    """Encode a system history as a versioned plain dictionary."""
    return {
        "version": FORMAT_VERSION,
        "processors": {
            str(proc): [operation_to_dict(op) for op in history[proc]]
            for proc in history.procs
        },
    }


def history_from_dict(d: dict[str, Any]) -> SystemHistory:
    """Decode a system history from :func:`history_to_dict` output."""
    version = d.get("version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported history format version {version!r}")
    try:
        processors = d["processors"]
    except KeyError as exc:
        raise ParseError("history record lacks 'processors'") from exc
    return SystemHistory(
        ProcessorHistory(proc, [operation_from_dict(o) for o in ops])
        for proc, ops in processors.items()
    )


def history_to_json(history: SystemHistory, *, indent: int | None = None) -> str:
    """Encode a system history as a JSON string."""
    return json.dumps(history_to_dict(history), indent=indent, sort_keys=True)


def history_from_json(text: str) -> SystemHistory:
    """Decode a system history from :func:`history_to_json` output."""
    try:
        d = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    return history_from_dict(d)


def view_to_dict(view: View) -> dict[str, Any]:
    """Encode a view (owner + operation identity sequence)."""
    return {
        "version": FORMAT_VERSION,
        "proc": view.proc,
        "ops": [operation_to_dict(op) for op in view],
    }


def view_from_dict(d: dict[str, Any], history: SystemHistory | None = None) -> View:
    """Decode a view; validates against ``history`` when provided."""
    version = d.get("version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported view format version {version!r}")
    return View(
        d["proc"], [operation_from_dict(o) for o in d["ops"]], history
    )
