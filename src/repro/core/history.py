"""Processor and system execution histories (paper Section 2).

A *processor execution history* ``H_p`` is the sequence of operations issued
by processor ``p``; a *system execution history* ``H`` is the set of all
processor histories.  Memory models are characterized by the set of system
histories they allow, so these classes are the central value type of the
whole framework: checkers consume them, machines produce them, generators
enumerate them.

Both classes are immutable after construction and validate their structural
invariants eagerly (indices are dense and start at zero; one history per
processor; identities are unique).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import HistoryError
from repro.core.operation import Operation, read, rmw, write

__all__ = ["ProcessorHistory", "SystemHistory", "HistoryBuilder"]


class ProcessorHistory(Sequence[Operation]):
    """The totally ordered sequence of operations issued by one processor.

    Program order (``->po``) over a processor's operations is exactly the
    order of this sequence.
    """

    __slots__ = ("_proc", "_ops")

    def __init__(self, proc: Any, ops: Iterable[Operation]) -> None:
        ops = tuple(ops)
        for i, op in enumerate(ops):
            if op.proc != proc:
                raise HistoryError(
                    f"operation {op} belongs to processor {op.proc!r}, "
                    f"not {proc!r}"
                )
            if op.index != i:
                raise HistoryError(
                    f"operation {op} has index {op.index} but sits at "
                    f"position {i} of {proc!r}'s history"
                )
        self._proc = proc
        self._ops = ops

    @property
    def proc(self) -> Any:
        """The processor whose execution this history records."""
        return self._proc

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, i):  # type: ignore[override]
        return self._ops[i]

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessorHistory):
            return NotImplemented
        return self._proc == other._proc and self._ops == other._ops

    def __hash__(self) -> int:
        return hash((self._proc, self._ops))

    def __repr__(self) -> str:
        body = " ".join(str(op) for op in self._ops)
        return f"{self._proc}: {body}"

    # -- convenience -------------------------------------------------------------

    @property
    def reads(self) -> tuple[Operation, ...]:
        """All operations with a read half, in program order."""
        return tuple(op for op in self._ops if op.is_read)

    @property
    def writes(self) -> tuple[Operation, ...]:
        """All operations with a write half, in program order."""
        return tuple(op for op in self._ops if op.is_write)

    @property
    def labeled(self) -> tuple[Operation, ...]:
        """All labeled (synchronization) operations, in program order."""
        return tuple(op for op in self._ops if op.labeled)


class SystemHistory(Mapping[Any, ProcessorHistory]):
    """A system execution history: one processor history per processor.

    This is the object a memory model either *allows* or *rejects*.  The
    mapping interface is keyed by processor identifier; iteration order is
    the (sorted, when orderable) processor order so that renderings and
    enumeration are deterministic.
    """

    __slots__ = ("_histories", "_procs", "_all_ops", "_by_uid")

    def __init__(self, histories: Iterable[ProcessorHistory]) -> None:
        hs = list(histories)
        procs = [h.proc for h in hs]
        if len(set(procs)) != len(procs):
            raise HistoryError(f"duplicate processor histories for {procs!r}")
        try:
            order = sorted(range(len(hs)), key=lambda i: str(procs[i]))
        except TypeError:  # pragma: no cover - unorderable exotic ids
            order = list(range(len(hs)))
        self._histories = {hs[i].proc: hs[i] for i in order}
        self._procs = tuple(self._histories)
        all_ops: list[Operation] = []
        by_uid: dict[tuple[Any, int], Operation] = {}
        for h in self._histories.values():
            for op in h:
                by_uid[op.uid] = op
                all_ops.append(op)
        self._all_ops = tuple(all_ops)
        self._by_uid = by_uid

    # -- Mapping interface --------------------------------------------------------

    def __getitem__(self, proc: Any) -> ProcessorHistory:
        return self._histories[proc]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._procs)

    def __len__(self) -> int:
        return len(self._procs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemHistory):
            return NotImplemented
        return self._histories == other._histories

    def __hash__(self) -> int:
        return hash(tuple(self._histories.values()))

    def __repr__(self) -> str:
        return "\n".join(repr(h) for h in self._histories.values())

    # -- accessors ---------------------------------------------------------------

    @property
    def procs(self) -> tuple[Any, ...]:
        """Processor identifiers, in deterministic order."""
        return self._procs

    @property
    def operations(self) -> tuple[Operation, ...]:
        """Every operation of every processor (grouped by processor)."""
        return self._all_ops

    def op(self, proc: Any, index: int) -> Operation:
        """Look an operation up by its ``(proc, index)`` identity."""
        try:
            return self._by_uid[(proc, index)]
        except KeyError:
            raise HistoryError(f"no operation ({proc!r}, {index})") from None

    def ops_of(self, proc: Any) -> tuple[Operation, ...]:
        """All operations of ``proc``, in program order."""
        return tuple(self._histories[proc])

    @property
    def locations(self) -> tuple[str, ...]:
        """All memory locations touched by any operation, sorted."""
        return tuple(sorted({op.location for op in self._all_ops}))

    @property
    def reads(self) -> tuple[Operation, ...]:
        """Every operation with a read half."""
        return tuple(op for op in self._all_ops if op.is_read)

    @property
    def writes(self) -> tuple[Operation, ...]:
        """Every operation with a write half."""
        return tuple(op for op in self._all_ops if op.is_write)

    @property
    def labeled_ops(self) -> tuple[Operation, ...]:
        """Every labeled (synchronization) operation."""
        return tuple(op for op in self._all_ops if op.labeled)

    def writes_to(self, location: str) -> tuple[Operation, ...]:
        """Every write-half operation on ``location``."""
        return tuple(
            op for op in self._all_ops if op.is_write and op.location == location
        )

    def reads_of(self, location: str) -> tuple[Operation, ...]:
        """Every read-half operation on ``location``."""
        return tuple(
            op for op in self._all_ops if op.is_read and op.location == location
        )

    def remote_ops(self, proc: Any, predicate: Callable[[Operation], bool]) -> tuple[Operation, ...]:
        """Operations of processors other than ``proc`` satisfying ``predicate``."""
        return tuple(
            op for op in self._all_ops if op.proc != proc and predicate(op)
        )

    def remote_writes(self, proc: Any) -> tuple[Operation, ...]:
        """The delta-set ``w``: write operations of the other processors.

        This is the most common choice of ``δ_p`` in the paper: only writes
        change memory state, so a processor's view need only include remote
        writes (Section 2, parameter 1).
        """
        return self.remote_ops(proc, lambda op: op.is_write)

    # -- transformations ----------------------------------------------------------

    def map_operations(
        self, transform: Callable[[Operation], Operation]
    ) -> "SystemHistory":
        """Apply ``transform`` to every operation, preserving structure."""
        return SystemHistory(
            ProcessorHistory(h.proc, (transform(op) for op in h))
            for h in self._histories.values()
        )

    def relabel(self, should_label: Callable[[Operation], bool]) -> "SystemHistory":
        """Return a copy where ``labeled`` is recomputed by ``should_label``."""
        return self.map_operations(lambda op: op.with_labeled(should_label(op)))

    def project(
        self, predicate: Callable[[Operation], bool]
    ) -> tuple["SystemHistory", dict[tuple[Any, int], Operation]]:
        """Sub-history of the operations satisfying ``predicate``.

        Operations are reindexed densely per processor so the result is a
        well-formed :class:`SystemHistory` (used e.g. to treat the labeled
        operations of an RC execution as a history in their own right,
        Section 3.4).  Returns the sub-history together with a map from
        each projected operation's identity back to the original operation.

        Processors with no surviving operations are dropped.
        """
        back: dict[tuple[Any, int], Operation] = {}
        histories: list[ProcessorHistory] = []
        for proc in self._procs:
            new_ops: list[Operation] = []
            for op in self._histories[proc]:
                if predicate(op):
                    reindexed = Operation(
                        proc=op.proc,
                        index=len(new_ops),
                        kind=op.kind,
                        location=op.location,
                        value=op.value,
                        read_value=op.read_value,
                        labeled=op.labeled,
                    )
                    back[reindexed.uid] = op
                    new_ops.append(reindexed)
            if new_ops:
                histories.append(ProcessorHistory(proc, new_ops))
        return SystemHistory(histories), back

    def has_distinct_write_values(self) -> bool:
        """True when no two writes to the same location store the same value.

        The conventional discipline under which the writes-before relation is
        a function of the history; all fast-path checkers require it.
        """
        seen: set[tuple[str, int]] = set()
        for op in self._all_ops:
            if op.is_write:
                key = (op.location, op.value_written)
                if key in seen:
                    return False
                seen.add(key)
        return True


class HistoryBuilder:
    """Fluent construction of :class:`SystemHistory` values.

    Example
    -------
    The Figure 1 history (allowed by TSO but not SC)::

        h = (HistoryBuilder()
             .proc("p").write("x", 1).read("y", 0)
             .proc("q").write("y", 1).read("x", 0)
             .build())
    """

    def __init__(self) -> None:
        self._ops: dict[Any, list[Operation]] = {}
        self._current: Any = None

    def proc(self, proc: Any) -> "HistoryBuilder":
        """Switch the builder to appending operations for ``proc``."""
        self._ops.setdefault(proc, [])
        self._current = proc
        return self

    def _require_proc(self) -> Any:
        if self._current is None:
            raise HistoryError("call .proc(name) before adding operations")
        return self._current

    def read(self, location: str, value: int, *, labeled: bool = False) -> "HistoryBuilder":
        """Append a read to the current processor."""
        p = self._require_proc()
        ops = self._ops[p]
        ops.append(read(p, len(ops), location, value, labeled=labeled))
        return self

    def write(self, location: str, value: int, *, labeled: bool = False) -> "HistoryBuilder":
        """Append a write to the current processor."""
        p = self._require_proc()
        ops = self._ops[p]
        ops.append(write(p, len(ops), location, value, labeled=labeled))
        return self

    def rmw(
        self, location: str, read_value: int, value: int, *, labeled: bool = False
    ) -> "HistoryBuilder":
        """Append a read-modify-write to the current processor."""
        p = self._require_proc()
        ops = self._ops[p]
        ops.append(rmw(p, len(ops), location, read_value, value, labeled=labeled))
        return self

    # Short aliases matching the paper's notation.
    r = read
    w = write
    u = rmw

    def build(self) -> SystemHistory:
        """Finalize and validate the system history."""
        return SystemHistory(
            ProcessorHistory(p, ops) for p, ops in self._ops.items()
        )
