"""Exception hierarchy for the shared-memory characterization framework.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch framework errors without also swallowing programming
mistakes such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HistoryError",
    "MalformedOperationError",
    "AmbiguousValueError",
    "IllegalViewError",
    "SpecError",
    "CheckerError",
    "MachineError",
    "SchedulerError",
    "ProgramError",
    "ParseError",
    "EngineError",
    "DiffError",
    "KernelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class HistoryError(ReproError):
    """A system or processor execution history is structurally invalid."""


class MalformedOperationError(HistoryError):
    """An operation violates a structural invariant (e.g. a read with no value)."""


class AmbiguousValueError(HistoryError):
    """A derived order cannot be computed because reads-from is ambiguous.

    The writes-before order (paper Section 2, "Writes-before order") relates a
    write ``w(x)v`` to every read ``r(x)v`` that returns the value it wrote.
    When two distinct writes store the same value into the same location, a
    read of that value has more than one candidate writer and the relation is
    not a function of the history alone.  Fast-path checkers require the
    conventional *distinct write values per location* discipline; the general
    solver enumerates reads-from choices instead of raising this error.
    """


class IllegalViewError(ReproError):
    """A sequence offered as a processor view violates legality.

    A view is *legal* (paper Section 2) when every read returns the value of
    the most recent preceding write to the same location, or the initial
    value when no write precedes it.
    """


class SpecError(ReproError):
    """A memory-model specification is internally inconsistent."""


class CheckerError(ReproError):
    """A consistency checker was invoked on input it cannot decide."""


class MachineError(ReproError):
    """An operational memory machine reached an invalid internal state."""


class SchedulerError(ReproError):
    """A scheduler was asked to choose from an empty or invalid event set."""


class ProgramError(ReproError):
    """A concurrent test program misused the thread/operation protocol."""


class ParseError(ReproError):
    """Litmus-notation text could not be parsed into a history."""


class EngineError(ReproError):
    """The batch-checking engine was given an invalid job, spec, or store."""


class DiffError(ReproError):
    """The differential fuzzer was given an invalid campaign, shape, or corpus."""


class KernelError(ReproError):
    """The constraint kernel was misconfigured (unknown backend, bad plane)."""
