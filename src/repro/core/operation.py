"""Memory operations: the atoms of execution histories.

The paper models a system as processors interacting through a shared memory
by executing *read* and *write* operations; each operation acts on a named
location and carries a value (Section 2).  Release consistency additionally
distinguishes *labeled* (synchronization) operations from *ordinary* ones
(Section 3.4), and footnote 4 treats read-modify-write operations as writes
that appear in every processor view.

An :class:`Operation` is immutable and identified by ``(proc, index)`` — its
issuing processor and its position in that processor's program order.  Two
operations with equal identity are the same operation; equality therefore
compares full field tuples and identity collisions with differing payloads
are rejected when histories are constructed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.errors import MalformedOperationError

__all__ = ["OpKind", "Operation", "read", "write", "rmw", "INITIAL_VALUE"]

#: Initial value of every memory location (paper Section 2, footnote 1).
INITIAL_VALUE = 0


class OpKind(enum.Enum):
    """The kind of a memory operation.

    ``RMW`` models atomic read-modify-write instructions such as SPARC
    ``swap`` or *test-and-set*.  Following the paper's footnotes 3 and 4 these
    are treated like writes for view-inclusion purposes, but they also return
    a value, so legality constrains both their read and write halves.
    """

    READ = "r"
    WRITE = "w"
    RMW = "u"  # "update"; reads `read_value` then writes `value` atomically

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Operation:
    """One read, write, or read-modify-write in an execution history.

    Parameters
    ----------
    proc:
        Identifier of the issuing processor (any hashable, conventionally a
        short string such as ``"p"`` or ``"q"``).
    index:
        Zero-based position of the operation in the issuing processor's
        execution history; defines program order.
    kind:
        :class:`OpKind` of the operation.
    location:
        Name of the memory location acted upon.
    value:
        For writes and RMWs, the value stored; for reads, the value returned.
    read_value:
        For RMWs only: the value the read half returned.  ``None`` otherwise.
    labeled:
        ``True`` for synchronization ("labeled") operations under release
        consistency; ordinary operations are unlabeled.  A labeled read is an
        *acquire* and a labeled write is a *release* (paper Section 3.4).
    """

    proc: Any
    index: int
    kind: OpKind
    location: str
    value: int
    read_value: int | None = None
    labeled: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise MalformedOperationError(
                f"operation index must be non-negative, got {self.index}"
            )
        if not isinstance(self.kind, OpKind):
            raise MalformedOperationError(f"kind must be an OpKind, got {self.kind!r}")
        if self.kind is OpKind.RMW:
            if self.read_value is None:
                raise MalformedOperationError("RMW operations require a read_value")
        elif self.read_value is not None:
            raise MalformedOperationError(
                f"{self.kind.name} operations must not carry a read_value"
            )

    # -- classification helpers -------------------------------------------------

    @property
    def uid(self) -> tuple[Any, int]:
        """Unique identity of this operation within a system history."""
        return (self.proc, self.index)

    @property
    def is_read(self) -> bool:
        """True for reads and for the read half of an RMW."""
        return self.kind in (OpKind.READ, OpKind.RMW)

    @property
    def is_write(self) -> bool:
        """True for writes and for the write half of an RMW."""
        return self.kind in (OpKind.WRITE, OpKind.RMW)

    @property
    def is_pure_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_pure_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_acquire(self) -> bool:
        """A labeled read is an acquire operation (Section 3.4)."""
        return self.labeled and self.is_read

    @property
    def is_release(self) -> bool:
        """A labeled write is a release operation (Section 3.4)."""
        return self.labeled and self.is_write

    @property
    def value_read(self) -> int:
        """The value observed by the read half of this operation.

        Raises
        ------
        MalformedOperationError
            If the operation has no read half.
        """
        if self.kind is OpKind.READ:
            return self.value
        if self.kind is OpKind.RMW:
            assert self.read_value is not None
            return self.read_value
        raise MalformedOperationError(f"{self} has no read half")

    @property
    def value_written(self) -> int:
        """The value stored by the write half of this operation.

        Raises
        ------
        MalformedOperationError
            If the operation has no write half.
        """
        if self.is_write:
            return self.value
        raise MalformedOperationError(f"{self} has no write half")

    # -- derived constructors ---------------------------------------------------

    def with_labeled(self, labeled: bool = True) -> "Operation":
        """Return a copy of this operation with its labeled flag replaced."""
        return Operation(
            proc=self.proc,
            index=self.index,
            kind=self.kind,
            location=self.location,
            value=self.value,
            read_value=self.read_value,
            labeled=labeled,
        )

    def __str__(self) -> str:
        label = "*" if self.labeled else ""
        if self.kind is OpKind.RMW:
            payload = f"{self.read_value}->{self.value}"
        else:
            payload = str(self.value)
        return f"{self.kind}{label}_{self.proc}({self.location}){payload}"

    __repr__ = __str__


def read(
    proc: Any, index: int, location: str, value: int, *, labeled: bool = False
) -> Operation:
    """Construct a read operation ``r_proc(location)value``."""
    return Operation(proc, index, OpKind.READ, location, value, labeled=labeled)


def write(
    proc: Any, index: int, location: str, value: int, *, labeled: bool = False
) -> Operation:
    """Construct a write operation ``w_proc(location)value``."""
    return Operation(proc, index, OpKind.WRITE, location, value, labeled=labeled)


def rmw(
    proc: Any,
    index: int,
    location: str,
    read_value: int,
    value: int,
    *,
    labeled: bool = False,
) -> Operation:
    """Construct a read-modify-write that observed ``read_value`` and stored ``value``."""
    return Operation(
        proc, index, OpKind.RMW, location, value, read_value=read_value, labeled=labeled
    )
