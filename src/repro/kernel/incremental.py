"""Incremental admission checking: sessions that grow a history in place.

The one-shot driver (:func:`repro.kernel.search.check_with_spec`) answers
"is this whole history allowed?".  The ROADMAP's north-star workload is a
*stream*: a client session appends one operation at a time and wants an
admit/deny verdict after every append.  Re-running the one-shot check per
append recompiles the bitmask planes and re-searches from scratch; this
module makes the check *extendable* instead, in three pieces:

:class:`HistoryStream`
    Owns the growing history.  On append it re-indexes the operation,
    rebuilds the cheap linear-pass arrays, and — when the append is
    *non-rescuing* (see below) — grows the compiled
    :class:`~repro.kernel.constraints.HistoryPlane` in place via
    :func:`~repro.kernel.constraints.extend_plane`, recomputing only the
    dirty mask rows instead of every rf/wb/causal plane.

:class:`IncrementalCheck`
    One session per compiled spec.  It remembers, per mutual-consistency
    candidate, *how* the candidate failed on the surviving prefix
    (``"cyclic"`` base vs ``"stuck"`` view search) and installs that
    failure memory as the ``reuse`` hook of the one-shot driver, so the
    resumed search skips every view search the prefix already exhausted
    and falls back to a full search exactly where reuse would be unsound.

Soundness (why a prefix failure survives an append)
---------------------------------------------------
Let ``z`` be the appended operation.  The session reuses prefix state only
when the prefix's reads-from attribution is unique and ``z`` is
*non-rescuing*: no existing read observes the value ``z`` writes to its
location.  Then (a) every ordering, bracketing and propagation edge
between old operations is unchanged — ``z`` is program-last on its
processor and observed by no read, so it only *gains* incoming edges; and
(b) deleting ``z`` from any legal view of the extended history leaves a
legal view of the prefix, because ``z`` is never the most recent matching
write for an old read (that would be a rescue).  Hence a candidate with no
legal views on the prefix has none on the extension: a ``"cyclic"`` base
stays cyclic (edges are only ever added) and replays as an uncounted
skip, and a ``"stuck"`` failure replays as a skip of the view search.
What an append *can* change is the acyclicity gate itself: ``z`` gains
outgoing per-candidate edges too (a read's own-view constraints order it
before later writes to its location; a coherence chain can place an
appended write before one an old read observes), so a previously-stuck
candidate may newly be cyclic — which a fresh search rejects without
counting it explored.  Every stuck hit after an append therefore replays
the gate through
:meth:`~repro.kernel.constraints.CompiledConstraints.base_acyclic`
before counting, keeping ``explored`` byte-identical.

Verdicts are byte-identical to a fresh :func:`check_with_spec` of every
prefix — same ``allowed``, same witness, same ``reason`` and ``explored``
— which ``tests/kernel/test_incremental.py`` pins for the whole catalog
and the property suite fuzzes.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

from repro.core.errors import CheckerError
from repro.core.history import ProcessorHistory, SystemHistory
from repro.core.operation import Operation
from repro.kernel.constraints import (
    HistoryPlane,
    extend_plane,
    history_plane,
    install_plane,
)
from repro.kernel.results import CheckResult, Counterexample
from repro.kernel.rf import impossible_read
from repro.kernel.search import SearchBudget, check_with_spec
from repro.obs import sink as _sink_state
from repro.obs.events import PrefixReuse, SessionAppend
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import MutualConsistency

__all__ = ["HistoryStream", "IncrementalCheck"]

#: The solver's universe limit; a stream refuses to grow past it.
_MAX_OPS = 64

#: The driver's DENY reason when the candidate enumeration runs dry.
_SEARCH_DENY = "no choice of views satisfies the model's requirements"

#: Mutual-consistency choices with exactly one (empty-chains) candidate.
_SINGLE_CANDIDATE = (MutualConsistency.NONE, MutualConsistency.IDENTICAL)


class HistoryStream:
    """A history that grows one operation at a time, plane and all.

    The stream owns the canonical :class:`SystemHistory` of the session
    and the compiled :class:`HistoryPlane` the kernel searches on.  Both
    are replaced on every append (histories are immutable values), but
    the plane's expensive caches — the candidate-source table and the
    per-ordering-rule mask rows — are *grown* rather than recomputed
    whenever the append is non-rescuing, and the grown plane is installed
    into the kernel's plane-cache LRU so the stock driver picks it up
    without knowing the session exists.
    """

    __slots__ = ("history", "plane", "last_reused", "_ops")

    def __init__(self, history: SystemHistory | None = None) -> None:
        self._ops: dict[Any, list[Operation]] = {}
        if history is not None:
            for proc in history.procs:
                self._ops[proc] = list(history.ops_of(proc))
        self.history: SystemHistory = (
            history if history is not None else SystemHistory(())
        )
        self.plane: HistoryPlane = history_plane(self.history)
        #: Whether the most recent append grew the plane in place.
        self.last_reused: bool = True

    def __len__(self) -> int:
        return len(self.history.operations)

    def append(self, op: Operation) -> tuple[Operation, bool]:
        """Append ``op`` to its processor's history and grow the plane.

        The operation is re-indexed to the next program-order slot of its
        processor (callers build ops with any index; the stream owns the
        numbering).  Returns the placed operation and whether the plane
        was grown in place (``False`` means a full recompile — the append
        *rescued* an existing read or followed an ambiguous prefix).

        Raises
        ------
        CheckerError
            If the stream would exceed the solver's 64-operation limit.
        """
        if len(self.history.operations) + 1 > _MAX_OPS:
            raise CheckerError(
                f"stream of {len(self.history.operations) + 1} operations "
                f"exceeds the {_MAX_OPS}-operation solver limit"
            )
        own = self._ops.setdefault(op.proc, [])
        placed = (
            op
            if op.index == len(own)
            else dataclasses.replace(op, index=len(own))
        )
        own.append(placed)
        old_plane = self.plane
        history = SystemHistory(
            ProcessorHistory(proc, ops) for proc, ops in self._ops.items()
        )
        reused = not self._rescues(placed)
        if reused:
            plane = extend_plane(old_plane, history, placed)
        else:
            plane = HistoryPlane(history)
        self.history = history
        self.plane = plane
        self.last_reused = reused
        install_plane(history, plane)
        return placed, reused

    def install(self) -> None:
        """(Re-)install the stream's plane into the kernel's plane cache.

        The cache is a bounded LRU, so an interleaved check of another
        history no longer evicts this stream's entry — but enough churn
        still can, so sessions re-install defensively before every
        check.
        """
        install_plane(self.history, self.plane)

    # -- internals -------------------------------------------------------------

    def _rescues(self, op: Operation) -> bool:
        """Whether appending ``op`` changes any *existing* read's candidates.

        A write (or write half) whose value some existing read already
        observes becomes a new candidate source for that read — the one
        way an append can alter old attribution state.  Reads never
        rescue: they only add a row of their own.
        """
        if not op.is_write:
            return False
        value = op.value_written
        for old in self.plane.ops:
            if (
                old.is_read
                and old.location == op.location
                and old.value_read == value
                and old.uid != op.uid
            ):
                return True
        return False


class _FailureMemory:
    """Per-spec memory of how each mutual candidate failed on the prefix.

    Keys are candidate chains as ``uid`` tuples.  :attr:`memory` holds the
    last *completed* search's failures, keyed as of that search's history;
    :attr:`strip` holds the uids appended since, so a current candidate is
    matched against the memory by stripping those uids from its chains
    (the stripped chains are exactly the candidate the prefix search saw).
    A run accumulates its own failures into :attr:`fresh` under full
    (unstripped) keys and swaps them in on :meth:`commit`.
    """

    __slots__ = ("memory", "strip", "fresh", "hits", "misses", "started")

    def __init__(self) -> None:
        self.memory: dict[tuple, str] = {}
        self.strip: set[tuple[Any, int]] = set()
        self.fresh: dict[tuple, str] = {}
        self.hits = 0
        self.misses = 0
        self.started = False

    # -- the reuse-hook protocol the search drives -----------------------------

    def start(self) -> None:
        """The driver entered its candidate enumeration."""
        self.fresh = {}
        self.hits = 0
        self.misses = 0
        self.started = True

    def lookup(self, cand: Any) -> str | None:
        """The prefix's failure mode for ``cand``, or ``None`` if unknown."""
        key = tuple(
            tuple(op.uid for op in chain if op.uid not in self.strip)
            for chain in cand.chains
        )
        mode = self.memory.get(key)
        if mode is None:
            self.misses += 1
            return None
        self.hits += 1
        if mode == "cyclic":
            # The search skips without calling record; remember the
            # failure ourselves so it survives into the next append.
            self.fresh[self._full_key(cand)] = "cyclic"
        return mode

    def needs_probe(self, cand: Any) -> bool:
        """Whether the acyclicity gate must replay before a stuck skip.

        Any operation appended since the search that recorded the
        failure can gain *outgoing* edges in the candidate's assembled
        base — an appended read's own-view constraints order it before
        later writes to its location, and a coherence chain can place an
        appended write before one an old read observes — so a
        previously-stuck candidate may now be cyclic, which a fresh
        search rejects *uncounted*.  Only a lookup against memory of the
        same history (no appends since the last commit) skips the probe.
        """
        return bool(self.strip)

    def record(self, cand: Any, mode: str) -> None:
        """The driver decided ``cand`` failed with ``mode`` on this history."""
        self.fresh[self._full_key(cand)] = mode

    # -- session bookkeeping ---------------------------------------------------

    def commit(self) -> None:
        """A search completed: its failures become the new memory base."""
        self.memory = self.fresh
        self.fresh = {}
        self.strip.clear()
        self.started = False

    def reset(self) -> None:
        """Invalidate everything (rescuing append, ambiguity, budget error)."""
        self.memory = {}
        self.fresh = {}
        self.strip.clear()
        self.started = False

    @staticmethod
    def _full_key(cand: Any) -> tuple:
        return tuple(tuple(op.uid for op in chain) for chain in cand.chains)


class IncrementalCheck:
    """One model's admit/deny session over a growing history.

    Owns a compiled spec and its prefix-reuse state; either owns its
    :class:`HistoryStream` (single-model sessions) or shares one that a
    coordinator such as :class:`repro.engine.session.EngineSession`
    appends to once per operation.

    Every verdict is byte-identical to a fresh
    :func:`~repro.kernel.search.check_with_spec` of the same prefix with
    the same ``budget`` and ``prepass`` arguments.
    """

    def __init__(
        self,
        spec: MemoryModelSpec,
        stream: HistoryStream | None = None,
        *,
        budget: SearchBudget | None = None,
        prepass: bool = False,
    ) -> None:
        self.spec = spec
        self.stream = stream if stream is not None else HistoryStream()
        self.budget = budget
        self.prepass = prepass
        #: Verdicts per prefix, in append order.
        self.results: list[CheckResult] = []
        # Failure memory is sound only when the labeled-extras loop is the
        # trivial single ``None`` — i.e. no labeled discipline.  RC models
        # still get the extendable plane; their searches just run fresh.
        self._memory = (
            _FailureMemory() if spec.labeled_discipline is None else None
        )

    @property
    def history(self) -> SystemHistory:
        """The session's current history (every appended operation)."""
        return self.stream.history

    def append(self, op: Operation) -> CheckResult:
        """Append one operation and return the verdict for the new prefix.

        Only for sessions that own their stream exclusively; coordinators
        sharing a stream across models call :meth:`on_appended` instead.
        """
        placed, reused = self.stream.append(op)
        return self.on_appended((placed,), reused)

    def on_appended(
        self, ops: Iterable[Operation], reused: bool
    ) -> CheckResult:
        """React to operations the shared stream already appended."""
        ops = tuple(ops)
        memory = self._memory
        if memory is not None:
            if reused and self.stream.plane.unique_rf is not None:
                for op in ops:
                    memory.strip.add(op.uid)
            else:
                # A rescue or an ambiguous attribution: the prefix's
                # candidate keys no longer mean what they meant.
                memory.reset()
        result = self._check()
        sink = _sink_state._ACTIVE
        if sink is not None:
            for op in ops:
                sink.emit(
                    SessionAppend(
                        model=self.spec.name,
                        op=str(op),
                        operations=len(self.stream.history.operations),
                        reused=reused,
                    )
                )
        return result

    def check(self) -> CheckResult:
        """Check the current prefix without appending (seed histories)."""
        return self._check()

    # -- internals -------------------------------------------------------------

    def _check(self) -> CheckResult:
        self.stream.install()
        result = self._fast_path()
        if result is not None:
            self.results.append(result)
            return result
        memory = self._memory
        if memory is not None:
            memory.started = False
        try:
            result = check_with_spec(
                self.spec,
                self.stream.history,
                self.budget,
                prepass=self.prepass,
                reuse=memory,
            )
        except CheckerError:
            # Budget blown (or the stream outgrew the solver): the run's
            # partial memory is meaningless — drop it and re-raise.
            if memory is not None:
                memory.reset()
            raise
        if memory is not None and memory.started:
            self._emit_reuse(memory.hits, memory.misses, fallback=False)
            memory.commit()
        else:
            self._emit_reuse(0, 0, fallback=True)
        self.results.append(result)
        return result

    def _fast_path(self) -> CheckResult | None:
        """A verdict without entering the driver, or ``None`` to run it.

        With ``prepass`` on, the driver's first act is the static
        pre-pass, so running it here and returning its decided verdict is
        byte-identical to the driver — and skips the plane compile the
        driver would pay before discovering the pre-pass decides.  The
        remaining shortcuts replicate driver behaviour past the pre-pass
        and are sound only when it is off (a decided pre-pass would have
        returned a differently-shaped result than they produce).
        """
        if self.prepass:
            from repro.staticcheck.prepass import prepass_check

            verdict = prepass_check(self.spec, self.stream.history)
            if verdict.decided:
                self._emit_reuse(0, 0, fallback=False)
                return verdict.to_result()
            return None
        plane = self.stream.plane
        # An impossible read poisons every extension; re-deny the way the
        # driver does, straight off the grafted candidate table.
        bad = impossible_read(self.stream.history, plane.candidates)
        if bad is not None:
            reason = (
                f"{bad} observes a value never written to {bad.location!r}"
            )
            self._emit_reuse(0, 0, fallback=False)
            return CheckResult(
                self.spec.name,
                False,
                reason=reason,
                counterexample=Counterexample(
                    self.spec.name, "impossible-value", reason
                ),
            )
        # Single-candidate specs (NONE/IDENTICAL mutual consistency, no
        # labeled discipline): a remembered failure of the one candidate
        # extends to the whole verdict without compiling anything.
        memory = self._memory
        if (
            memory is None
            or self.spec.mutual_consistency not in _SINGLE_CANDIDATE
            or plane.unique_rf is None
            or not self.results
        ):
            return None
        mode = memory.memory.get(())  # the empty-chains candidate's key
        if mode is None:
            return None
        if mode == "stuck" and memory.strip:
            # An append since the remembered search can flip the
            # acyclicity gate (see needs_probe), turning the fresh
            # explored count from 1 to 0; only the driver's probe can
            # tell, so run it.  "cyclic" needs no probe: edges are only
            # ever added, a cyclic base stays cyclic.
            return None
        previous = self.results[-1]
        if previous.allowed or previous.counterexample is not None:
            return None
        if previous.reason != _SEARCH_DENY:
            return None
        budget = self.budget or SearchBudget()
        if mode == "stuck" and budget.max_serializations < 1:
            return None
        explored = 1 if mode == "stuck" else 0
        memory.fresh = {(): mode}
        memory.hits, memory.misses = 1, 0
        self._emit_reuse(1, 0, fallback=False)
        memory.commit()
        return previous.extend(explored=explored)

    def _emit_reuse(self, hits: int, misses: int, *, fallback: bool) -> None:
        sink = _sink_state._ACTIVE
        if sink is not None:
            sink.emit(
                PrefixReuse(
                    model=self.spec.name,
                    hits=hits,
                    misses=misses,
                    fallback=fallback,
                )
            )
