"""The layered constraint kernel every consistency checker runs on.

The paper's thesis is that the scalable shared memories are *one*
construction varied along three parameters; this package is that thesis as
code structure.  Four composable layers:

1. :mod:`repro.kernel.rf` — reads-from attribution enumeration (which write
   each read observed);
2. :mod:`repro.kernel.serializations` — mutual-consistency witness
   enumeration (parameter 2: total write orders, per-location coherence,
   labeled-subsequence disciplines);
3. :mod:`repro.kernel.constraints` — compilation of a
   :class:`~repro.spec.model_spec.MemoryModelSpec` into per-view
   predecessor-bitmask edge sets (parameters 1 and 3, bracketing,
   propagation edges), cacheable per ``(history, spec)``;
4. :mod:`repro.kernel.search` — the single legal-linear-extension search
   with incremental legality, plus the generic driver
   :func:`~repro.kernel.search.check_with_spec`.

The fast checkers in :mod:`repro.checking` are thin strategies over these
layers, and every checker reports through the shared
:class:`~repro.kernel.results.CheckResult` / ``Witness`` /
``Counterexample`` types.

The mask-plane operations the layers bottom out in (transitive closure,
acyclicity, the candidate gate) are pluggable: :mod:`repro.kernel.backend`
holds the pure-Python reference implementation and a batched numpy
bit-matrix backend, selected by ``REPRO_BACKEND`` / ``--backend`` — with
verdicts and witnesses byte-identical across backends (docs/kernel.md).
"""

from repro.kernel.backend import (
    MaskBackend,
    active_backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.kernel.constraints import (
    CompiledConstraints,
    bracketing_edges,
    compile_constraints,
    configure_plane_cache,
    extend_plane,
    history_plane,
    install_plane,
    plane_cache_stats,
)
from repro.kernel.incremental import HistoryStream, IncrementalCheck
from repro.kernel.results import CheckResult, Counterexample, Witness
from repro.kernel.rf import impossible_read, iter_attributions
from repro.kernel.search import (
    SearchBudget,
    check_with_spec,
    count_legal_extensions,
    explain_with_spec,
    find_legal_extension,
    iter_legal_extensions,
)
from repro.kernel.serializations import (
    forced_write_order,
    iter_labeled_extras,
    iter_mutual_candidates,
)

__all__ = [
    "CheckResult",
    "Witness",
    "Counterexample",
    "SearchBudget",
    "check_with_spec",
    "explain_with_spec",
    "find_legal_extension",
    "iter_legal_extensions",
    "count_legal_extensions",
    "CompiledConstraints",
    "compile_constraints",
    "bracketing_edges",
    "extend_plane",
    "history_plane",
    "install_plane",
    "plane_cache_stats",
    "configure_plane_cache",
    "MaskBackend",
    "active_backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "HistoryStream",
    "IncrementalCheck",
    "forced_write_order",
    "iter_mutual_candidates",
    "iter_labeled_extras",
    "impossible_read",
    "iter_attributions",
]
