"""Shared verdict, witness and counterexample types of the constraint kernel.

Every decision procedure in the framework — the generic kernel search, the
per-model fast checkers, and the machines' soundness harness — reports
through these types, so that clients (the engine's result store, the CLI,
the property suite) handle one shape regardless of which strategy decided.

A :class:`Witness` records not only the views but the *choices* that led to
them (reads-from attribution, coherence order), which is what the paper
exhibits when it argues a history is allowed.  A :class:`Counterexample`
records the first unsatisfiable view constraint the kernel hit, which is
what ``python -m repro explain`` prints for disallowed histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.operation import Operation
from repro.core.view import View

__all__ = ["CheckResult", "Witness", "Counterexample"]


@dataclass(frozen=True)
class Witness:
    """The evidence that a history is allowed: views plus the choices made.

    Attributes
    ----------
    views:
        One legal view per processor, satisfying the model's constraints.
    reads_from:
        The reads-from attribution the witness was found under (``None``
        entries are initial-value reads).  ``None`` when the strategy did
        not fix one explicitly.
    coherence:
        The per-location write order the views agree on, for models with a
        coherence or total-write-order requirement; ``None`` otherwise.
    """

    views: Mapping[Any, View]
    reads_from: Mapping[Operation, Operation | None] | None = None
    coherence: Mapping[str, tuple[Operation, ...]] | None = None


@dataclass(frozen=True)
class Counterexample:
    """Why no views exist: the first unsatisfiable view constraint.

    Attributes
    ----------
    model:
        The model whose constraints are unsatisfiable.
    kind:
        ``"impossible-value"`` (a read observes a value never written),
        ``"cyclic-constraints"`` (the per-view constraint graph has a
        cycle), or ``"stuck-view"`` (constraints are acyclic but no legal
        placement exists).
    proc:
        The processor whose view fails first, when meaningful.
    cycle:
        For ``cyclic-constraints``: the operations forming the cycle.
    stuck_after:
        For ``stuck-view``: how many operations the deepest partial view
        placed before every remaining operation was blocked.
    blocked:
        For ``stuck-view``: each frontier operation paired with why it
        could not be placed next (a constraint or a legality conflict).
    detail:
        One-line human-readable summary (what ``repro explain`` prints).
    """

    model: str
    kind: str
    detail: str
    proc: Any = None
    cycle: tuple[Operation, ...] = ()
    stuck_after: int = 0
    blocked: tuple[tuple[Operation, str], ...] = ()

    def render(self) -> str:
        lines = [f"{self.model}: {self.detail}"]
        if self.cycle:
            lines.append("  constraint cycle:")
            for op in self.cycle:
                lines.append(f"    {op}")
        if self.blocked:
            lines.append(
                f"  view stuck after {self.stuck_after} placed operation(s); "
                "every remaining operation is blocked:"
            )
            for op, why in self.blocked:
                lines.append(f"    {op}: {why}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckResult:
    """The outcome of asking whether a history is allowed by a model.

    Attributes
    ----------
    model:
        Name of the memory model consulted.
    allowed:
        The verdict.
    views:
        For positive verdicts: one witness view per processor (for SC these
        are all the same sequence).  Empty for negative verdicts.
    reason:
        For negative verdicts: why no views exist; for positive ones,
        optionally which choice (reads-from, write order) succeeded.
    explored:
        Number of candidate (reads-from × serialization) combinations the
        checker examined; a cheap effort metric used by the benchmarks.
    witness:
        For positive verdicts from kernel-backed strategies: the full
        :class:`Witness` (views plus the choices behind them).
    counterexample:
        For negative verdicts from kernel-backed strategies: the first
        unsatisfiable view constraint (``repro explain`` prints it).
    """

    model: str
    allowed: bool
    views: Mapping[Any, View] = field(default_factory=dict)
    reason: str = ""
    explored: int = 0
    witness: Witness | None = None
    counterexample: Counterexample | None = None

    def __bool__(self) -> bool:
        return self.allowed

    def extend(
        self, *, explored: int | None = None, reason: str | None = None
    ) -> "CheckResult":
        """This DENY verdict carried forward to an extended history.

        The incremental session's fast path: a denial only hardens when
        operations are appended (every new constraint is a superset of the
        old), so the session may reissue the prefix's DENY — adjusting the
        effort figure to what a fresh search of the extended history would
        have counted.  Witnesses never extend this way (the appended
        operation can invalidate every old view), so calling this on an
        ADMIT is a :class:`ValueError`, not a silent wrong answer.
        """
        if self.allowed:
            raise ValueError(
                f"{self.model}: an ADMIT verdict cannot be extended — the "
                "appended operation may invalidate the witness"
            )
        return CheckResult(
            self.model,
            False,
            reason=self.reason if reason is None else reason,
            explored=self.explored if explored is None else explored,
            counterexample=self.counterexample,
        )

    def __str__(self) -> str:
        verdict = "allowed" if self.allowed else "NOT allowed"
        out = [f"{self.model}: {verdict}" + (f" ({self.reason})" if self.reason else "")]
        for proc in sorted(self.views, key=str):
            out.append(f"  {self.views[proc]!r}")
        return "\n".join(out)
