"""Layer 2 of the constraint kernel: mutual-consistency witness enumeration.

Parameter 2 of the paper asks what the processor views must *agree on*:
nothing, one total order over all writes, per-location coherence orders, or
one total order over the labeled operations.  This layer enumerates the
candidate agreed objects — each one a set of totally ordered chains whose
pairs become cross-view edges — and, for release consistency, the
serializations of the labeled subsequence its discipline admits.

The enumeration is shared by the generic kernel driver and the fast
checkers (TSO's and axiomatic TSO's write-order search both start from
:func:`forced_write_order`), so the pruning soundness argument lives here
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.coherence import (
    CoherenceOrder,
    enumerate_coherence_orders,
    forced_coherence_pairs,
)
from repro.orders.program_order import in_program_order
from repro.orders.relation import Relation
from repro.orders.writes_before import ReadsFrom, unambiguous_reads_from
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import (
    LabeledDiscipline,
    MutualConsistency,
    partition_block_map,
)

__all__ = [
    "MutualCandidate",
    "LabeledExtra",
    "forced_write_order",
    "forced_block_orders",
    "iter_mutual_candidates",
    "iter_labeled_extras",
]


@dataclass(frozen=True)
class MutualCandidate:
    """One candidate agreed object: ordered chains plus the coherence view.

    ``chains`` is a tuple of totally ordered operation tuples; every view
    must order the operations of each chain consistently with it (the
    induced cross-view edges are all within-chain pairs).  ``coherence``
    is the per-location write order the candidate induces, for models
    whose ordering rule or legality propagation needs it.
    """

    coherence: CoherenceOrder | None
    chains: tuple[tuple[Operation, ...], ...]


@dataclass(frozen=True)
class LabeledExtra:
    """Extra per-view edges enforcing a labeled discipline candidate.

    Either ``chains`` (a serialization the labeled subsequences must embed,
    the ``RC_sc`` case) or ``relation`` (an explicit closed edge relation,
    the ``RC_pc`` semi-causality case).
    """

    chains: tuple[tuple[Operation, ...], ...] = ()
    relation: Relation[Operation] | None = None


def forced_write_order(
    history: SystemHistory, reads_from: ReadsFrom | None
) -> Relation[Operation]:
    """Edges every admissible total write order must contain.

    Program order between each processor's own writes always; plus, when a
    (necessarily unambiguous) ``reads_from`` is supplied, the per-location
    coherence edges it forces.  This is the shared starting point of the
    kernel's total-write-order enumeration, the TSO fast path, and the
    axiomatic TSO reference checker.
    """
    forced: Relation[Operation] = Relation(history.writes)
    for proc in history.procs:
        chain = [op for op in history.ops_of(proc) if op.is_write]
        for a, b in zip(chain, chain[1:]):
            forced.add(a, b)
    if reads_from is not None:
        for loc in history.locations:
            for a, b in forced_coherence_pairs(history, loc, reads_from).pairs():
                forced.add(a, b)
    return forced


def forced_block_orders(
    history: SystemHistory, blocks: int, reads_from: ReadsFrom | None
) -> list[Relation[Operation]]:
    """Per-block forced write orders of a ``blocks``-way partition.

    One relation per block, in block-index order: program order between a
    processor's own writes within the block, plus — under an unambiguous
    ``reads_from`` — the per-location coherence edges it forces (every
    location lies wholly inside one block).  Every admissible agreed
    block order extends its block's relation, so this is the shared
    pruning seed of the kernel's Partition enumeration and the static
    pre-pass, exactly as :func:`forced_write_order` is for TSO.
    """
    block = partition_block_map(history, blocks)
    by_block: list[list[Operation]] = [[] for _ in range(blocks)]
    for op in history.writes:
        by_block[block[op.location]].append(op)
    out: list[Relation[Operation]] = []
    for b in range(blocks):
        forced: Relation[Operation] = Relation(by_block[b])
        for proc in history.procs:
            chain = [
                op
                for op in history.ops_of(proc)
                if op.is_write and block[op.location] == b
            ]
            for x, y in zip(chain, chain[1:]):
                forced.add(x, y)
        if reads_from is not None:
            for loc in history.locations:
                if block[loc] != b:
                    continue
                for x, y in forced_coherence_pairs(
                    history, loc, reads_from
                ).pairs():
                    forced.add(x, y)
        out.append(forced)
    return out


def _split_by_location(order: list[Operation]) -> dict[str, tuple[Operation, ...]]:
    chains: dict[str, list[Operation]] = {}
    for op in order:
        chains.setdefault(op.location, []).append(op)
    return {loc: tuple(ops) for loc, ops in chains.items()}


def iter_mutual_candidates(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    *,
    use_reads_from_pruning: bool = True,
    unambiguous: bool | None = None,
) -> Iterator[MutualCandidate]:
    """Enumerate the candidate agreed objects for ``spec``'s parameter 2.

    Reads-from based pruning is applied only when the history's attribution
    is the unique one (distinct write values *and* no initial-value
    ambiguity); with an enumerated ``rf`` the forced edges would be
    unsound.  Callers that already know whether the attribution is unique
    (the driver) pass ``unambiguous`` to skip re-deriving it.
    """
    mc = spec.mutual_consistency
    if unambiguous is None:
        unambiguous = unambiguous_reads_from(history) is not None
    unambiguous = use_reads_from_pruning and unambiguous
    if mc in (MutualConsistency.NONE, MutualConsistency.IDENTICAL):
        yield MutualCandidate(None, ())
        return

    if mc is MutualConsistency.TOTAL_WRITE_ORDER:
        forced = forced_write_order(history, rf if unambiguous else None)
        if not forced.is_acyclic():
            return
        for order in forced.all_topological_sorts():
            yield MutualCandidate(_split_by_location(order), (tuple(order),))
        return

    if mc is MutualConsistency.COHERENCE:
        for coherence in enumerate_coherence_orders(
            history, rf if unambiguous else None
        ):
            yield MutualCandidate(coherence, tuple(coherence.values()))
        return

    if mc is MutualConsistency.PARTITION:
        # Partition Consistency: one agreed total order of the writes
        # *within each block*, independently per block — the candidate
        # space is the product of the per-block linear extensions of the
        # forced block orders.
        assert spec.partition_blocks is not None  # spec validation
        per_block: list[list[tuple[Operation, ...]]] = []
        for forced in forced_block_orders(
            history, spec.partition_blocks, rf if unambiguous else None
        ):
            if not forced.is_acyclic():
                return
            per_block.append(
                [tuple(order) for order in forced.all_topological_sorts()]
            )
        for combo in product(*per_block):
            coherence: dict[str, tuple[Operation, ...]] = {}
            for order in combo:
                coherence.update(_split_by_location(list(order)))
            yield MutualCandidate(
                coherence, tuple(order for order in combo if order)
            )
        return

    if mc is MutualConsistency.LABELED_TOTAL_ORDER:
        # Hybrid consistency: one agreed total order over the labeled
        # (strong) operations, extending each processor's program order
        # on them.
        forced_l: Relation[Operation] = Relation(history.labeled_ops)
        for proc in history.procs:
            chain = [op for op in history.ops_of(proc) if op.labeled]
            for a, b in zip(chain, chain[1:]):
                forced_l.add(a, b)
        for order in forced_l.all_topological_sorts():
            yield MutualCandidate(None, (tuple(order),))
        return

    raise CheckerError(f"unhandled mutual consistency {mc}")  # pragma: no cover


def iter_labeled_extras(
    spec: MemoryModelSpec,
    history: SystemHistory,
    rf: ReadsFrom,
    coherence: CoherenceOrder | None,
    max_labeled_orders: int,
) -> Iterator[LabeledExtra | None]:
    """Enumerate the labeled-discipline constraints, if the model has one.

    Yields ``None`` once for models without a discipline (or with no
    labeled operations); otherwise one :class:`LabeledExtra` per candidate
    serialization (``RC_sc``) or the single semi-causality relation of the
    labeled sub-history (``RC_pc``).
    """
    if spec.labeled_discipline is None:
        yield None
        return

    labeled = history.labeled_ops
    if not labeled:
        yield None
        return

    if spec.labeled_discipline is LabeledDiscipline.SC:
        # Enumerate legal SC serializations of the labeled operations and
        # force every view's labeled subsequence to agree with one.
        from repro.kernel.search import iter_legal_extensions  # layer-top import

        po_labeled: Relation[Operation] = Relation(labeled)
        for a in labeled:
            for b in labeled:
                if in_program_order(a, b):
                    po_labeled.add(a, b)
        count = 0
        for order in iter_legal_extensions(labeled, po_labeled):
            count += 1
            if count > max_labeled_orders:
                raise CheckerError(
                    "too many labeled serializations; raise the budget"
                )
            yield LabeledExtra(chains=(tuple(order),))
        return

    # Labeled-PC: add the semi-causality of the labeled sub-history.  The
    # attribution is inherited from the ambient reads-from choice so the
    # two levels of the model never disagree about who a labeled read saw.
    from repro.orders.semi_causal import sem_relation  # local to avoid cycle

    sub, back = history.project(lambda op: op.labeled)
    fwd = {back[new.uid].uid: new for new in sub.operations}
    rf_sub: dict[Operation, Operation | None] = {}
    for new_op in sub.operations:
        if new_op.is_read:
            src = rf.get(back[new_op.uid])
            if src is not None and src.uid in fwd and fwd[src.uid].is_write:
                rf_sub[new_op] = fwd[src.uid]
            else:
                rf_sub[new_op] = None
    coherence_sub: dict[str, tuple[Operation, ...]] = {}
    if coherence is not None:
        for loc, chain in coherence.items():
            projected = tuple(fwd[w.uid] for w in chain if w.uid in fwd)
            if projected:
                coherence_sub[loc] = projected
    sem_sub = sem_relation(sub, rf_sub, coherence_sub)
    rel: Relation[Operation] = Relation(history.operations)
    for a, b in sem_sub.pairs():
        rel.add(back[a.uid], back[b.uid])
    if not rel.is_acyclic():
        return
    yield LabeledExtra(relation=rel.transitive_closure())
