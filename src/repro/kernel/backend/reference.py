"""The pure-Python reference backend: one int-bitmask plane at a time.

This is the kernel's original data path, unchanged: Python's arbitrary-
precision integers are the bit rows, :func:`repro.kernel.constraints.close_masks`
is the bitset Floyd–Warshall closure and
:func:`repro.kernel.constraints.masks_acyclic` the Kahn peeling test.  Every
other backend is defined by agreeing with this one bit for bit — the
closure is a unique fixpoint and acyclicity a boolean, so agreement is a
mathematical property the parity suite merely pins down.

It stays the default because at litmus-test sizes (a handful of
operations) a single plane gates faster through native ints than through
any array library's per-call overhead; the numpy backend wins when the
search hands it whole frontiers per call (see ``bench_kernel``).
"""

from __future__ import annotations

from typing import Sequence

from repro.kernel.backend import MaskBackend
from repro.kernel.constraints import close_masks, masks_acyclic

__all__ = ["PythonBackend"]


class PythonBackend(MaskBackend):
    """The int-bitmask reference implementation of the backend protocol."""

    name = "python"

    def close(self, masks: Sequence[int], n: int) -> list[int]:
        return close_masks(masks)

    def acyclic(self, masks: Sequence[int], n: int) -> bool:
        return masks_acyclic(masks, n)
