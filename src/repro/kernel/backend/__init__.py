"""Pluggable mask-plane backends for the constraint kernel.

The kernel's data plane is a set of *predecessor masks*: ``masks[j]`` bit
``i`` set means operation ``i`` must precede operation ``j`` (see
:mod:`repro.kernel.constraints`).  Everything the search layer does to a
candidate serialization reduces to three operations on that plane —
transitive closure, acyclicity, and the fused *gate* (reject cyclic
candidates, close the survivors) — and this package makes those
operations swappable:

* the **python** backend (:mod:`repro.kernel.backend.reference`) is the
  original int-bitmask path, one plane at a time — the reference
  implementation every other backend must match bit for bit;
* the **numpy** backend (:mod:`repro.kernel.backend.matrix`) packs whole
  *frontiers* of candidate planes into unsigned bit-matrix batches and
  gates them with vectorized matrix ops.

Backends are total functions of their inputs (a closure is a unique
fixpoint; acyclicity is a boolean), so verdicts, witnesses and explored
counts are byte-identical across backends by construction; the parity
suite (``tests/kernel/test_backend.py``, ``tests/property``) pins this.

Selection: :func:`active_backend` resolves, on first use, to the
``REPRO_BACKEND`` environment variable (``python`` when unset);
:func:`set_backend` and :func:`use_backend` override it programmatically,
and the CLI's ``--backend`` flag maps onto :func:`set_backend`.

The mask contract: every row of an ``n``-operation plane is an ``n``-bit
integer (bits at positions ``>= n`` clear).  Backends may reject
out-of-contract rows loudly, but must never return different results for
rows inside it.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

from repro.core.errors import KernelError

__all__ = [
    "MaskBackend",
    "RecordingBackend",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: The environment variable consulted by :func:`active_backend`.
BACKEND_ENV = "REPRO_BACKEND"


class MaskBackend(ABC):
    """One implementation of the kernel's mask-plane operations.

    Subclasses provide the three primitive operations; the batched
    entries have default implementations that loop, so a minimal backend
    only implements the single-plane ops and still behaves correctly —
    a batching backend overrides :meth:`gate_batch` (the search layer's
    hot call) with something better.
    """

    #: Registry name; also what ``--backend`` and ``REPRO_BACKEND`` match.
    name: str = "abstract"

    @abstractmethod
    def close(self, masks: Sequence[int], n: int) -> list[int]:
        """Transitive closure of one ``n``-row predecessor plane."""

    @abstractmethod
    def acyclic(self, masks: Sequence[int], n: int) -> bool:
        """Whether one ``n``-row predecessor plane is cycle-free."""

    def gate(self, masks: Sequence[int], n: int) -> list[int] | None:
        """Acyclicity gate + closure: ``None`` for cyclic planes.

        Mirrors ``CompiledConstraints.assemble_base``'s use exactly: a
        cyclic candidate is rejected without closing; survivors are
        returned closed.
        """
        if not self.acyclic(masks, n):
            return None
        return self.close(masks, n)

    def gate_batch(
        self, batch: Sequence[Sequence[int]], n: int
    ) -> list[list[int] | None]:
        """Gate a whole frontier of candidate planes.

        The search layer's entry point: one call per candidate chunk
        (see ``kernel.search``), so a vectorizing backend amortizes per
        plane.  The default loops :meth:`gate`.
        """
        return [self.gate(masks, n) for masks in batch]

    def close_batch(
        self, batch: Sequence[Sequence[int]], n: int
    ) -> list[list[int]]:
        """Transitive closures of many planes (default: loop)."""
        return [self.close(masks, n) for masks in batch]

    def acyclic_batch(self, batch: Sequence[Sequence[int]], n: int) -> list[bool]:
        """Acyclicity of many planes (default: loop)."""
        return [self.acyclic(masks, n) for masks in batch]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<MaskBackend {self.name}>"


class RecordingBackend(MaskBackend):
    """A backend wrapper that records every batched gate it serves.

    Instrumentation for benchmarks and tests: ``bench_kernel`` harvests
    the catalog sweep's real gate workload by running the sweep under a
    recorder and replaying :attr:`gate_calls` through each backend.
    """

    name = "recording"

    def __init__(self, inner: MaskBackend) -> None:
        self.inner = inner
        #: Every ``gate_batch`` input, as ``(rows, n)`` pairs.
        self.gate_calls: list[tuple[list[list[int]], int]] = []

    def close(self, masks: Sequence[int], n: int) -> list[int]:
        return self.inner.close(masks, n)

    def acyclic(self, masks: Sequence[int], n: int) -> bool:
        return self.inner.acyclic(masks, n)

    def gate_batch(
        self, batch: Sequence[Sequence[int]], n: int
    ) -> list[list[int] | None]:
        self.gate_calls.append(([list(masks) for masks in batch], n))
        return self.inner.gate_batch(batch, n)


# -- registry -----------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], MaskBackend]] = {}
_INSTANCES: dict[str, MaskBackend] = {}
_ACTIVE: MaskBackend | None = None


def register_backend(name: str, factory: Callable[[], MaskBackend]) -> None:
    """Register a backend factory under ``name`` (last registration wins)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """The registered backend names, in registration order."""
    return tuple(_FACTORIES)


def get_backend(name: str) -> MaskBackend:
    """The backend registered as ``name`` (instantiated once, cached)."""
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(available_backends())
        raise KernelError(f"unknown kernel backend {name!r} (available: {known})")
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def active_backend() -> MaskBackend:
    """The backend in effect: the last :func:`set_backend`, else the env.

    First use resolves ``REPRO_BACKEND`` (default ``python``); the result
    sticks until :func:`set_backend` or :func:`use_backend` changes it.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend(os.environ.get(BACKEND_ENV) or "python")
    return _ACTIVE


def set_backend(backend: str | MaskBackend) -> MaskBackend:
    """Install ``backend`` (a registry name or an instance) process-wide."""
    global _ACTIVE
    _ACTIVE = get_backend(backend) if isinstance(backend, str) else backend
    return _ACTIVE


@contextmanager
def use_backend(backend: str | MaskBackend) -> Iterator[MaskBackend]:
    """Run a block under ``backend``, restoring the previous one after."""
    global _ACTIVE
    previous = _ACTIVE
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        _ACTIVE = previous


def _register_builtins() -> None:
    from repro.kernel.backend.reference import PythonBackend

    register_backend("python", PythonBackend)

    def _numpy_factory() -> MaskBackend:
        try:
            from repro.kernel.backend.matrix import NumpyBackend
        except ImportError as exc:  # pragma: no cover - numpy is a core dep
            raise KernelError(
                "the numpy kernel backend requires numpy; install it or "
                "select --backend python"
            ) from exc
        return NumpyBackend()

    register_backend("numpy", _numpy_factory)


_register_builtins()
