"""The numpy backend: packed unsigned bit-matrices, batched matrix ops.

A frontier of ``B`` candidate planes over an ``n``-operation universe is
one ``(B, n)`` array of unsigned words — row ``b, j`` is candidate ``b``'s
predecessor mask for operation ``j``, the same bit convention as the
reference backend, packed into the narrowest machine word that holds the
universe (``uint16``/``uint32``/``uint64``; the kernel caps universes at
64 operations, so one word always suffices).  Keeping the row a single
word, rather than unpacking to an ``(B, n, n)`` boolean tensor, is what
makes the batch fit in cache: every operation below is ``O(B·n)`` words
of traffic per step.

Closure is the bitset Floyd–Warshall of the reference backend with the
``k`` loop kept in Python and the two inner loops (batch × row)
vectorized: for each pivot ``k``, every row that contains ``k`` ORs in
row ``k``.  Sequential in-place pivoting computes the full transitive
closure in one pass (Warshall's invariant), and since the closure is a
unique fixpoint the result equals the reference's bit for bit, cyclic
inputs included.

Acyclicity falls out of the closure for free: a plane has a cycle iff
some operation reaches itself, i.e. iff a diagonal bit of the closed
matrix is set — so the fused :meth:`NumpyBackend.gate_batch` computes
the closure once and reads both answers from it, where the reference
path runs a separate Kahn peel first (cheap for native ints, which win
on early exit; redundant for the batch, which has no early exit).  A
vectorized Kahn peel (:meth:`NumpyBackend.acyclic_batch`) is kept for
callers that want acyclicity alone without paying for a closure.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernel.backend import MaskBackend

__all__ = ["NumpyBackend"]

#: ``n -> word dtype``: the narrowest unsigned dtype holding ``n`` bits.
_WIDTHS: tuple[tuple[int, type], ...] = (
    (16, np.uint16),
    (32, np.uint32),
    (64, np.uint64),
)


def word_dtype(n: int) -> Any:
    """The packed-row dtype for an ``n``-operation universe."""
    for width, dtype in _WIDTHS:
        if n <= width:
            return np.dtype(dtype)
    raise ValueError(f"mask planes support at most 64 operations, got {n}")


class NumpyBackend(MaskBackend):
    """Batched mask-plane operations on packed unsigned bit-matrices."""

    name = "numpy"

    # -- packing ---------------------------------------------------------------

    def pack(self, batch: Sequence[Sequence[int]], n: int) -> Any:
        """Pack mask rows into a ``(B, n)`` array of unsigned words.

        Rows must respect the mask contract (bits ``>= n`` clear); an
        out-of-range row fails the dtype conversion loudly rather than
        truncating silently.  This array is the backend's *native* form —
        the shared-memory arena stores exactly these words, so a worker
        can gate a frontier without ever materializing Python ints.
        """
        dtype = word_dtype(n)
        if not batch:
            return np.zeros((0, n), dtype=dtype)
        return np.array([list(masks) for masks in batch], dtype=dtype)

    def unpack(self, packed: Any) -> list[list[int]]:
        """Packed rows back to Python int rows (the reference's form)."""
        out: list[list[int]] = packed.tolist()
        return out

    # -- batched kernel ops ----------------------------------------------------

    def close_packed(self, packed: Any, n: int) -> Any:
        """Batched in-place-style transitive closure of packed rows."""
        out = packed.copy()
        dtype = out.dtype.type
        one = dtype(1)
        zero = dtype(0)
        for k in range(n):
            has_k = (out >> dtype(k)) & one
            # 0x00..0 / 0xFF..F selector per row: unsigned wrap of -bit.
            out |= (zero - has_k) & out[:, k : k + 1]
        return out

    def gate_packed(self, packed: Any, n: int) -> tuple[Any, Any]:
        """Fused gate of a packed frontier: ``(acyclic flags, closures)``.

        One closure pass answers both questions: a candidate is cyclic
        iff its closed matrix has a diagonal bit set.
        """
        closed = self.close_packed(packed, n)
        if n == 0:
            return np.ones(len(packed), dtype=bool), closed
        idx = np.arange(n)
        diag = (closed[:, idx] >> idx.astype(closed.dtype)) & closed.dtype.type(1)
        return ~diag.astype(bool).any(axis=1), closed

    def acyclic_packed(self, packed: Any, n: int) -> Any:
        """Batched vectorized Kahn peel over packed rows.

        Strips, in lockstep across the batch, every operation whose
        remaining predecessor set is empty; a plane is acyclic iff its
        remaining set drains.  Cheaper than a closure when only the
        boolean is needed.
        """
        if n == 0:
            return np.ones(len(packed), dtype=bool)
        dtype = packed.dtype
        kind = dtype.type
        remaining = np.full(len(packed), kind((1 << n) - 1), dtype=dtype)
        lanes = np.arange(n).astype(dtype)
        one = kind(1)
        while True:
            strip = ((packed & remaining[:, None]) == 0) & (
                ((remaining[:, None] >> lanes[None, :]) & one).astype(bool)
            )
            if not strip.any():
                break
            stripped = np.bitwise_or.reduce(
                strip.astype(dtype) << lanes[None, :], axis=1
            )
            remaining &= ~stripped
        return remaining == 0

    # -- protocol --------------------------------------------------------------

    def close(self, masks: Sequence[int], n: int) -> list[int]:
        packed = self.pack([masks], n)
        return self.unpack(self.close_packed(packed, n))[0]

    def acyclic(self, masks: Sequence[int], n: int) -> bool:
        packed = self.pack([masks], n)
        return bool(self.acyclic_packed(packed, n)[0])

    def gate_batch(
        self, batch: Sequence[Sequence[int]], n: int
    ) -> list[list[int] | None]:
        if not batch:
            return []
        packed = self.pack(batch, n)
        ok, closed = self.gate_packed(packed, n)
        rows = self.unpack(closed)
        return [
            rows[i] if good else None for i, good in enumerate(ok.tolist())
        ]

    def close_batch(
        self, batch: Sequence[Sequence[int]], n: int
    ) -> list[list[int]]:
        if not batch:
            return []
        return self.unpack(self.close_packed(self.pack(batch, n), n))

    def acyclic_batch(self, batch: Sequence[Sequence[int]], n: int) -> list[bool]:
        if not batch:
            return []
        out: list[bool] = self.acyclic_packed(self.pack(batch, n), n).tolist()
        return out
