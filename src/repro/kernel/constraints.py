"""Layer 3 of the constraint kernel: spec compilation onto the mask plane.

A :class:`~repro.spec.model_spec.MemoryModelSpec` is declarative; this layer
*compiles* it, for one history, into the integer-bitmask data plane the
search layer runs on:

* the operation universe (``history.operations``) with per-operation
  location ids and read/write payloads,
* each processor's view membership (parameter 1) as index lists in the
  view-contents order the witnesses are built in,
* the per-view ordering constraints (parameter 3) plus release
  consistency's bracketing edges as predecessor bitmasks, and
* the reads-from propagation edges that make the search incremental
  (see :func:`CompiledConstraints.candidate_propagation`).

Compilation is split into what depends on the history and spec alone
(:class:`CompiledConstraints`, cacheable across checks — the engine's
:class:`~repro.engine.cache.RelationCache` stores these keyed by
``(history, spec.cache_key)``) and what depends on the reads-from
attribution (:class:`AttributionPlane`, one per enumerated attribution and
cached for the unambiguous one).

Mask conventions: ``masks[j]`` bit ``i`` set means *operation i must precede
operation j*.  :func:`close_masks` is a bitset Floyd–Warshall transitive
closure; :func:`masks_acyclic` a Kahn peeling test.  Both replace the
``Relation``-object churn the pre-kernel solver paid per candidate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable, Mapping, Sequence

from repro.core.errors import KernelError
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation
from repro.orders.memo import active_memo
from repro.orders.relation import Relation
from repro.orders.writes_before import ReadsFrom, reads_from_candidates
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import MutualConsistency, OperationSet

__all__ = [
    "CompiledConstraints",
    "AttributionPlane",
    "HistoryPlane",
    "ViewPlane",
    "compile_constraints",
    "configure_plane_cache",
    "history_plane",
    "install_plane",
    "plane_cache_stats",
    "extend_plane",
    "bracketing_edges",
    "chain_masks",
    "close_masks",
    "insert_bit",
    "masks_acyclic",
    "restrict_masks",
]


# -- mask primitives ----------------------------------------------------------


def chain_masks(masks: list[int], chain: Iterable[int]) -> None:
    """Add the total order of ``chain`` (universe indices) into ``masks``.

    Each chain member's predecessor mask gains every earlier member, i.e.
    the full set of within-chain pairs — already transitively closed, so a
    chain never needs re-closing.
    """
    seen = 0
    for i in chain:
        masks[i] |= seen
        seen |= 1 << i


def close_masks(masks: Sequence[int]) -> list[int]:
    """Transitive closure of predecessor masks (bitset Floyd–Warshall)."""
    out = list(masks)
    n = len(out)
    for k in range(n):
        pk = out[k]
        if not pk:
            continue
        bit = 1 << k
        for i in range(n):
            if out[i] & bit:
                out[i] |= pk
    return out


def masks_acyclic(masks: Sequence[int], n: int) -> bool:
    """True when the constraint graph the masks encode has no cycle."""
    remaining = (1 << n) - 1
    changed = True
    while remaining and changed:
        changed = False
        m = remaining
        while m:
            bit = m & -m
            m ^= bit
            if not masks[bit.bit_length() - 1] & remaining:
                remaining ^= bit
                changed = True
    return not remaining


def restrict_masks(masks: Sequence[int], members: Sequence[int]) -> list[int]:
    """Re-index universe masks onto the sub-universe ``members``.

    ``members`` lists universe indices in view-contents order; the result
    is the predecessor masks of the restriction, in local bit positions.
    """
    out = []
    for gj in members:
        m = masks[gj]
        local = 0
        for k, gk in enumerate(members):
            if (m >> gk) & 1:
                local |= 1 << k
        out.append(local)
    return out


def insert_bit(mask: int, pos: int) -> int:
    """Renumber a mask for a universe that gained an index at ``pos``.

    Bits at positions ``>= pos`` shift up by one; bit ``pos`` of the
    result is clear (the new operation is related to nothing until its
    own row says otherwise).
    """
    low = mask & ((1 << pos) - 1)
    return ((mask >> pos) << (pos + 1)) | low


# -- release consistency's bracketing (moved verbatim from the old solver) ----


def bracketing_edges(history: SystemHistory, rf: ReadsFrom) -> Relation[Operation]:
    """Release consistency's two bracketing conditions (Section 3.4).

    * An ordinary operation following an acquire is ordered after the write
      the acquire read, in every view containing both.
    * An ordinary operation preceding a release is ordered before that
      release, in every view containing both.
    """
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for op in ops:
            if op.labeled:
                continue
            # Acquires earlier in program order bracket this ordinary op.
            for earlier in ops[: op.index]:
                if earlier.is_acquire:
                    src = rf.get(earlier)
                    if src is not None:
                        rel.add(src, op)
            # Releases later in program order bracket it from above.
            for later in ops[op.index + 1:]:
                if later.is_release:
                    rel.add(op, later)
    return rel


# -- compiled planes ----------------------------------------------------------


class ViewPlane:
    """One processor's static view data: membership and legality payloads.

    Built by slicing the universe payload arrays of the owning
    :class:`CompiledConstraints` — the per-operation classification work is
    done once per compilation, not once per view.
    """

    __slots__ = ("proc", "members", "op_loc", "read_vals", "write_vals", "n_locs")

    def __init__(
        self,
        proc: Any,
        members: Sequence[int],
        uni_loc: Sequence[int],
        uni_read: Sequence[int | None],
        uni_write: Sequence[int | None],
    ) -> None:
        self.proc = proc
        self.members: tuple[int, ...] = tuple(members)
        # Local location ids: ranks of the universe location ids present in
        # this view.  Universe ids follow sorted location-name order, so
        # ranking preserves the sorted-name order the search's memory-state
        # tuples are laid out in.
        present = sorted({uni_loc[g] for g in self.members})
        rank = {u: i for i, u in enumerate(present)}
        self.n_locs = len(present)
        self.op_loc: tuple[int, ...] = tuple(rank[uni_loc[g]] for g in self.members)
        self.read_vals: tuple[int | None, ...] = tuple(
            uni_read[g] for g in self.members
        )
        self.write_vals: tuple[int | None, ...] = tuple(
            uni_write[g] for g in self.members
        )


_UNSET = object()


class HistoryPlane:
    """The spec-independent compiled data of one history.

    A sweep checks the same history against many specs (the registry has a
    dozen; the lattice enumerates hundreds), and everything here is a
    function of the history alone, so the kernel shares one instance across
    those checks through a bounded identity-keyed LRU
    (:func:`history_plane`).  Entries in :attr:`masks` are keyed by an
    ordering rule (or a derived tag) and are populated only under the
    *unique* reads-from attribution, where the attribution-dependent
    relations collapse to functions of the history.
    """

    __slots__ = (
        "history",
        "ops",
        "index",
        "n",
        "uni_loc",
        "uni_read",
        "uni_write",
        "writers_by_loc",
        "write_idx",
        "ranges",
        "_views",
        "_universe_plane",
        "_candidates",
        "_unique_rf",
        "masks",
    )

    def __init__(self, history: SystemHistory) -> None:
        self.history = history
        self.ops: tuple[Operation, ...] = history.operations
        # Keyed by operation *value*, not identity: the engine's relation
        # cache serves one table to value-equal histories (two parses of the
        # same litmus text), so a compiled plane must accept the equal twin's
        # operation objects.  Values are unique within a history (proc,
        # index), so the map is bijective either way.
        self.index: dict[Operation, int] = {op: i for i, op in enumerate(self.ops)}
        self.n = len(self.ops)
        # One classification pass over the universe; every view plane is a
        # slice of these arrays.  Location ids follow sorted location-name
        # order (``history.locations``), matching the per-view inventories
        # the pre-kernel solver derived independently per view.
        loc_id = {loc: i for i, loc in enumerate(history.locations)}
        uni_loc: list[int] = []
        uni_read: list[int | None] = []
        uni_write: list[int | None] = []
        writers: dict[str, list[int]] = {}
        for i, op in enumerate(self.ops):
            uni_loc.append(loc_id[op.location])
            uni_read.append(op.value_read if op.is_read else None)
            if op.is_write:
                uni_write.append(op.value_written)
                writers.setdefault(op.location, []).append(i)
            else:
                uni_write.append(None)
        self.uni_loc = uni_loc
        self.uni_read = uni_read
        self.uni_write = uni_write
        self.writers_by_loc: dict[str, tuple[int, ...]] = {
            loc: tuple(idxs) for loc, idxs in writers.items()
        }
        self.write_idx: list[int] = [
            i for i, v in enumerate(uni_write) if v is not None
        ]
        # ``history.operations`` groups operations by processor, so each
        # processor's own operations are one contiguous index range and the
        # remote part of its view is the universe order outside that range
        # (exactly ``OperationSet.view_contents``'s order).
        ranges: dict[Any, tuple[int, int]] = {}
        start = 0
        for proc in history.procs:
            end = start + len(history[proc])
            ranges[proc] = (start, end)
            start = end
        self.ranges = ranges
        self._views: dict[OperationSet, dict[Any, ViewPlane]] = {}
        self._universe_plane: ViewPlane | None = None
        self._candidates: Any = None
        self._unique_rf: Any = _UNSET
        self.masks: dict[Any, Any] = {}

    def views(self, operation_set: OperationSet) -> dict[Any, ViewPlane]:
        """Per-processor view planes for one choice of parameter 1."""
        cached = self._views.get(operation_set)
        if cached is None:
            all_remote = operation_set is OperationSet.ALL_REMOTE
            cached = {}
            for proc, (start, end) in self.ranges.items():
                if all_remote:
                    remote = [i for i in range(self.n) if i < start or i >= end]
                else:
                    remote = [i for i in self.write_idx if i < start or i >= end]
                cached[proc] = ViewPlane(
                    proc,
                    list(range(start, end)) + remote,
                    self.uni_loc,
                    self.uni_read,
                    self.uni_write,
                )
            self._views[operation_set] = cached
        return cached

    @property
    def universe_plane(self) -> ViewPlane:
        """Payloads for the whole-universe search of IDENTICAL models."""
        if self._universe_plane is None:
            self._universe_plane = ViewPlane(
                None, range(self.n), self.uni_loc, self.uni_read, self.uni_write
            )
        return self._universe_plane

    @property
    def candidates(self):
        """The per-read candidate-source table (layer 1's input)."""
        if self._candidates is None:
            self._candidates = reads_from_candidates(self.history)
        return self._candidates

    @property
    def unique_rf(self) -> ReadsFrom | None:
        """The unique attribution when every read has at most one candidate.

        ``None`` when the history is ambiguous and layer 1 must enumerate.
        The dict matches :func:`repro.kernel.rf.iter_attributions`'s
        unambiguous yield exactly.
        """
        if self._unique_rf is _UNSET:
            cands = self.candidates
            if all(len(c) <= 1 for c in cands.values()):
                self._unique_rf = {op: c[0] for op, c in cands.items() if c}
            else:
                self._unique_rf = None
        return self._unique_rf


#: Bounded keyed LRU of compiled planes: ``id(history) -> (history, plane)``.
#: Entries hold their history strongly, which both keeps the id stable for
#: the entry's lifetime and guarantees a live id can never be recycled by
#: a different history while it is cached (the identity check is a
#: belt-and-braces second line).  Replaces the original single slot, under
#: which interleaved :class:`~repro.engine.session.EngineSession`\ s evicted
#: each other's grown planes on every append.
_PLANE_CACHE: "OrderedDict[int, tuple[SystemHistory, HistoryPlane]]" = OrderedDict()
_PLANE_CAPACITY = 64

#: Plane-cache observability counters (read via :func:`plane_cache_stats`).
_PLANE_HITS = 0
_PLANE_MISSES = 0
_PLANE_EVICTIONS = 0

#: Guards the cache and its counters: the serve layer runs checks on a
#: thread-pool executor, so lookups, LRU reordering, inserts, and
#: evictions interleave across threads.  Without the lock, an eviction
#: between another thread's ``get`` hit and its ``move_to_end`` raises
#: ``KeyError``, and the counters drop increments.  Plane *compilation*
#: stays outside the lock — concurrent misses may compile twice, which
#: is wasteful but harmless (last insert wins).
_PLANE_LOCK = threading.Lock()


def plane_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters and current size of the plane cache.

    Cumulative for the process (the serve layer folds them into
    ``/stats``); reset with :func:`configure_plane_cache`.
    """
    with _PLANE_LOCK:
        return {
            "hits": _PLANE_HITS,
            "misses": _PLANE_MISSES,
            "evictions": _PLANE_EVICTIONS,
            "size": len(_PLANE_CACHE),
            "capacity": _PLANE_CAPACITY,
        }


def configure_plane_cache(capacity: int | None = None) -> None:
    """Resize the plane cache and reset its contents and counters.

    ``capacity=None`` keeps the current bound.  Mainly for tests and for
    long-lived daemons that want a different residency/memory trade-off;
    capacity must cover the histories interleaved checks touch between
    repeats for the LRU to help (the default 64 covers the serve layer's
    default session bound).
    """
    global _PLANE_CAPACITY, _PLANE_HITS, _PLANE_MISSES, _PLANE_EVICTIONS
    if capacity is not None and capacity < 1:
        raise KernelError(f"plane cache capacity must be >= 1, got {capacity}")
    with _PLANE_LOCK:
        if capacity is not None:
            _PLANE_CAPACITY = capacity
        _PLANE_CACHE.clear()
        _PLANE_HITS = _PLANE_MISSES = _PLANE_EVICTIONS = 0


def _plane_cache_insert(history: SystemHistory, plane: HistoryPlane) -> None:
    global _PLANE_EVICTIONS
    with _PLANE_LOCK:
        _PLANE_CACHE[id(history)] = (history, plane)
        _PLANE_CACHE.move_to_end(id(history))
        while len(_PLANE_CACHE) > _PLANE_CAPACITY:
            _PLANE_CACHE.popitem(last=False)
            _PLANE_EVICTIONS += 1


def history_plane(history: SystemHistory) -> HistoryPlane:
    """The shared :class:`HistoryPlane` of ``history`` (identity-cached).

    A bounded keyed LRU: sweeps hit on consecutive specs over one
    history, and interleaved streams (several live :class:`EngineSession`\\ s
    appending in turn) each keep their own entry instead of evicting the
    others.  A cold entry is merely rebuilt — the cache is keyed by
    object identity, never by value.
    """
    global _PLANE_HITS, _PLANE_MISSES
    key = id(history)
    with _PLANE_LOCK:
        entry = _PLANE_CACHE.get(key)
        if entry is not None and entry[0] is history:
            _PLANE_HITS += 1
            _PLANE_CACHE.move_to_end(key)
            return entry[1]
        _PLANE_MISSES += 1
    plane = HistoryPlane(history)
    _plane_cache_insert(history, plane)
    return plane


def install_plane(history: SystemHistory, plane: HistoryPlane) -> None:
    """Make ``plane`` the one :func:`history_plane` returns for ``history``.

    The incremental session's hook: after growing a plane in place
    (:func:`extend_plane`) the session installs it so the stock driver —
    which derives its plane through :func:`history_plane` — runs on the
    extended data instead of recompiling.  The warm worker pool uses the
    same hook to seed planes decoded from the shared-memory arena.
    Installing a plane that was not built for ``history`` corrupts every
    later check of it; only those two callers should install.
    """
    _plane_cache_insert(history, plane)


def _extended_rule_row(
    rule: Any,
    old: HistoryPlane,
    rows: Sequence[int],
    op: Operation,
    src: Operation | None,
) -> int | None:
    """``op``'s predecessor mask under ``rule``, in *old* universe bits.

    ``op`` is maximal (appended last on its processor, observed by no
    read), so its row is a function of the old closed rows plus the
    direct base edges into it; the old rows themselves are unchanged.
    Returns ``None`` for rules this extension does not understand.
    """
    start, end = old.ranges.get(op.proc, (0, 0))
    name = getattr(rule, "name", None)
    if name == "po":
        return ((1 << end) - 1) ^ ((1 << start) - 1)
    if name == "po-loc":
        row = 0
        for q in range(start, end):
            if old.ops[q].location == op.location:
                row |= 1 << q
        return row
    if name == "po-sync":
        row = 0
        for q in range(start, end):
            if old.ops[q].labeled or op.labeled:
                row |= rows[q] | (1 << q)
        return row
    if name == "ppo":
        from repro.orders.program_order import _ppo_base_condition

        row = 0
        for q in range(start, end):
            if _ppo_base_condition(old.ops[q], op):
                row |= rows[q] | (1 << q)
        return row
    if name == "causal":
        row = 0
        if end > start:
            row |= rows[end - 1] | (1 << (end - 1))
        if src is not None:
            isrc = old.index[src]
            row |= rows[isrc] | (1 << isrc)
        return row
    return None


def _extended_bracketing_row(
    old: HistoryPlane,
    op: Operation,
    rf: ReadsFrom,
) -> int:
    """``op``'s bracketing predecessor mask, in old universe bits."""
    start, end = old.ranges.get(op.proc, (0, 0))
    row = 0
    if op.labeled:
        if op.is_release:
            # Every earlier ordinary operation precedes the new release.
            for q in range(start, end):
                if not old.ops[q].labeled:
                    row |= 1 << q
        return row
    # A new ordinary operation follows the write each earlier acquire read.
    for q in range(start, end):
        earlier = old.ops[q]
        if earlier.is_acquire:
            seen = rf.get(earlier)
            if seen is not None:
                row |= 1 << old.index[seen]
    return row


def extend_plane(
    old: HistoryPlane, history: SystemHistory, op: Operation
) -> HistoryPlane:
    """A plane for ``history`` = ``old.history`` + ``op``, grown from ``old``.

    The caller (:class:`~repro.kernel.incremental.HistoryStream`)
    guarantees the *non-rescue* precondition: ``old`` has a unique
    reads-from attribution, no existing read gains ``op`` as a candidate
    source, and ``op`` itself has at most one candidate source.  Under it
    every attribution-derived relation keeps its old pairs and gains only
    edges into ``op``, so the cached candidate table and ordering masks
    extend in place (a bit-renumbering plus one new row per rule) instead
    of being recomputed from the relations — the payload arrays, ranges
    and index are rebuilt fresh, which is a single linear pass.

    The result is value-identical to ``HistoryPlane(history)`` with its
    caches warm; equality is pinned by ``tests/kernel/test_incremental``.
    """
    plane = HistoryPlane(history)
    pos = plane.index[op]

    # Candidate table, in the new universe order.  Old reads keep their
    # candidate tuples verbatim (non-rescue); the new read derives its own.
    old_candidates = old.candidates
    candidates: dict[Operation, tuple[Operation | None, ...]] = {}
    src: Operation | None = None
    for o in plane.ops:
        if not o.is_read:
            continue
        if o == op:
            cands: list[Operation | None] = [
                plane.ops[iw]
                for iw in plane.writers_by_loc.get(op.location, ())
                if plane.uni_write[iw] == op.value_read
                and plane.ops[iw].uid != op.uid
            ]
            if op.value_read == INITIAL_VALUE:
                cands.append(None)
            candidates[o] = tuple(cands)
            if candidates[o]:
                src = candidates[o][0]
        else:
            candidates[o] = old_candidates[o]
    plane._candidates = candidates
    if all(len(c) <= 1 for c in candidates.values()):
        plane._unique_rf = {o: c[0] for o, c in candidates.items() if c}
    else:
        plane._unique_rf = None

    rf = old.unique_rf
    if rf is None or plane._unique_rf is None:
        # The masks cache is only ever consulted under a unique
        # attribution, so there is nothing sound to carry.
        return plane

    for key, value in old.masks.items():
        if key == "prop":
            old_src_idx, old_prop = value
            src_idx = {
                (ir + 1 if ir >= pos else ir): (
                    isrc + 1 if 0 <= isrc and isrc >= pos else isrc
                )
                for ir, isrc in old_src_idx.items()
            }
            prop = [insert_bit(m, pos) for m in old_prop]
            prop.insert(pos, 0)
            if op.is_read:
                if src is not None:
                    isrc = plane.index[src]
                    src_idx[pos] = isrc
                    prop[pos] |= 1 << isrc
                elif op in plane._unique_rf:
                    src_idx[pos] = -1
                    for iw in plane.writers_by_loc.get(op.location, ()):
                        if iw != pos:
                            prop[iw] |= 1 << pos
            if op.is_write:
                for ir, isrc in old_src_idx.items():
                    if isrc < 0 and old.ops[ir].location == op.location:
                        prop[pos] |= 1 << (ir + 1 if ir >= pos else ir)
            plane.masks[key] = (src_idx, prop)
            continue
        if key == "bracketing":
            row = _extended_bracketing_row(old, op, rf)
            rows = [insert_bit(m, pos) for m in value]
            rows.insert(pos, insert_bit(row, pos))
            plane.masks[key] = rows
            continue
        if isinstance(key, tuple):
            continue  # own-view restrictions are cheap to rebuild on demand
        row_old = _extended_rule_row(key, old, value, op, src if op.is_read else None)
        if row_old is None:
            continue
        rows = [insert_bit(m, pos) for m in value]
        rows.insert(pos, insert_bit(row_old, pos))
        plane.masks[key] = rows
    return plane


class AttributionPlane:
    """The reads-from-dependent slice of a compiled constraint set."""

    __slots__ = ("rf", "ordering", "own_ordering", "bracketing", "src_idx", "prop")

    def __init__(
        self,
        cc: "CompiledConstraints",
        rf: ReadsFrom,
        unique: bool = False,
    ) -> None:
        self.rf = rf
        spec = cc.spec
        history = cc.history
        # Under the unique attribution every rf-derived relation is a pure
        # function of the history, so the masks are cached on the shared
        # HistoryPlane across the specs that reuse the same ordering rule.
        cache = cc.hp.masks if unique else None
        #: Static ordering pred masks; ``None`` when the ordering needs a
        #: coherence order and must be built per mutual candidate.
        self.ordering: list[int] | None = None
        self.own_ordering: dict[Any, list[int]] | None = None
        if not spec.ordering.needs_coherence:
            rule = spec.ordering
            if cache is not None and rule in cache:
                self.ordering = cache[rule]
            else:
                self.ordering = rule.build(history, rf, None).pred_masks(cc.ops)
                if cache is not None:
                    cache[rule] = self.ordering
            if spec.ordering_own_view_only:
                key = (rule, "own")
                if cache is not None and key in cache:
                    self.own_ordering = cache[key]
                else:
                    self.own_ordering = cc.restrict_to_own(self.ordering)
                    if cache is not None:
                        cache[key] = self.own_ordering
        self.bracketing: list[int] | None = None
        if spec.bracketing:
            if cache is not None and "bracketing" in cache:
                self.bracketing = cache["bracketing"]
            else:
                self.bracketing = bracketing_edges(history, rf).pred_masks(cc.ops)
                if cache is not None:
                    cache["bracketing"] = self.bracketing
        if cache is not None and "prop" in cache:
            self.src_idx, self.prop = cache["prop"]
            return
        #: Per universe index of a read: index of its source write, or -1
        #: for an initial-value read.  Non-reads are absent.
        self.src_idx: dict[int, int] = {}
        #: Attribution-forced edges used by incremental-legality propagation
        #: (sound only under the unambiguous attribution — the driver gates):
        #: ``src -> read``, and an initial-value read before every write to
        #: its location.
        prop = [0] * cc.n
        for r, src in rf.items():
            ir = cc.index[r]
            if src is None:
                self.src_idx[ir] = -1
                bit = 1 << ir
                for iw in cc.writers_by_loc.get(r.location, ()):
                    if iw != ir:
                        prop[iw] |= bit
            else:
                isrc = cc.index[src]
                self.src_idx[ir] = isrc
                if isrc != ir:
                    prop[ir] |= 1 << isrc
        self.prop = prop
        if cache is not None:
            cache["prop"] = (self.src_idx, prop)


class CompiledConstraints:
    """Everything about ``(history, spec)`` the search reuses across choices."""

    __slots__ = (
        "spec",
        "history",
        "hp",
        "ops",
        "index",
        "n",
        "identical",
        "own_view_only",
        "bracketing",
        "needs_coherence",
        "procs",
        "views",
        "own_bits",
        "writers_by_loc",
        "_plane_rf",
        "_plane",
    )

    def __init__(self, spec: MemoryModelSpec, history: SystemHistory) -> None:
        self.spec = spec
        self.history = history
        hp = history_plane(history)
        self.hp = hp
        self.ops = hp.ops
        self.index = hp.index
        self.n = hp.n
        self.identical = spec.mutual_consistency is MutualConsistency.IDENTICAL
        self.own_view_only = spec.ordering_own_view_only
        self.bracketing = spec.bracketing
        self.needs_coherence = spec.ordering.needs_coherence
        self.procs = history.procs
        self.views = hp.views(spec.operation_set)
        self.writers_by_loc = hp.writers_by_loc
        self.own_bits: dict[Any, int] = {}
        if self.own_view_only:
            for proc, (start, end) in hp.ranges.items():
                self.own_bits[proc] = ((1 << end) - 1) ^ ((1 << start) - 1)
        self._plane_rf: ReadsFrom | None = None
        self._plane: AttributionPlane | None = None

    @property
    def universe_plane(self) -> ViewPlane:
        """Payloads for the whole-universe search of IDENTICAL models."""
        return self.hp.universe_plane

    # -- attribution planes ----------------------------------------------------

    def plane(self, rf: ReadsFrom, unique: bool = False) -> AttributionPlane:
        """The attribution-dependent plane for ``rf`` (cached single-slot).

        Histories under the distinct-write-values discipline have exactly
        one attribution, so the slot makes repeated checks of the same
        history (a sweep, the classification lattice) compile it once;
        ``unique`` additionally lets the plane share its masks through the
        HistoryPlane across specs.
        """
        if self._plane is not None and (
            self._plane_rf is rf or self._plane_rf == rf
        ):
            return self._plane
        plane = AttributionPlane(self, rf, unique)
        self._plane_rf = rf
        self._plane = plane
        return plane

    def restrict_to_own(self, ordering: Sequence[int]) -> dict[Any, list[int]]:
        """Per-processor restriction of ordering masks to own operations.

        Release consistency's reading of parameter 3: the ordering binds a
        processor's operations only in that processor's *own* view.
        """
        out: dict[Any, list[int]] = {}
        for proc in self.procs:
            bits = self.own_bits[proc]
            restricted = [0] * self.n
            for i in range(self.n):
                if (bits >> i) & 1:
                    restricted[i] = ordering[i] & bits
            out[proc] = restricted
        return out

    # -- per-candidate assembly ------------------------------------------------

    def _base_masks(
        self,
        plane: AttributionPlane,
        chains: tuple[tuple[Operation, ...], ...],
        ordering: Sequence[int] | None,
    ) -> tuple[list[int], dict[Any, list[int]] | None]:
        """The raw (unclosed, ungated) base masks of one mutual candidate."""
        if ordering is None:
            ordering = plane.ordering
        own: dict[Any, list[int]] | None = None
        if self.own_view_only:
            assert ordering is not None
            own = (
                plane.own_ordering
                if plane.own_ordering is not None
                else self.restrict_to_own(ordering)
            )
            masks = [0] * self.n
        else:
            assert ordering is not None
            masks = list(ordering)
        for chain in chains:
            chain_masks(masks, (self.index[op] for op in chain))
        if plane.bracketing is not None:
            for i in range(self.n):
                masks[i] |= plane.bracketing[i]
        return masks, own

    def assemble_base(
        self,
        plane: AttributionPlane,
        chains: tuple[tuple[Operation, ...], ...],
        ordering: Sequence[int] | None = None,
    ) -> tuple[list[int], dict[Any, list[int]] | None] | None:
        """Cross-view constraints for one mutual candidate, closed, or ``None``.

        Mirrors the pre-kernel solver's ``_base_constraints``: assemble
        ordering (unless it binds own views only) + mutual chains +
        bracketing, reject cyclic combinations, transitively close so that
        restriction to any view preserves all orderings.  Returns the
        closed masks and the per-processor own-ordering masks (``None``
        when the ordering already lives in the base).
        """
        masks, own = self._base_masks(plane, chains, ordering)
        if not masks_acyclic(masks, self.n):
            return None
        return close_masks(masks), own

    def base_acyclic(
        self,
        plane: AttributionPlane,
        chains: tuple[tuple[Operation, ...], ...],
        ordering: Sequence[int] | None = None,
    ) -> bool:
        """Whether :meth:`assemble_base` would pass its acyclicity gate.

        The incremental session's probe: deciding whether a candidate that
        failed on a prefix still *counts* as explored on the extended
        history requires the gate's answer but not the closed masks.
        """
        masks, _ = self._base_masks(plane, chains, ordering)
        return masks_acyclic(masks, self.n)

    def extra_masks(self, extra) -> list[int] | None:
        """Universe masks of a labeled-discipline candidate (layer 2)."""
        if extra is None:
            return None
        masks = [0] * self.n
        for chain in extra.chains:
            chain_masks(masks, (self.index[op] for op in chain))
        if extra.relation is not None:
            for i, m in enumerate(extra.relation.pred_masks(self.ops)):
                masks[i] |= m
        return masks

    def candidate_propagation(
        self,
        plane: AttributionPlane,
        coherence: Mapping[str, tuple[Operation, ...]] | None,
    ) -> list[int]:
        """Propagation masks for one candidate: rf edges + coherence successors.

        Under the unambiguous attribution a read's source is the unique
        write of the observed value, so in every legal view the source
        precedes the read and — once the candidate fixes a per-location
        write order the views embed — the read precedes the source's
        coherence successor.  These edges turn the search's dynamic
        value-legality failures into static predecessor-mask failures
        without changing which extensions exist, which is what makes the
        per-view search incremental instead of re-validating prefixes.
        """
        if coherence is None:
            return plane.prop  # shared, never mutated by the search
        prop = list(plane.prop)
        succ: dict[int, int] = {}
        for chain in coherence.values():
            for a, b in zip(chain, chain[1:]):
                succ[self.index[a]] = self.index[b]
        for ir, isrc in plane.src_idx.items():
            if isrc < 0:
                continue
            inext = succ.get(isrc)
            if inext is not None and inext != ir:
                prop[inext] |= 1 << ir
        return prop


def compile_constraints(
    spec: MemoryModelSpec, history: SystemHistory
) -> CompiledConstraints:
    """Compile ``spec`` for ``history``, via the active relation memo if any.

    Inside an engine sweep (or any :func:`~repro.orders.memo.relation_memo`
    block) each ``(history, parameter-bundle)`` pair is compiled once and
    shared by every subsequent check.
    """
    memo = active_memo()
    if memo is None:
        return CompiledConstraints(spec, history)
    return memo.fetch(
        history,
        f"kernel:{spec.cache_key}",
        lambda: CompiledConstraints(spec, history),
    )
