"""Layer 1 of the constraint kernel: reads-from attribution enumeration.

Every decision in the framework starts by fixing *which write each read
observed*.  Under the distinct-write-values discipline the attribution is a
function of the history; otherwise the kernel enumerates the choices and a
history is allowed when *some* attribution satisfies the model (the
ambiguity convention documented in :mod:`repro.kernel.search`).

This layer is a thin, budgeted front over :mod:`repro.orders.writes_before`
so that the enumeration policy (unique-fast-path first, bounded product
otherwise) lives in exactly one place instead of being re-implemented by
each checker.  Callers that already hold the candidate table (the driver
derives it once per check) pass it in to avoid re-deriving it per layer.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping

from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.writes_before import ReadsFrom, reads_from_candidates

__all__ = ["ReadsFrom", "impossible_read", "iter_attributions"]

#: The per-read candidate-source table of a history.
Candidates = Mapping[Operation, tuple[Operation | None, ...]]


def impossible_read(
    history: SystemHistory, candidates: Candidates | None = None
) -> Operation | None:
    """The first read observing a value no write stores, if any.

    Such a read cannot be legal in any view under any model, so every
    checker may reject without search.  Returns ``None`` when every read
    has at least one candidate source.
    """
    if candidates is None:
        candidates = reads_from_candidates(history)
    for op, cands in candidates.items():
        if not cands:
            return op
    return None


def iter_attributions(
    history: SystemHistory,
    max_attributions: int,
    candidates: Candidates | None = None,
) -> Iterator[ReadsFrom]:
    """Yield the reads-from attributions the kernel must consider.

    The unambiguous attribution alone when one exists (the litmus
    discipline); the full product of per-read candidate choices otherwise,
    capped at ``max_attributions`` to fail loudly instead of hanging.
    Yields nothing when some read has no candidate source at all.
    """
    if candidates is None:
        candidates = reads_from_candidates(history)
    if all(len(cands) <= 1 for cands in candidates.values()):
        yield {op: cands[0] for op, cands in candidates.items() if cands}
        return
    reads = list(candidates)
    option_lists = [candidates[r] for r in reads]
    if any(not opts for opts in option_lists):
        return
    count = 0
    for combo in itertools.product(*option_lists):
        count += 1
        if count > max_attributions:
            raise CheckerError(
                f"more than {max_attributions} reads-from attributions; "
                "use distinct write values"
            )
        yield dict(zip(reads, combo))
