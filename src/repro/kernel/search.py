"""Layer 4 of the constraint kernel: the one linear-extension search.

Every checker in the framework bottoms out here.  Given per-operation
predecessor bitmasks and read/write payloads, the search constructs a legal
linear extension — legal as in paper Section 2: every read observes the most
recent preceding write to its location — by depth-first backtracking over
``(placed-set, last-write-per-location)`` states with memoized failures.
The memory state is carried *incrementally* across backtrack frames (one
tuple substitution per placement) and, under an unambiguous reads-from
attribution, the compiled propagation edges of
:mod:`repro.kernel.constraints` turn would-be deep value failures into
immediate predecessor-mask failures.

The module exposes two surfaces:

* the compatibility API of the old ``repro.checking.extension`` module —
  :func:`find_legal_extension`, :func:`iter_legal_extensions`,
  :func:`count_legal_extensions` — with identical semantics (including the
  64-operation limit and determinism guarantees), and
* the generic spec-driven driver :func:`check_with_spec` (plus
  :func:`explain_with_spec` for counterexamples), which composes layers
  1–3 and replaces the old monolithic solver while preserving its verdicts,
  witnesses, ``explored`` counts and budget semantics exactly.

Ambiguity
---------
The paper (and the litmus-test tradition) assumes distinct write values so
the writes-before relation is a function of the history.  When a history
violates that discipline we define "allowed" as: *there exists* a
reads-from attribution under which the model's constraints are satisfiable.
All fast paths and all experiments use distinct values.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Sequence

from repro.core.errors import CheckerError
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation
from repro.core.view import View
from repro.kernel.backend import active_backend
from repro.kernel.constraints import (
    CompiledConstraints,
    compile_constraints,
    history_plane,
    masks_acyclic,
    restrict_masks,
)
from repro.kernel.results import CheckResult, Counterexample, Witness
from repro.kernel.rf import impossible_read, iter_attributions
from repro.kernel.serializations import iter_labeled_extras, iter_mutual_candidates
from repro.obs.events import (
    AttributionTried,
    Backtracked,
    CandidateTried,
    CheckStarted,
    LabeledExtraTried,
    NodeEntered,
    PhaseMark,
    PropagationApplied,
    VerdictReached,
    ViewSearch,
    ViewSolved,
    ViewStuck,
)
from repro.obs import sink as _sink_state
from repro.obs.sink import TraceSink, tracing
from repro.orders.relation import Relation
from repro.orders.writes_before import ReadsFrom, unambiguous_reads_from

__all__ = [
    "SearchBudget",
    "check_with_spec",
    "explain_with_spec",
    "find_legal_extension",
    "iter_legal_extensions",
    "count_legal_extensions",
]

_MAX_OPS = 64


class SearchBudget:
    """Caps on the solver's enumeration, to fail loudly instead of hanging.

    The decision problem is NP-hard, so *some* budget is unavoidable; the
    defaults comfortably cover every litmus test and the exhaustive lattice
    enumeration while keeping pathological inputs from running away.
    """

    def __init__(
        self,
        max_reads_from: int = 4096,
        max_serializations: int = 200_000,
        max_labeled_orders: int = 100_000,
        use_reads_from_pruning: bool = True,
    ) -> None:
        self.max_reads_from = max_reads_from
        self.max_serializations = max_serializations
        self.max_labeled_orders = max_labeled_orders
        #: Ablation switch: derive forced write-order edges from the
        #: reads-from attribution before enumerating serializations.
        #: Disabling it preserves verdicts but multiplies the number of
        #: candidate write orders examined (see bench_ablation.py).
        self.use_reads_from_pruning = use_reads_from_pruning


# -- the search core ----------------------------------------------------------


def _dfs_find(
    n: int,
    pred: Sequence[int],
    op_loc: Sequence[int],
    read_vals: Sequence[int | None],
    write_vals: Sequence[int | None],
    n_locs: int,
    initial: int,
    memoize: bool,
) -> list[int] | None:
    """One legal extension as local indices, or ``None``.

    Deterministic: operations are tried in index order, so given equal
    inputs the same witness is returned.
    """
    full = (1 << n) - 1
    failed: set[tuple[int, tuple[int, ...]]] = set()
    order: list[int] = []

    def dfs(placed: int, values: tuple[int, ...]) -> bool:
        if placed == full:
            return True
        key = (placed, values)
        if memoize and key in failed:
            return False
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            order.append(i)
            if dfs(placed | bit, new_values):
                return True
            order.pop()
        if memoize:
            failed.add(key)
        return False

    if dfs(0, tuple([initial] * n_locs)):
        return order
    return None


def _dfs_find_traced(
    n: int,
    pred: Sequence[int],
    op_loc: Sequence[int],
    read_vals: Sequence[int | None],
    write_vals: Sequence[int | None],
    n_locs: int,
    initial: int,
    memoize: bool,
    sink: TraceSink,
    proc: str,
    render: Sequence[str],
) -> list[int] | None:
    """:func:`_dfs_find` narrating every placement/backtrack to ``sink``.

    A separate function rather than a flag so the untraced hot path stays
    byte-for-byte the pre-instrumentation code — ``bench_obs.py`` holds
    the disabled overhead under 3%.  Search order, memoization and the
    returned witness are identical to :func:`_dfs_find`.
    """
    full = (1 << n) - 1
    failed: set[tuple[int, tuple[int, ...]]] = set()
    order: list[int] = []

    def dfs(placed: int, values: tuple[int, ...]) -> bool:
        if placed == full:
            return True
        key = (placed, values)
        if memoize and key in failed:
            return False
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            sink.emit(NodeEntered(proc=proc, depth=len(order), op=render[i]))
            order.append(i)
            if dfs(placed | bit, new_values):
                return True
            order.pop()
            sink.emit(Backtracked(proc=proc, depth=len(order), op=render[i]))
        if memoize:
            failed.add(key)
        return False

    if dfs(0, tuple([initial] * n_locs)):
        return order
    return None


# -- compatibility API (the old repro.checking.extension surface) -------------


def _prepare(
    ops: Sequence[Operation], constraints: Relation[Operation]
) -> tuple[list[int], list[int], list[int | None], list[int | None], int] | None:
    """Masks and payloads for an ad-hoc operation set, or ``None`` if cyclic."""
    n = len(ops)
    if n > _MAX_OPS:
        raise CheckerError(
            f"view of {n} operations exceeds the {_MAX_OPS}-operation solver limit"
        )
    pred = constraints.pred_masks(ops)
    if not masks_acyclic(pred, n):
        return None
    loc_names = sorted({op.location for op in ops})
    loc_index = {loc: i for i, loc in enumerate(loc_names)}
    op_loc = [loc_index[op.location] for op in ops]
    read_vals: list[int | None] = [
        op.value_read if op.is_read else None for op in ops
    ]
    write_vals: list[int | None] = [
        op.value_written if op.is_write else None for op in ops
    ]
    return pred, op_loc, read_vals, write_vals, len(loc_names)


def find_legal_extension(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    memoize: bool = True,
) -> list[Operation] | None:
    """One legal linear extension of ``constraints`` over ``ops``, or ``None``.

    Parameters
    ----------
    ops:
        The operations the sequence must contain (each exactly once).
    constraints:
        Required orderings; pairs mentioning operations outside ``ops``
        are ignored.
    initial:
        Initial value of every location.
    memoize:
        Ablation switch: record failing (placed-set, memory-state) pairs
        so each dead state is explored once.  Disabling it preserves
        results but revisits dead states exponentially often on
        unsatisfiable instances (see bench_ablation.py).
    """
    prep = _prepare(ops, constraints)
    if prep is None:
        return None
    pred, op_loc, read_vals, write_vals, n_locs = prep
    order = _dfs_find(
        len(ops), pred, op_loc, read_vals, write_vals, n_locs, initial, memoize
    )
    if order is None:
        return None
    return [ops[i] for i in order]


def iter_legal_extensions(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    limit: int | None = None,
):
    """Yield every legal linear extension (small inputs only).

    Unlike :func:`find_legal_extension` this cannot memoize failures across
    branches that must all be enumerated, so it is exponential even on
    *successful* instances; ``limit`` bounds the number of yields.
    """
    prep = _prepare(ops, constraints)
    if prep is None:
        return
    pred, op_loc, read_vals, write_vals, n_locs = prep
    n = len(ops)
    full = (1 << n) - 1
    order: list[int] = []
    yielded = 0

    def dfs(placed: int, values: tuple[int, ...]):
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if placed == full:
            yielded += 1
            yield [ops[i] for i in order]
            return
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            order.append(i)
            yield from dfs(placed | bit, new_values)
            order.pop()

    yield from dfs(0, tuple([initial] * n_locs))


def count_legal_extensions(
    ops: Sequence[Operation],
    constraints: Relation[Operation],
    *,
    initial: int = INITIAL_VALUE,
    limit: int = 1_000_000,
) -> int:
    """The number of legal linear extensions (capped at ``limit``)."""
    count = 0
    for _ in iter_legal_extensions(ops, constraints, initial=initial, limit=limit):
        count += 1
    return count


# -- the spec-driven driver ---------------------------------------------------


def check_with_spec(
    spec,
    history: SystemHistory,
    budget: SearchBudget | None = None,
    *,
    prepass: bool = False,
    trace: TraceSink | None = None,
    reuse: Any | None = None,
) -> CheckResult:
    """Decide whether ``history`` is allowed by the model ``spec`` describes.

    The composition of the kernel's four layers: enumerate attributions
    (layer 1) × mutual-consistency candidates and labeled extras (layer 2)
    over the compiled constraint plane (layer 3), searching each
    processor's view (this layer) until some combination yields legal
    views for every processor.

    With ``prepass=True``, the polynomial static pre-pass
    (:mod:`repro.staticcheck.prepass`) runs first and short-circuits the
    search on a definite verdict — a necessary-condition DENY or an
    ADMIT whose witness the pre-pass constructed outright.  The
    ``allowed`` bit is unchanged either way (the pre-pass is sound in
    both directions; a short-circuited result carries ``explored=0`` and
    the pre-pass's own witness).  The default is off so the kernel
    surface stays byte-comparable to the frozen legacy solver, and the
    engine opts in on top.

    With ``trace`` set (or a sink installed via
    :func:`repro.obs.sink.tracing`), the check narrates its search as
    typed :mod:`repro.obs.events` — same verdict, same witness, same
    ``explored`` count.  The default — no sink anywhere — takes the
    untraced hot path with zero per-node instrumentation.

    ``reuse`` is the incremental session's failure-memory hook
    (:class:`repro.kernel.incremental.IncrementalCheck` installs it); the
    default ``None`` — every ordinary caller — leaves the search
    byte-identical to the pre-incremental driver.
    """
    if trace is not None:
        with tracing(trace):
            return _check_with_spec_impl(
                spec, history, budget, prepass, trace, reuse
            )
    # Read the module global directly: this is the gate on the untraced
    # hot path, and an attribute load is cheaper than a function call.
    return _check_with_spec_impl(
        spec, history, budget, prepass, _sink_state._ACTIVE, reuse
    )


def _render_rf(rf: ReadsFrom) -> tuple[tuple[str, str], ...]:
    """The attribution as rendered (read, source) pairs, deterministic order."""
    return tuple(
        (str(r), "" if w is None else str(w))
        for r, w in sorted(rf.items(), key=lambda kv: (str(kv[0].proc), kv[0].index))
    )


def _check_with_spec_impl(
    spec,
    history: SystemHistory,
    budget: SearchBudget | None,
    prepass: bool,
    sink: TraceSink | None,
    reuse: Any | None = None,
) -> CheckResult:
    budget = budget or SearchBudget()
    if sink is not None:
        sink.emit(
            CheckStarted(
                model=spec.name,
                operations=len(history.operations),
                processors=len(history.procs),
            )
        )

    if prepass:
        # Imported lazily: repro.staticcheck imports kernel modules, so a
        # top-level import here would be circular.
        from repro.staticcheck.prepass import prepass_check

        if sink is not None:
            sink.emit(PhaseMark(phase="prepass", mark="start"))
        verdict = prepass_check(spec, history)
        if sink is not None:
            sink.emit(PhaseMark(phase="prepass", mark="end"))
        if verdict.decided:
            result = verdict.to_result()
            if sink is not None:
                # Narrate the pre-pass's witness the way the search would:
                # the views exist and are part of the returned result.
                for proc, view in result.views.items():
                    sink.emit(
                        ViewSolved(
                            proc=str(proc),
                            order=tuple(str(op) for op in view),
                        )
                    )
                sink.emit(
                    VerdictReached(
                        model=spec.name,
                        allowed=result.allowed,
                        explored=0,
                        reason=result.reason,
                    )
                )
            return result

    # Derive the candidate-source table once (shared across the specs a
    # sweep checks this history against); every layer below receives it.
    if sink is not None:
        sink.emit(PhaseMark(phase="compile", mark="start"))
    hp = history_plane(history)
    candidates = hp.candidates

    # A read of a value no write stores (and which is not the initial
    # value) cannot be legal in any view under any model.
    bad = impossible_read(history, candidates)
    if bad is not None:
        reason = f"{bad} observes a value never written to {bad.location!r}"
        if sink is not None:
            sink.emit(PhaseMark(phase="compile", mark="end"))
            sink.emit(
                VerdictReached(
                    model=spec.name, allowed=False, explored=0, reason=reason
                )
            )
        return CheckResult(
            spec.name,
            False,
            reason=reason,
            counterexample=Counterexample(spec.name, "impossible-value", reason),
        )

    cc = compile_constraints(spec, history)
    if sink is not None:
        sink.emit(PhaseMark(phase="compile", mark="end"))
        sink.emit(PhaseMark(phase="search", mark="start"))
    try:
        return _search_candidates(
            spec, history, budget, sink, hp, candidates, cc, reuse
        )
    finally:
        if sink is not None:
            sink.emit(PhaseMark(phase="search", mark="end"))


#: Frontier chunk sizes for batched candidate gating: start at one so the
#: common admit-on-first-candidate check pays nothing for batching, ramp
#: geometrically so DENY verdicts (which enumerate the whole frontier
#: anyway) hand the backend large batches.
_FRONTIER_RAMP_CAP = 64


def _gate_chunk(
    cc: CompiledConstraints,
    plane,
    chunk: Sequence[Any],
    orderings: Sequence[Sequence[int] | None],
) -> list[tuple[list[int], dict[Any, list[int]] | None] | None]:
    """Assemble and gate a whole chunk of mutual candidates at once.

    The batched counterpart of ``CompiledConstraints.assemble_base``: the
    raw base masks are built per candidate (chains are tiny), then the
    acyclicity gate + closure of the entire frontier goes through the
    active backend in one ``gate_batch`` call.  The gate is a pure
    function of each plane, so results are identical to the sequential
    path for every backend — the reference backend's ``gate_batch`` *is*
    the sequential path.
    """
    raw = [
        cc._base_masks(plane, cand.chains, ordering)
        for cand, ordering in zip(chunk, orderings)
    ]
    gated = active_backend().gate_batch([masks for masks, _ in raw], cc.n)
    return [
        None if closed is None else (closed, raw[i][1])
        for i, closed in enumerate(gated)
    ]


def _try_candidate(
    spec,
    budget: SearchBudget,
    sink: TraceSink | None,
    cc: CompiledConstraints,
    plane,
    rf: ReadsFrom,
    cand,
    prepared: tuple[list[int], dict[Any, list[int]] | None],
    propagate: bool,
    explored: int,
    history: SystemHistory,
) -> tuple[int, CheckResult | None]:
    """Run one gated candidate's labeled-extra loop and view searches.

    Returns the updated ``explored`` count and the ADMIT result, or
    ``None`` when every labeled extra of this candidate is exhausted.
    Shared verbatim by the sequential (incremental-reuse) and batched
    drivers so the two cannot drift.
    """
    base, own = prepared
    prop = cc.candidate_propagation(plane, cand.coherence) if propagate else None
    if sink is not None and prop is not None:
        sink.emit(PropagationApplied(edges=sum(m.bit_count() for m in prop)))
    n_extra = 0
    for extra in iter_labeled_extras(
        spec, history, rf, cand.coherence, budget.max_labeled_orders
    ):
        explored += 1
        if explored > budget.max_serializations:
            raise CheckerError(
                f"{spec.name}: search budget exceeded after "
                f"{budget.max_serializations} candidate serializations"
            )
        if sink is not None and extra is not None:
            n_extra += 1
            order = extra.chains[0] if extra.chains else ()
            sink.emit(
                LabeledExtraTried(
                    index=n_extra, order=tuple(str(op) for op in order)
                )
            )
        extra_m = cc.extra_masks(extra)
        views = _solve_views(cc, base, own, extra_m, prop, sink)
        if views is not None:
            if sink is not None:
                sink.emit(
                    VerdictReached(
                        model=spec.name, allowed=True, explored=explored
                    )
                )
            return explored, CheckResult(
                spec.name,
                True,
                views=views,
                explored=explored,
                witness=Witness(
                    views=views, reads_from=rf, coherence=cand.coherence
                ),
            )
    return explored, None


def _search_candidates(
    spec,
    history: SystemHistory,
    budget: SearchBudget,
    sink: TraceSink | None,
    hp,
    candidates,
    cc: CompiledConstraints,
    reuse: Any | None = None,
) -> CheckResult:
    """Layers 1–4 composed: the enumeration loop of the spec-driven driver."""
    # Propagation edges are attribution-forced, hence sound only when the
    # attribution is the unique one (see constraints.candidate_propagation).
    unique_rf = hp.unique_rf
    propagate = unique_rf is not None
    if reuse is not None and not propagate:
        # Failure memory is keyed per candidate under the single unique
        # attribution; an ambiguous history enumerates attributions and
        # the keys would collide across them.
        reuse = None
    if reuse is not None:
        reuse.start()
    explored = 0
    attributions = (
        (unique_rf,)
        if propagate
        else iter_attributions(history, budget.max_reads_from, candidates)
    )
    n_attr = 0
    for rf in attributions:
        n_attr += 1
        if sink is not None:
            sink.emit(
                AttributionTried(
                    index=n_attr, unique=propagate, assignment=_render_rf(rf)
                )
            )
        plane = cc.plane(rf, propagate)
        if reuse is not None:
            # Sequential driver: the failure-memory hook interleaves a
            # per-candidate lookup with the gate, so candidates go one at
            # a time through the reference primitives (sessions check a
            # single appended history — there is no frontier to batch).
            n_cand = 0
            for cand in iter_mutual_candidates(
                spec,
                history,
                rf,
                use_reads_from_pruning=budget.use_reads_from_pruning,
                unambiguous=propagate,
            ):
                n_cand += 1
                if sink is not None:
                    sink.emit(
                        CandidateTried(
                            index=n_cand,
                            chains=tuple(
                                tuple(str(op) for op in chain)
                                for chain in cand.chains
                            ),
                        )
                    )
                mode = reuse.lookup(cand)
                if mode == "cyclic":
                    # The prefix's cycle only gained edges; skip without
                    # counting, exactly as a fresh assemble_base rejection.
                    continue
                if mode == "stuck":
                    if reuse.needs_probe(cand):
                        # The appended ops entered this candidate's chains,
                        # so the acyclicity gate could now flip; replay it.
                        ordering = (
                            spec.ordering.build(
                                history, rf, cand.coherence
                            ).pred_masks(cc.ops)
                            if cc.needs_coherence
                            else None
                        )
                        if not cc.base_acyclic(plane, cand.chains, ordering):
                            reuse.record(cand, "cyclic")
                            continue
                    # The prefix exhausted this candidate's view searches
                    # and extension only constrains them further; count it
                    # explored (the extras loop is the single ``None``
                    # entry whenever the hook is installed) and move on.
                    reuse.record(cand, "stuck")
                    explored += 1
                    if explored > budget.max_serializations:
                        raise CheckerError(
                            f"{spec.name}: search budget exceeded after "
                            f"{budget.max_serializations} candidate serializations"
                        )
                    continue
                ordering = (
                    spec.ordering.build(history, rf, cand.coherence).pred_masks(
                        cc.ops
                    )
                    if cc.needs_coherence
                    else None
                )
                prepared = cc.assemble_base(plane, cand.chains, ordering)
                if prepared is None:
                    reuse.record(cand, "cyclic")
                    continue
                explored, result = _try_candidate(
                    spec, budget, sink, cc, plane, rf, cand, prepared,
                    propagate, explored, history,
                )
                if result is not None:
                    return result
                reuse.record(cand, "stuck")
        else:
            # Batched driver: pull candidates in geometrically ramping
            # chunks and gate each whole frontier chunk through the
            # active backend in one call.  Pulling candidates ahead of
            # processing has no observable effect (enumeration emits no
            # events), the ramp starts at one so an admit-on-first check
            # does no extra work, and the per-candidate pass below runs
            # in enumeration order — so events, explored counts, budget
            # errors and the first witness are byte-identical to the
            # sequential driver on every backend.
            cand_iter = iter_mutual_candidates(
                spec,
                history,
                rf,
                use_reads_from_pruning=budget.use_reads_from_pruning,
                unambiguous=propagate,
            )
            n_cand = 0
            chunk_size = 1
            while True:
                chunk = list(islice(cand_iter, chunk_size))
                if not chunk:
                    break
                chunk_size = min(chunk_size * 4, _FRONTIER_RAMP_CAP)
                orderings = [
                    spec.ordering.build(history, rf, cand.coherence).pred_masks(
                        cc.ops
                    )
                    if cc.needs_coherence
                    else None
                    for cand in chunk
                ]
                gated = _gate_chunk(cc, plane, chunk, orderings)
                for cand, prepared in zip(chunk, gated):
                    n_cand += 1
                    if sink is not None:
                        sink.emit(
                            CandidateTried(
                                index=n_cand,
                                chains=tuple(
                                    tuple(str(op) for op in chain)
                                    for chain in cand.chains
                                ),
                            )
                        )
                    if prepared is None:
                        continue
                    explored, result = _try_candidate(
                        spec, budget, sink, cc, plane, rf, cand, prepared,
                        propagate, explored, history,
                    )
                    if result is not None:
                        return result
    reason = "no choice of views satisfies the model's requirements"
    if sink is not None:
        sink.emit(
            VerdictReached(
                model=spec.name, allowed=False, explored=explored, reason=reason
            )
        )
    return CheckResult(
        spec.name,
        False,
        reason=reason,
        explored=explored,
    )


def _union(a: Sequence[int], b: Sequence[int] | None) -> Sequence[int]:
    if b is None:
        return a
    return [x | y for x, y in zip(a, b)]


def _solve_one_view(
    n: int,
    masks: Sequence[int],
    op_loc: Sequence[int],
    read_vals: Sequence[int | None],
    write_vals: Sequence[int | None],
    n_locs: int,
    sink: TraceSink | None,
    proc_label: str,
    render: Sequence[str],
) -> list[int] | None:
    """One view search, narrated when a sink is present."""
    if sink is None:
        return _dfs_find(
            n, masks, op_loc, read_vals, write_vals, n_locs, INITIAL_VALUE, True
        )
    sink.emit(ViewSearch(proc=proc_label, operations=n))
    order = _dfs_find_traced(
        n,
        masks,
        op_loc,
        read_vals,
        write_vals,
        n_locs,
        INITIAL_VALUE,
        True,
        sink,
        proc_label,
        render,
    )
    if order is None:
        sink.emit(ViewStuck(proc=proc_label))
    else:
        sink.emit(
            ViewSolved(proc=proc_label, order=tuple(render[i] for i in order))
        )
    return order


def _solve_views(
    cc: CompiledConstraints,
    base: Sequence[int],
    own: dict[Any, Sequence[int]] | None,
    extra: Sequence[int] | None,
    prop: Sequence[int] | None,
    sink: TraceSink | None = None,
) -> dict[Any, View] | None:
    history = cc.history
    if cc.identical:
        up = cc.universe_plane
        if cc.n > _MAX_OPS:
            raise CheckerError(
                f"view of {cc.n} operations exceeds the "
                f"{_MAX_OPS}-operation solver limit"
            )
        masks = _union(_union(base, extra), prop)
        if not masks_acyclic(masks, cc.n):
            if sink is not None:
                sink.emit(ViewStuck(proc="*", reason="constraint-cycle"))
            return None
        order = _solve_one_view(
            cc.n,
            masks,
            up.op_loc,
            up.read_vals,
            up.write_vals,
            up.n_locs,
            sink,
            "*",
            [str(op) for op in cc.ops] if sink is not None else (),
        )
        if order is None:
            return None
        sequence = [cc.ops[i] for i in order]
        return {
            proc: View(proc, sequence, history, validate=False)
            for proc in history.procs
        }

    views: dict[Any, View] = {}
    combined = base if extra is None else _union(base, extra)
    for proc in cc.procs:
        masks = combined
        if own is not None:
            # Release consistency: the ordering binds this processor's own
            # operations only in its own view.  The pre-kernel solver checks
            # acyclicity of the combination over the *full* universe before
            # restricting; mirror that (it can reject candidates a
            # view-local check would accept).
            masks = _union(masks, own[proc])
            if not masks_acyclic(masks, cc.n):
                if sink is not None:
                    sink.emit(ViewStuck(proc=str(proc), reason="constraint-cycle"))
                return None
        masks = _union(masks, prop)
        vp = cc.views[proc]
        v = len(vp.members)
        if v > _MAX_OPS:
            raise CheckerError(
                f"view of {v} operations exceeds the "
                f"{_MAX_OPS}-operation solver limit"
            )
        local = restrict_masks(masks, vp.members)
        if not masks_acyclic(local, v):
            if sink is not None:
                sink.emit(ViewStuck(proc=str(proc), reason="constraint-cycle"))
            return None
        order = _solve_one_view(
            v,
            local,
            vp.op_loc,
            vp.read_vals,
            vp.write_vals,
            vp.n_locs,
            sink,
            str(proc),
            [str(cc.ops[g]) for g in vp.members] if sink is not None else (),
        )
        if order is None:
            return None
        views[proc] = View(
            proc, [cc.ops[vp.members[i]] for i in order], history, validate=False
        )
    return views


# -- counterexamples ----------------------------------------------------------


def explain_with_spec(
    spec,
    history: SystemHistory,
    budget: SearchBudget | None = None,
) -> CheckResult:
    """Like :func:`check_with_spec`, but attach a counterexample when denied.

    The counterexample reports the first unsatisfiable view constraint the
    kernel hits on the first choice of attribution and mutual-consistency
    candidate — the shape ``python -m repro explain`` prints.
    """
    result = check_with_spec(spec, history, budget)
    if result.allowed or result.counterexample is not None:
        return result
    budget = budget or SearchBudget()
    cx = _first_failure(spec, history, budget)
    return CheckResult(
        result.model,
        False,
        reason=result.reason,
        explored=result.explored,
        counterexample=cx,
    )


def _first_failure(
    spec, history: SystemHistory, budget: SearchBudget
) -> Counterexample:
    cc = compile_constraints(spec, history)
    propagate = unambiguous_reads_from(history) is not None
    for rf in iter_attributions(history, budget.max_reads_from):
        plane = cc.plane(rf)
        for cand in iter_mutual_candidates(
            spec, history, rf, use_reads_from_pruning=budget.use_reads_from_pruning
        ):
            ordering = (
                spec.ordering.build(history, rf, cand.coherence).pred_masks(cc.ops)
                if cc.needs_coherence
                else None
            )
            prepared = cc.assemble_base(plane, cand.chains, ordering)
            if prepared is None:
                return _cyclic_counterexample(spec, history, rf, cand)
            base, own = prepared
            prop = (
                cc.candidate_propagation(plane, cand.coherence) if propagate else None
            )
            for extra in iter_labeled_extras(
                spec, history, rf, cand.coherence, budget.max_labeled_orders
            ):
                extra_m = cc.extra_masks(extra)
                return _stuck_view_counterexample(
                    cc, base, own, extra_m, prop
                )
            break  # no labeled extras: fall through to the generic message
        else:
            return Counterexample(
                spec.name,
                "cyclic-constraints",
                "the reads-from attribution forces contradictory "
                "mutual-consistency orders (no candidate serialization exists)",
            )
        break
    return Counterexample(
        spec.name,
        "stuck-view",
        "no labeled serialization satisfies the model's labeled discipline",
    )


def _cyclic_counterexample(
    spec, history: SystemHistory, rf: ReadsFrom, cand
) -> Counterexample:
    """Reconstruct the cycle of the first candidate on the relation plane."""
    from repro.kernel.constraints import bracketing_edges

    rel = spec.ordering.build(history, rf, cand.coherence)
    combined: Relation[Operation] = Relation(history.operations)
    if not spec.ordering_own_view_only:
        combined = combined.union(rel)
    for chain in cand.chains:
        for i, a in enumerate(chain):
            for b in chain[i + 1:]:
                combined.add(a, b)
    if spec.bracketing:
        combined = combined.union(bracketing_edges(history, rf))
    cycle = combined.find_cycle() or []
    return Counterexample(
        spec.name,
        "cyclic-constraints",
        "the model's ordering constraints are contradictory "
        f"(cycle of {max(len(cycle) - 1, 0)} operations)",
        cycle=tuple(cycle),
    )


def _stuck_view_counterexample(
    cc: CompiledConstraints,
    base: Sequence[int],
    own: dict[Any, Sequence[int]] | None,
    extra: Sequence[int] | None,
    prop: Sequence[int] | None,
) -> Counterexample:
    """Diagnose the first processor whose view search gets stuck."""
    spec = cc.spec
    combined = _union(_union(base, extra), prop)
    if cc.identical:
        probes = [(None, cc.universe_plane, combined)]
    else:
        probes = []
        for proc in cc.procs:
            masks = combined
            if own is not None:
                masks = _union(masks, own[proc])
            probes.append((proc, cc.views[proc], masks))
    for proc, vp, masks in probes:
        members = vp.members
        local = restrict_masks(masks, members)
        v = len(members)
        stuck = _deepest_stuck_state(
            v, local, vp.op_loc, vp.read_vals, vp.write_vals, vp.n_locs
        )
        if stuck is None:
            continue
        depth, placed, values = stuck
        loc_names = sorted(
            {cc.ops[g].location for g in members}
        )
        blocked: list[tuple[Operation, str]] = []
        for i in range(v):
            if placed & (1 << i):
                continue
            op = cc.ops[members[i]]
            missing = local[i] & ~placed
            if missing:
                j = (missing & -missing).bit_length() - 1
                blocked.append(
                    (op, f"must follow {cc.ops[members[j]]}")
                )
                continue
            rv = vp.read_vals[i]
            cur = values[vp.op_loc[i]]
            blocked.append(
                (op, f"reads {rv} but {loc_names[vp.op_loc[i]]} holds {cur}")
            )
        who = "the common view" if proc is None else f"processor {proc!r}"
        return Counterexample(
            spec.name,
            "stuck-view",
            f"no legal view exists for {who}",
            proc=proc,
            stuck_after=depth,
            blocked=tuple(blocked),
        )
    # Every view individually satisfiable under the first candidate, yet the
    # driver rejected: the failure spans candidates; report generically.
    return Counterexample(
        spec.name,
        "stuck-view",
        "every candidate serialization leaves some processor without "
        "a legal view",
    )


def _deepest_stuck_state(
    n: int,
    pred: Sequence[int],
    op_loc: Sequence[int],
    read_vals: Sequence[int | None],
    write_vals: Sequence[int | None],
    n_locs: int,
) -> tuple[int, int, tuple[int, ...]] | None:
    """The deepest dead-end of a failing search, or ``None`` if it succeeds.

    Returns ``(operations placed, placed mask, memory values)`` for the
    failing partial view with the most operations placed — the most
    informative frontier to show a human.
    """
    if not masks_acyclic(pred, n):
        # A constraint cycle: report the empty prefix; the blocked list
        # will show the mutual blocking.
        return 0, 0, tuple([INITIAL_VALUE] * n_locs)
    full = (1 << n) - 1
    failed: set[tuple[int, tuple[int, ...]]] = set()
    best: list[tuple[int, int, tuple[int, ...]]] = [
        (0, 0, tuple([INITIAL_VALUE] * n_locs))
    ]

    def dfs(placed: int, values: tuple[int, ...], depth: int) -> bool:
        if placed == full:
            return True
        key = (placed, values)
        if key in failed:
            return False
        progressed = False
        for i in range(n):
            bit = 1 << i
            if placed & bit or (pred[i] & ~placed):
                continue
            li = op_loc[i]
            rv = read_vals[i]
            if rv is not None and values[li] != rv:
                continue
            wv = write_vals[i]
            new_values = values
            if wv is not None and values[li] != wv:
                new_values = values[:li] + (wv,) + values[li + 1:]
            progressed = True
            if dfs(placed | bit, new_values, depth + 1):
                return True
        if not progressed and depth > best[0][0]:
            best[0] = (depth, placed, values)
        failed.add(key)
        return False

    if dfs(0, tuple([INITIAL_VALUE] * n_locs), 0):
        return None
    return best[0]
