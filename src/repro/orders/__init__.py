"""Order relations over histories: po, ppo, wb, co, coherence, sem.

These implement the "Ordering" parameter of the paper's framework
(Section 2) plus the coherence machinery of Section 3.3.
"""

from repro.orders.causal import causal_base_pairs, causal_relation
from repro.orders.memo import (
    RelationMemo,
    active_memo,
    memoized_relation,
    relation_memo,
)
from repro.orders.coherence import (
    CoherenceOrder,
    coherence_position,
    coherence_relation,
    enumerate_coherence_orders,
    forced_coherence_pairs,
    program_write_chains,
)
from repro.orders.program_order import (
    in_program_order,
    po_positions,
    po_relation,
    ppo_base_pairs,
    ppo_relation,
)
from repro.orders.relation import Relation
from repro.orders.semi_causal import rrb_relation, rwb_relation, sem_relation
from repro.orders.writes_before import (
    ReadsFrom,
    reads_from_candidates,
    reads_from_choices,
    unique_reads_from,
    wb_relation,
)

__all__ = [
    "active_memo",
    "causal_base_pairs",
    "causal_relation",
    "memoized_relation",
    "relation_memo",
    "RelationMemo",
    "CoherenceOrder",
    "coherence_position",
    "coherence_relation",
    "enumerate_coherence_orders",
    "forced_coherence_pairs",
    "in_program_order",
    "po_positions",
    "po_relation",
    "ppo_base_pairs",
    "ppo_relation",
    "program_write_chains",
    "ReadsFrom",
    "reads_from_candidates",
    "reads_from_choices",
    "Relation",
    "rrb_relation",
    "rwb_relation",
    "sem_relation",
    "unique_reads_from",
    "wb_relation",
]
