"""Semi-causality ``->sem`` with its remote components (Section 3.3).

Processor consistency (DASH flavor) orders operations inside each view by a
*semi-causality* relation that weakens full causality.  It augments the
partial program order with two "remote" orders built on a coherence order:

Remote writes-before (``->rwb``)
    ``o1 ->rwb o2`` iff ``o1 = w(x)v``, ``o2 = r(y)u``, and there is a write
    ``o' = w(y)u`` with ``o1 ->ppo o'`` and ``o2`` reads from ``o'``.  The
    ordinary writes-before edge would relate ``o'`` to ``o2``; the remote
    variant pulls the *earlier* (program-ordered) write of the same
    processor in front of the observing read.

Remote reads-before (``->rrb``)
    ``o1 ->rrb o2`` iff ``o1 = r(x)v``, ``o2 = w(y)u``, and there is a write
    ``o' = w(x)v'`` such that ``o1`` precedes ``o'`` in coherence order (the
    write ``o1`` read is older than ``o'``) and ``o' ->ppo o2``.

Then::

    ->sem  =  (->ppo  ∪  ->rwb  ∪  ->rrb)+

Legality of views supplies the ordinary writes-before constraint, so the
paper does not fold ``->wb`` into ``->sem`` and neither do we.
"""

from __future__ import annotations

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.coherence import CoherenceOrder, coherence_position
from repro.orders.program_order import ppo_relation
from repro.orders.relation import Relation
from repro.orders.writes_before import ReadsFrom

__all__ = ["rwb_relation", "rrb_relation", "sem_relation"]


def rwb_relation(
    history: SystemHistory,
    reads_from: ReadsFrom,
    ppo: Relation[Operation] | None = None,
) -> Relation[Operation]:
    """The remote writes-before order for a fixed reads-from assignment."""
    if ppo is None:
        ppo = ppo_relation(history)
    rel: Relation[Operation] = Relation(history.operations)
    for read_op, src in reads_from.items():
        if src is None:
            continue
        # Every write program-ordered (by ppo) before the source write is
        # remotely ordered before the observing read.
        for earlier in history.ops_of(src.proc):
            if earlier.is_write and earlier.uid != src.uid and ppo.orders(earlier, src):
                rel.add(earlier, read_op)
    return rel


def rrb_relation(
    history: SystemHistory,
    reads_from: ReadsFrom,
    coherence: CoherenceOrder,
    ppo: Relation[Operation] | None = None,
) -> Relation[Operation]:
    """The remote reads-before order for fixed reads-from and coherence orders."""
    if ppo is None:
        ppo = ppo_relation(history)
    pos = coherence_position(coherence)
    rel: Relation[Operation] = Relation(history.operations)
    for read_op, src in reads_from.items():
        if not read_op.is_read:
            continue
        loc = read_op.location
        # Writes to the read's location that are coherence-newer than the
        # value it observed (all writes, when it observed the initial value).
        newer = [
            w
            for w in coherence.get(loc, ())
            if src is None or (w.uid != src.uid and pos[w.uid] > pos[src.uid])
        ]
        for o_prime in newer:
            for later in history.ops_of(o_prime.proc):
                if later.is_write and later.uid != o_prime.uid and ppo.orders(o_prime, later):
                    rel.add(read_op, later)
    return rel


def sem_relation(
    history: SystemHistory,
    reads_from: ReadsFrom,
    coherence: CoherenceOrder,
) -> Relation[Operation]:
    """The semi-causality relation ``(->ppo ∪ ->rwb ∪ ->rrb)+``."""
    ppo = ppo_relation(history)
    rwb = rwb_relation(history, reads_from, ppo)
    rrb = rrb_relation(history, reads_from, coherence, ppo)
    return ppo.union(rwb, rrb).transitive_closure()
