"""Program order ``->po`` and partial program order ``->ppo`` (Section 2).

Program order totally orders each processor's operations by issue index.
The *partial* program order models non-blocking writes: a read that follows
a write to a different location may bypass it.  Formally ``o1 ->ppo o2``
when ``o1 ->po o2`` and one of

* ``o1`` and ``o2`` access the same location,
* both are reads,
* both are writes,
* ``o1`` is a read and ``o2`` is a write, or
* the pair is implied transitively.

Only write→read pairs on distinct locations escape the order.  RMW
operations count as both read and write, so they order against everything —
they behave as fences, matching the SPARC treatment of ``swap``.
"""

from __future__ import annotations

from typing import Any

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.memo import memoized_relation
from repro.orders.relation import Relation

__all__ = [
    "po_positions",
    "po_relation",
    "ppo_relation",
    "ppo_base_pairs",
    "in_program_order",
]


def po_positions(history: SystemHistory) -> dict[tuple[Any, int], int]:
    """Map each operation identity to its program-order index.

    Program order only relates operations of the same processor, so
    position-within-processor plus a processor equality check answers any
    ``->po`` query in O(1); see :func:`in_program_order`.
    """
    return {op.uid: op.index for op in history.operations}


def in_program_order(o1: Operation, o2: Operation) -> bool:
    """True when ``o1 ->po o2`` (same processor, earlier index)."""
    return o1.proc == o2.proc and o1.index < o2.index


@memoized_relation
def po_relation(history: SystemHistory) -> Relation[Operation]:
    """The full (transitive) program-order relation as pairs.

    Materializes O(k²) pairs per processor of k operations — intended for
    small histories; use :func:`in_program_order` for point queries.
    """
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                rel.add(a, b)
    return rel


def _ppo_base_condition(o1: Operation, o2: Operation) -> bool:
    """The non-transitive cases of the ``->ppo`` definition."""
    if o1.location == o2.location:
        return True
    if o1.is_pure_read and o2.is_pure_read:
        return True
    if o1.is_write and o2.is_write:
        return True
    if o1.is_read and o2.is_write:
        return True
    # RMWs have both halves, so (RMW, read) pairs fall under "both reads".
    if o1.is_read and o2.is_read:
        return True
    return False


@memoized_relation
def ppo_base_pairs(history: SystemHistory) -> Relation[Operation]:
    """Direct (pre-closure) ``->ppo`` pairs of a history."""
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if _ppo_base_condition(a, b):
                    rel.add(a, b)
    return rel


@memoized_relation
def ppo_relation(history: SystemHistory) -> Relation[Operation]:
    """The partial program order ``->ppo`` (transitively closed).

    The closure matters: ``w(x) ->ppo r(x)`` (same location) and
    ``r(x) ->ppo r(y)`` (both reads) force ``w(x) ->ppo r(y)`` even though
    that pair alone is a write→read on distinct locations.
    """
    return ppo_base_pairs(history).transitive_closure()
