"""The causal order ``->co`` (Section 2).

Lamport's happens-before relation adapted to shared memory: two operations
are causally ordered when they are related by program order, by
writes-before (a read observing a write plays the role of message receipt),
or transitively::

    ->co  =  (->po  ∪  ->wb)+

Causal memory (Section 3.5) requires processor views to respect ``->co``;
PRAM requires only ``->po``.  The gap between the two is exactly what
Figure 4 exhibits.
"""

from __future__ import annotations

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.memo import memoized_relation
from repro.orders.relation import Relation
from repro.orders.program_order import po_relation
from repro.orders.writes_before import ReadsFrom, wb_relation

__all__ = ["causal_relation", "causal_base_pairs"]


@memoized_relation
def causal_base_pairs(
    history: SystemHistory, reads_from: ReadsFrom | None = None
) -> Relation[Operation]:
    """The union ``->po ∪ ->wb`` before transitive closure."""
    return po_relation(history).union(wb_relation(history, reads_from))


@memoized_relation
def causal_relation(
    history: SystemHistory, reads_from: ReadsFrom | None = None
) -> Relation[Operation]:
    """The causal order ``->co = (->po ∪ ->wb)+`` of a history.

    Parameters
    ----------
    history:
        The system execution history.
    reads_from:
        An explicit reads-from assignment; when omitted the unique one is
        inferred (requires distinct write values, else
        :class:`~repro.core.errors.AmbiguousValueError`).
    """
    return causal_base_pairs(history, reads_from).transitive_closure()
