"""Coherence: per-location total orders on writes (Sections 2 and 3.3).

Coherence is the mutual-consistency requirement that all writes *to a given
location* appear in the same order in every processor view.  A *coherence
order* assigns each location a total order over its writes, extending each
processor's program order on that location (a processor's own same-location
writes are ordered by ``->ppo``, so any view — and hence any shared
per-location order — must respect it).

Checkers that need coherence (PC, RC, plain coherent memory) enumerate
candidate coherence orders with :func:`enumerate_coherence_orders` and test
each; :func:`forced_coherence_pairs` narrows the enumeration using
reads-from information before the (worst-case factorial) interleaving.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.relation import Relation
from repro.orders.writes_before import ReadsFrom

__all__ = [
    "CoherenceOrder",
    "program_write_chains",
    "forced_coherence_pairs",
    "enumerate_coherence_orders",
    "coherence_relation",
    "coherence_position",
]

#: A coherence order: location -> totally ordered tuple of its writes.
CoherenceOrder = Mapping[str, tuple[Operation, ...]]


def program_write_chains(
    history: SystemHistory, location: str
) -> list[tuple[Operation, ...]]:
    """Per-processor program-order chains of writes to ``location``."""
    chains = []
    for proc in history.procs:
        chain = tuple(
            op
            for op in history.ops_of(proc)
            if op.is_write and op.location == location
        )
        if chain:
            chains.append(chain)
    return chains


def forced_coherence_pairs(
    history: SystemHistory,
    location: str,
    reads_from: ReadsFrom | None = None,
) -> Relation[Operation]:
    """Edges every admissible coherence order of ``location`` must contain.

    Two sources of forced edges:

    * program order between a processor's own writes to the location;
    * when ``reads_from`` is supplied: if processor ``p`` reads from write
      ``w1`` and *later in program order* writes ``w2`` to the same location,
      then ``w1`` precedes ``w2`` (``p``'s view puts ``w1`` before ``w2`` and
      views respect the shared order).

    These are sound prunings, not a complete axiomatisation — enumeration
    plus per-view checking remains the decision procedure.
    """
    writes = tuple(
        op for op in history.operations if op.is_write and op.location == location
    )
    rel: Relation[Operation] = Relation(writes)
    for chain in program_write_chains(history, location):
        for a, b in zip(chain, chain[1:]):
            rel.add(a, b)
    if reads_from is not None:
        write_set = {w.uid for w in writes}
        for read_op, src in reads_from.items():
            if src is None or read_op.location != location:
                continue
            if src.uid not in write_set:
                continue
            for later in history.ops_of(read_op.proc)[read_op.index + 1:]:
                if later.is_write and later.location == location and later.uid != src.uid:
                    rel.add(src, later)
    return rel


def enumerate_coherence_orders(
    history: SystemHistory,
    reads_from: ReadsFrom | None = None,
) -> Iterator[dict[str, tuple[Operation, ...]]]:
    """Enumerate every coherence order consistent with the forced edges.

    The result iterates over the Cartesian product, per location, of all
    linear extensions of :func:`forced_coherence_pairs`.  Intended for the
    small histories used in litmus tests and lattice enumeration.
    """
    locations = [
        loc for loc in history.locations if any(True for _ in history.writes_to(loc))
    ]
    per_loc: list[list[tuple[Operation, ...]]] = []
    for loc in locations:
        forced = forced_coherence_pairs(history, loc, reads_from)
        if not forced.is_acyclic():
            return  # contradictory constraints: no coherence order exists
        per_loc.append([tuple(order) for order in forced.all_topological_sorts()])
    for combo in itertools.product(*per_loc):
        yield dict(zip(locations, combo))


def coherence_relation(
    history: SystemHistory, order: CoherenceOrder
) -> Relation[Operation]:
    """The pair relation induced by a coherence order (adjacent-closure form)."""
    rel: Relation[Operation] = Relation(history.operations)
    for chain in order.values():
        for i, a in enumerate(chain):
            for b in chain[i + 1:]:
                rel.add(a, b)
    return rel


def coherence_position(order: CoherenceOrder) -> dict[tuple, int]:
    """Map each write's identity to its rank within its location's order."""
    pos: dict[tuple, int] = {}
    for chain in order.values():
        for i, w in enumerate(chain):
            pos[w.uid] = i
    return pos
