"""Per-history memoization of derived order relations.

Every checker derives the same substrate from a history — program order,
partial program order, the reads-from attribution, writes-before — and a
batch workload ("check N histories against M models") re-derives that
substrate M times per history.  This module provides the memo layer the
:mod:`repro.engine` batch engine activates around its checks: while a
:class:`RelationMemo` is active, the relation constructors decorated with
:func:`memoized_relation` compute each (history, relation) pair once and
serve every later request from the memo.

The layer is opt-in and invisible by default: with no active memo the
decorated functions behave exactly as before.  Memoization only applies to
calls that depend on the history alone (optional arguments left at ``None``);
a call that supplies an explicit reads-from assignment or other argument
bypasses the memo, because the result is then not a function of the history.

Sharing discipline: memoized values are shared objects.  Every call site in
the framework treats derived relations as immutable (the
:class:`~repro.orders.relation.Relation` combinators are functional and
checkers only mutate relations they construct themselves), which is what
makes the sharing sound.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, TypeVar

__all__ = ["RelationMemo", "active_memo", "memoized_relation", "relation_memo"]

F = TypeVar("F", bound=Callable[..., Any])

_ACTIVE: ContextVar["RelationMemo | None"] = ContextVar(
    "repro_relation_memo", default=None
)


class RelationMemo:
    """A bounded, history-keyed memo of derived relations.

    One table of named values per history, evicted least-recently-used
    once ``max_histories`` distinct histories have been seen (the engine
    checks histories in batches, so recency tracks the working set
    exactly).  Hit/miss counters feed the engine's metrics.
    """

    __slots__ = ("max_histories", "hits", "misses", "_tables")

    def __init__(self, max_histories: int = 64) -> None:
        if max_histories < 1:
            raise ValueError(f"max_histories must be >= 1, got {max_histories}")
        self.max_histories = max_histories
        self.hits = 0
        self.misses = 0
        self._tables: OrderedDict[Any, dict[str, Any]] = OrderedDict()

    # -- keying (overridable; the engine cache keys canonically) ---------------

    def _table(self, history: Any) -> dict[str, Any]:
        """The value table for ``history``, creating (and evicting) as needed."""
        table = self._tables.get(history)
        if table is None:
            table = {}
            self._tables[history] = table
            while len(self._tables) > self.max_histories:
                self._tables.popitem(last=False)
        else:
            self._tables.move_to_end(history)
        return table

    # -- the memo protocol -----------------------------------------------------

    def fetch(self, history: Any, name: str, compute: Callable[[], Any]) -> Any:
        """The value of ``name`` for ``history``, computing it on first use."""
        table = self._table(history)
        if name in table:
            self.hits += 1
            return table[name]
        self.misses += 1
        value = compute()
        table[name] = value
        return value

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def lookups(self) -> int:
        """Total fetches served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from the memo (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def counters(self) -> dict[str, int]:
        """Hit/miss counters as a plain dictionary (for metrics merging)."""
        return {"hits": self.hits, "misses": self.misses}

    def clear(self) -> None:
        """Drop every table and reset the counters."""
        self._tables.clear()
        self.hits = 0
        self.misses = 0


def active_memo() -> RelationMemo | None:
    """The memo installed by the innermost :func:`relation_memo`, if any."""
    return _ACTIVE.get()


@contextmanager
def relation_memo(memo: RelationMemo | None = None) -> Iterator[RelationMemo]:
    """Activate ``memo`` (or a fresh one) for the duration of the block.

    Nesting replaces the active memo for the inner block and restores the
    outer one afterwards; the memo object survives the block, so callers
    can read its counters or reactivate it later.
    """
    if memo is None:
        memo = RelationMemo()
    token = _ACTIVE.set(memo)
    try:
        yield memo
    finally:
        _ACTIVE.reset(token)


def memoized_relation(fn: F) -> F:
    """Route history-only calls of ``fn`` through the active memo.

    ``fn`` must take the history as its first argument and be a pure
    function of it when every other argument is left at ``None``.  Calls
    supplying any non-``None`` extra argument bypass the memo (their result
    depends on more than the history), as do all calls made while no memo
    is active.
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(history, *args, **kwargs):
        memo = _ACTIVE.get()
        if (
            memo is None
            or any(a is not None for a in args)
            or any(v is not None for v in kwargs.values())
        ):
            return fn(history, *args, **kwargs)
        return memo.fetch(history, name, lambda: fn(history))

    return wrapper  # type: ignore[return-value]
