"""The writes-before order ``->wb`` and reads-from analysis (Section 2).

``o1 ->wb o2`` when ``o1`` is a write, ``o2`` is a read of the same
location, and ``o2`` returns the value ``o1`` wrote.  With the conventional
*distinct write values* discipline (no two writes store the same value into
the same location) the relation is a function of the history; otherwise a
read may have several candidate writers and callers must either enumerate
the choices (:func:`reads_from_choices`) or accept an
:class:`~repro.core.errors.AmbiguousValueError`.

A read may also return the initial value 0 of a location, in which case it
reads from no write at all; such reads contribute no ``wb`` edge and their
source is represented as ``None``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping

from repro.core.errors import AmbiguousValueError
from repro.core.history import SystemHistory
from repro.core.operation import INITIAL_VALUE, Operation
from repro.orders.memo import memoized_relation
from repro.orders.relation import Relation

__all__ = [
    "ReadsFrom",
    "reads_from_candidates",
    "unique_reads_from",
    "reads_from_choices",
    "wb_relation",
]

#: A reads-from assignment: each read-half op maps to its source write, or
#: ``None`` when it reads the initial value.
ReadsFrom = Mapping[Operation, Operation | None]


@memoized_relation
def reads_from_candidates(
    history: SystemHistory,
) -> dict[Operation, tuple[Operation | None, ...]]:
    """All possible source writes for every read-half operation.

    A candidate is a write-half operation on the same location storing the
    value the read returned; ``None`` (the initial value) is a candidate when
    the read returned :data:`~repro.core.operation.INITIAL_VALUE`.  An RMW
    never reads from its own write half.
    """
    writes_by_loc: dict[str, list[Operation]] = {}
    for op in history.operations:
        if op.is_write:
            writes_by_loc.setdefault(op.location, []).append(op)

    out: dict[Operation, tuple[Operation | None, ...]] = {}
    for op in history.operations:
        if not op.is_read:
            continue
        wanted = op.value_read
        cands: list[Operation | None] = [
            w
            for w in writes_by_loc.get(op.location, [])
            if w.value_written == wanted and w.uid != op.uid
        ]
        if wanted == INITIAL_VALUE:
            cands.append(None)
        out[op] = tuple(cands)
    return out


@memoized_relation
def unique_reads_from(history: SystemHistory) -> dict[Operation, Operation | None]:
    """The reads-from function, when it is unambiguous.

    Raises
    ------
    AmbiguousValueError
        If any read has more than one candidate source (including the
        initial-value pseudo-source).  Reads with *no* candidate map to a
        missing entry; they make the history illegal under every model and
        are left for the checkers to reject.
    """
    out: dict[Operation, Operation | None] = {}
    for op, cands in reads_from_candidates(history).items():
        if len(cands) > 1:
            raise AmbiguousValueError(
                f"read {op} has {len(cands)} candidate writers; "
                "use reads_from_choices or distinct write values"
            )
        if cands:
            out[op] = cands[0]
    return out


@memoized_relation
def unambiguous_reads_from(
    history: SystemHistory,
) -> dict[Operation, Operation | None] | None:
    """The reads-from function if every read has at most one candidate.

    Returns ``None`` when any read is ambiguous — either two writes store
    its value into its location, or it returns the initial value 0 which
    some write also stores (initial-vs-written ambiguity; Bakery's
    ``choosing := false`` writes hit this case).  Reads with no candidate
    at all are simply absent from the result.
    """
    out: dict[Operation, Operation | None] = {}
    for op, cands in reads_from_candidates(history).items():
        if len(cands) > 1:
            return None
        if cands:
            out[op] = cands[0]
    return out


def reads_from_choices(history: SystemHistory) -> Iterator[dict[Operation, Operation | None]]:
    """Enumerate every total reads-from assignment of the history.

    Yields nothing when some read has no candidate source at all (the
    history is then illegal under every memory model).
    """
    cands = reads_from_candidates(history)
    reads = list(cands)
    option_lists = [cands[r] for r in reads]
    if any(not opts for opts in option_lists):
        return
    for combo in itertools.product(*option_lists):
        yield dict(zip(reads, combo))


@memoized_relation
def wb_relation(
    history: SystemHistory, reads_from: ReadsFrom | None = None
) -> Relation[Operation]:
    """The writes-before relation for a (given or inferred) reads-from map."""
    if reads_from is None:
        reads_from = unique_reads_from(history)
    rel: Relation[Operation] = Relation(history.operations)
    for read_op, src in reads_from.items():
        if src is not None:
            rel.add(src, read_op)
    return rel
