"""A small relation algebra over operations.

Every ordering parameter in the paper — program order, partial program
order, writes-before, causality, semi-causality, coherence — is a binary
relation over the operations of a history.  This module provides the one
:class:`Relation` type they all share, with the combinators the definitions
need: union, composition, transitive closure, restriction, acyclicity and
(all) topological extensions.

Performance
-----------
Transitive closure is the hot operation during lattice enumeration.  For
relations over more than a handful of elements we compute it by boolean
matrix squaring with NumPy (``log n`` squarings of an ``n × n`` adjacency
matrix); tiny relations use a direct worklist which has lower constant cost.
This follows the repository's profiling-first rule: the closure dominated
the enumeration profile before vectorization.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Iterator, TypeVar

import numpy as np

__all__ = ["Relation"]

T = TypeVar("T", bound=Hashable)

#: Below this element count the pure-Python closure is faster than NumPy.
_NUMPY_CLOSURE_THRESHOLD = 8


class Relation(Generic[T]):
    """A binary relation over a fixed, ordered universe of items.

    The universe is fixed at construction; pairs may be added afterwards
    while building, but the combinators (:meth:`union`,
    :meth:`transitive_closure`, …) are functional and return new relations.

    Items must be hashable.  Iteration orders are deterministic (universe
    order is preserved from construction), which keeps witnesses and
    counterexamples reproducible.
    """

    __slots__ = ("_items", "_index", "_succ")

    def __init__(self, items: Iterable[T], pairs: Iterable[tuple[T, T]] = ()) -> None:
        self._items: tuple[T, ...] = tuple(items)
        self._index: dict[T, int] = {x: i for i, x in enumerate(self._items)}
        if len(self._index) != len(self._items):
            raise ValueError("relation universe contains duplicate items")
        self._succ: list[set[int]] = [set() for _ in self._items]
        for a, b in pairs:
            self.add(a, b)

    # -- construction ----------------------------------------------------------

    def add(self, a: T, b: T) -> None:
        """Add the pair ``(a, b)``; both items must be in the universe."""
        self._succ[self._index[a]].add(self._index[b])

    @classmethod
    def from_chains(cls, chains: Iterable[Iterable[T]]) -> "Relation[T]":
        """Relation whose pairs are the adjacent pairs of each chain.

        The transitive closure of the result totally orders each chain;
        useful for building program order from processor histories.
        """
        items: list[T] = []
        pairs: list[tuple[T, T]] = []
        for chain in chains:
            chain = list(chain)
            items.extend(chain)
            pairs.extend(zip(chain, chain[1:]))
        rel = cls(items)
        for a, b in pairs:
            rel.add(a, b)
        return rel

    # -- basic queries -----------------------------------------------------------

    @property
    def items(self) -> tuple[T, ...]:
        """The universe, in construction order."""
        return self._items

    def __len__(self) -> int:
        return sum(len(s) for s in self._succ)

    def __contains__(self, pair: tuple[T, T]) -> bool:
        a, b = pair
        ia, ib = self._index.get(a), self._index.get(b)
        return ia is not None and ib is not None and ib in self._succ[ia]

    def orders(self, a: T, b: T) -> bool:
        """True when ``(a, b)`` is in the relation."""
        return (a, b) in self

    def pairs(self) -> Iterator[tuple[T, T]]:
        """All pairs, in deterministic order."""
        for ia, succs in enumerate(self._succ):
            a = self._items[ia]
            for ib in sorted(succs):
                yield (a, self._items[ib])

    def successors(self, a: T) -> tuple[T, ...]:
        """Items ``b`` with ``(a, b)`` in the relation."""
        return tuple(self._items[ib] for ib in sorted(self._succ[self._index[a]]))

    def predecessors(self, b: T) -> tuple[T, ...]:
        """Items ``a`` with ``(a, b)`` in the relation."""
        ib = self._index[b]
        return tuple(
            self._items[ia] for ia, succs in enumerate(self._succ) if ib in succs
        )

    def in_degrees(self) -> dict[T, int]:
        """In-degree of every universe item (items with none map to 0)."""
        deg = {x: 0 for x in self._items}
        for _, b in self.pairs():
            deg[b] += 1
        return deg

    def pred_masks(self, items: Iterable[T]) -> list[int]:
        """Bit-encoded predecessor sets of the relation restricted to ``items``.

        ``masks[j]`` has bit ``i`` set exactly when ``(items[i], items[j])``
        is a pair of the relation; pairs mentioning items outside ``items``
        are ignored.  This is the representation the constraint kernel's
        linear-extension search runs on (one arbitrary-precision integer per
        item), shared by every checker instead of being rebuilt ad hoc.
        """
        ordered = list(items)
        index = {x: i for i, x in enumerate(ordered)}
        # Translate the relation's internal indices once, then walk the
        # successor sets directly — O(universe) hash lookups instead of one
        # per pair, which matters for dense (closed) relations.
        pos = [index.get(x) for x in self._items]
        masks = [0] * len(ordered)
        for ia, succs in enumerate(self._succ):
            pa = pos[ia]
            if pa is None:
                continue
            abit = 1 << pa
            for ib in succs:
                pb = pos[ib]
                if pb is not None and pb != pa:
                    masks[pb] |= abit
        return masks

    # -- combinators ---------------------------------------------------------------

    def _copy(self) -> "Relation[T]":
        out: Relation[T] = Relation(self._items)
        out._succ = [set(s) for s in self._succ]
        return out

    def union(self, *others: "Relation[T]") -> "Relation[T]":
        """Union with relations over the same (or a sub-) universe."""
        out = self._copy()
        for other in others:
            for a, b in other.pairs():
                out.add(a, b)
        return out

    def restrict(self, keep: Callable[[T], bool] | Iterable[T]) -> "Relation[T]":
        """Restrict universe and pairs to the items selected by ``keep``."""
        if callable(keep):
            selected = [x for x in self._items if keep(x)]
        else:
            keep_set = set(keep)
            selected = [x for x in self._items if x in keep_set]
        sel_set = set(selected)
        out: Relation[T] = Relation(selected)
        for a, b in self.pairs():
            if a in sel_set and b in sel_set:
                out.add(a, b)
        return out

    def transitive_closure(self) -> "Relation[T]":
        """The transitive closure ``R+`` of this relation."""
        n = len(self._items)
        if n == 0:
            return self._copy()
        if n < _NUMPY_CLOSURE_THRESHOLD:
            return self._closure_worklist()
        return self._closure_numpy()

    def _closure_worklist(self) -> "Relation[T]":
        out = self._copy()
        succ = out._succ
        # Repeated relaxation; fine for tiny relations.
        changed = True
        while changed:
            changed = False
            for s in succ:
                added: set[int] = set()
                for ib in s:
                    added |= succ[ib] - s
                if added:
                    s |= added
                    changed = True
        return out

    def _closure_numpy(self) -> "Relation[T]":
        n = len(self._items)
        m = np.zeros((n, n), dtype=bool)
        for ia, succs in enumerate(self._succ):
            for ib in succs:
                m[ia, ib] = True
        reach = m.copy()
        # Boolean matrix squaring: after k squarings, paths of length <= 2^k.
        for _ in range(max(1, int(np.ceil(np.log2(n))))):
            new = reach | (reach @ reach)
            if np.array_equal(new, reach):
                break
            reach = new
        out: Relation[T] = Relation(self._items)
        rows, cols = np.nonzero(reach)
        for ia, ib in zip(rows.tolist(), cols.tolist()):
            out._succ[ia].add(ib)
        return out

    def compose(self, other: "Relation[T]") -> "Relation[T]":
        """Relational composition ``self ; other`` over the same universe."""
        out: Relation[T] = Relation(self._items)
        oidx = other._index
        for ia, succs in enumerate(self._succ):
            targets: set[int] = set()
            for ib in succs:
                mid = self._items[ib]
                j = oidx.get(mid)
                if j is not None:
                    for ic in other._succ[j]:
                        targets.add(self._index[other._items[ic]])
            out._succ[ia] |= targets
        return out

    # -- order-theoretic queries -----------------------------------------------------

    def find_cycle(self) -> list[T] | None:
        """Return one cycle as an item list, or ``None`` when acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = [WHITE] * len(self._items)
        stack: list[int] = []

        def dfs(ia: int) -> list[int] | None:
            color[ia] = GRAY
            stack.append(ia)
            for ib in self._succ[ia]:
                if color[ib] == GRAY:
                    return stack[stack.index(ib):] + [ib]
                if color[ib] == WHITE:
                    found = dfs(ib)
                    if found is not None:
                        return found
            stack.pop()
            color[ia] = BLACK
            return None

        for ia in range(len(self._items)):
            if color[ia] == WHITE:
                found = dfs(ia)
                if found is not None:
                    return [self._items[i] for i in found]
        return None

    def is_acyclic(self) -> bool:
        """True when the relation, viewed as a digraph, has no cycle."""
        return self.find_cycle() is None

    def topological_sort(self) -> list[T]:
        """One linear extension (Kahn's algorithm, deterministic tie-break).

        Raises
        ------
        ValueError
            If the relation is cyclic.
        """
        indeg = [0] * len(self._items)
        for succs in self._succ:
            for ib in succs:
                indeg[ib] += 1
        ready = [ia for ia, d in enumerate(indeg) if d == 0]
        out: list[T] = []
        while ready:
            ia = ready.pop(0)
            out.append(self._items[ia])
            for ib in sorted(self._succ[ia]):
                indeg[ib] -= 1
                if indeg[ib] == 0:
                    ready.append(ib)
        if len(out) != len(self._items):
            raise ValueError("relation is cyclic; no topological sort exists")
        return out

    def all_topological_sorts(self) -> Iterator[list[T]]:
        """Generate every linear extension (use only on small universes)."""
        n = len(self._items)
        indeg = [0] * n
        for succs in self._succ:
            for ib in succs:
                indeg[ib] += 1
        chosen: list[int] = []
        used = [False] * n

        def backtrack() -> Iterator[list[T]]:
            if len(chosen) == n:
                yield [self._items[i] for i in chosen]
                return
            for ia in range(n):
                if not used[ia] and indeg[ia] == 0:
                    used[ia] = True
                    chosen.append(ia)
                    for ib in self._succ[ia]:
                        indeg[ib] -= 1
                    yield from backtrack()
                    for ib in self._succ[ia]:
                        indeg[ib] += 1
                    chosen.pop()
                    used[ia] = False

        yield from backtrack()

    def is_linear_extension(self, sequence: Iterable[T]) -> bool:
        """True when ``sequence`` orders the universe consistently with the relation."""
        pos = {x: i for i, x in enumerate(sequence)}
        if len(pos) != len(self._items) or set(pos) != set(self._items):
            return False
        return all(pos[a] < pos[b] for a, b in self.pairs())

    def __repr__(self) -> str:
        body = ", ".join(f"{a}<{b}" for a, b in self.pairs())
        return f"Relation({len(self._items)} items: {body})"
