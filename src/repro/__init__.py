"""repro — a characterization framework for scalable shared memories.

A complete reproduction of Kohli, Neiger & Ahamad, *"A Characterization of
Scalable Shared Memories"* (ICPP 1993): the view-based framework for
defining weakly consistent memories, checkers for SC / TSO / PC / PRAM /
causal / coherent / RC_sc / RC_pc memories, operational simulators for the
systems those models abstract, a concurrent-program layer for running
algorithms (notably Lamport's Bakery) on the simulated memories, and the
lattice machinery reproducing the paper's Figure 5 containment results.

Quickstart
----------
>>> from repro import parse_history, classify
>>> h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")  # paper Figure 1
>>> verdicts = classify(h)
>>> verdicts["SC"], verdicts["TSO"]
(False, True)
"""

from repro.checking import (
    CheckResult,
    MODELS,
    PAPER_MODELS,
    SearchBudget,
    check,
    check_with_spec,
    classify,
)
from repro.core import (
    HistoryBuilder,
    Operation,
    OpKind,
    ProcessorHistory,
    ReproError,
    SystemHistory,
    View,
)
from repro.litmus import CATALOG, LitmusTest, format_history, parse_history
from repro.spec import ALL_SPECS, MemoryModelSpec, get_spec

__version__ = "1.0.0"

__all__ = [
    "ALL_SPECS",
    "CATALOG",
    "check",
    "check_with_spec",
    "CheckResult",
    "classify",
    "format_history",
    "get_spec",
    "HistoryBuilder",
    "LitmusTest",
    "MemoryModelSpec",
    "MODELS",
    "Operation",
    "OpKind",
    "PAPER_MODELS",
    "parse_history",
    "ProcessorHistory",
    "ReproError",
    "SearchBudget",
    "SystemHistory",
    "View",
    "__version__",
]
