"""Polynomial pre-pass verdicts: necessary-condition DENY checks per spec.

The kernel decides admissibility by searching for legal linear extensions —
NP-hard in general.  But many DENY verdicts follow from *necessary*
conditions that are pure polynomial graph analysis:

* **rf-sanity** — a read observing a value no write stores (and which is
  not the initial value) is illegal in every view under every model;
* **write-order-cycle** — for coherence-class mutual consistency (views
  agree on same-location write order), the forced write-order edges
  ``wb ∪ po|loc`` must be acyclic, because every admissible shared order
  extends them;
* **view-cycle** — each processor's view must be a linear extension of the
  spec's ordering (restricted to the view), the reads-from legality edges,
  the bracketing edges, and the forced write-order edges; a cycle in that
  per-view constraint graph rules out every legal view.

A :class:`HistoryPrepass` is compiled once per
:class:`~repro.spec.model_spec.MemoryModelSpec` and then applied to many
histories; relation construction goes through the memoized builders of
:mod:`repro.orders.memo`, so under the engine's relation cache the graphs
are shared across the specs a sweep checks each history against.

Soundness contract
------------------
The pre-pass returns a **definite DENY** or **UNKNOWN** — it never admits.
A DENY is sound because every edge placed in a graph is *forced*: it holds
in every legal view of every admissible execution under the spec.  Three
conservative under-approximations keep that true:

* with an ambiguous reads-from attribution the pre-pass returns UNKNOWN
  (except for rf-sanity, which is attribution-independent), because
  legality edges are only forced once the attribution is fixed;
* for orderings that need a coherence order (semi-causality), the partial
  program order ``->ppo`` — a subset of every semi-causal relation — stands
  in for the real ordering;
* for specs whose ordering binds own views only (release consistency),
  ordering edges are applied only between a processor's own operations in
  its own view, mirroring the kernel's ``restrict_to_own``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import cast

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.kernel.constraints import bracketing_edges
from repro.kernel.results import CheckResult, Counterexample
from repro.kernel.rf import impossible_read
from repro.obs.events import PrepassRule
from repro.obs.sink import TraceSink, active_sink
from repro.orders.program_order import ppo_relation
from repro.orders.relation import Relation
from repro.orders.writes_before import (
    ReadsFrom,
    reads_from_candidates,
    unambiguous_reads_from,
)
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import MutualConsistency

__all__ = ["PrepassVerdict", "HistoryPrepass", "compile_prepass", "prepass_check"]

#: Mutual-consistency classes whose views agree on (at least same-location)
#: write order, making forced write-order edges hold in every view.
_COHERENCE_CLASS = (
    MutualConsistency.COHERENCE,
    MutualConsistency.TOTAL_WRITE_ORDER,
    MutualConsistency.IDENTICAL,
)

#: Classes whose agreement spans *all* writes, not only same-location ones.
_TOTAL_CLASS = (MutualConsistency.TOTAL_WRITE_ORDER, MutualConsistency.IDENTICAL)


@dataclass(frozen=True)
class PrepassVerdict:
    """The outcome of the pre-pass: a definite DENY, or UNKNOWN.

    Attributes
    ----------
    model:
        The spec the verdict is about.
    decided:
        ``True`` only for a definite DENY; the pre-pass never admits.
    check:
        The necessary condition that failed (``"rf-sanity"``,
        ``"write-order-cycle"`` or ``"view-cycle"``); empty when undecided.
    counterexample:
        For decided verdicts: the structured reason, in the same
        :class:`~repro.kernel.results.Counterexample` shape ``repro
        explain`` renders.
    checks_run:
        Which necessary conditions were evaluated (for metrics and tests).
    """

    model: str
    decided: bool
    check: str = ""
    counterexample: Counterexample | None = None
    checks_run: tuple[str, ...] = ()

    @property
    def reason(self) -> str:
        """One-line reason for a decided verdict (empty when undecided)."""
        return self.counterexample.detail if self.counterexample else ""

    def to_result(self) -> CheckResult:
        """The decided verdict as a kernel :class:`CheckResult`.

        Only meaningful when :attr:`decided` is set; the result carries
        ``explored=0`` — the search was never invoked.
        """
        if not self.decided:
            raise ValueError(f"{self.model}: undecided pre-pass has no result")
        return CheckResult(
            self.model,
            False,
            reason=self.reason,
            counterexample=self.counterexample,
        )


class HistoryPrepass:
    """The necessary-condition checks of one spec, compiled for reuse.

    Construction fixes *which* checks apply (from the spec's mutual
    consistency, bracketing and ordering parameters); :meth:`check` then
    runs them against a history in polynomial time.
    """

    def __init__(self, spec: MemoryModelSpec) -> None:
        self.spec = spec
        self.coherence_class = spec.mutual_consistency in _COHERENCE_CLASS
        self.total_writes = spec.mutual_consistency in _TOTAL_CLASS
        self.identical = spec.mutual_consistency is MutualConsistency.IDENTICAL
        checks = ["rf-sanity"]
        if self.coherence_class:
            checks.append("write-order-cycle")
        checks.append("view-cycle")
        #: The necessary conditions this spec compiles to, in run order.
        self.checks: tuple[str, ...] = tuple(checks)

    def _rule_event(
        self, sink: TraceSink | None, rule: str, outcome: str, detail: str = ""
    ) -> None:
        """Narrate one rule's outcome to the active trace sink, if any."""
        if sink is not None:
            sink.emit(
                PrepassRule(
                    model=self.spec.name, rule=rule, outcome=outcome, detail=detail
                )
            )

    def check(self, history: SystemHistory) -> PrepassVerdict:
        """DENY with a structured reason, or UNKNOWN — never ADMIT."""
        spec = self.spec
        sink = active_sink()
        candidates = reads_from_candidates(history)
        bad = impossible_read(history, candidates)
        if bad is not None:
            reason = f"{bad} observes a value never written to {bad.location!r}"
            self._rule_event(sink, "rf-sanity", "deny", reason)
            return PrepassVerdict(
                spec.name,
                True,
                check="rf-sanity",
                counterexample=Counterexample(spec.name, "impossible-value", reason),
                checks_run=("rf-sanity",),
            )
        self._rule_event(sink, "rf-sanity", "pass")
        rf = unambiguous_reads_from(history)
        if rf is None:
            # Legality edges are forced only under a fixed attribution;
            # with several candidate writers per read, leave the choice
            # (and the verdict) to the kernel's enumeration.
            for rule in self.checks[1:]:
                self._rule_event(sink, rule, "abstain")
            return PrepassVerdict(spec.name, False, checks_run=("rf-sanity",))
        ordering = self._ordering(history)
        run = ["rf-sanity"]
        forced_closed: Relation[Operation] | None = None
        if self.coherence_class:
            run.append("write-order-cycle")
            forced = self._forced_write_order(history, rf, ordering)
            cycle = forced.find_cycle()
            if cycle is not None:
                detail = (
                    "the forced write order (program-order write chains and "
                    "reads-from-implied coherence edges) is cyclic "
                    f"(cycle of {len(cycle) - 1} writes)"
                )
                self._rule_event(sink, "write-order-cycle", "deny", detail)
                return PrepassVerdict(
                    spec.name,
                    True,
                    check="write-order-cycle",
                    counterexample=Counterexample(
                        spec.name, "cyclic-constraints", detail, cycle=tuple(cycle)
                    ),
                    checks_run=tuple(run),
                )
            self._rule_event(sink, "write-order-cycle", "pass")
            forced_closed = forced.transitive_closure()
        run.append("view-cycle")
        cx = self._view_cycle(history, rf, ordering, forced_closed)
        if cx is not None:
            self._rule_event(sink, "view-cycle", "deny", cx.detail)
            return PrepassVerdict(
                spec.name,
                True,
                check="view-cycle",
                counterexample=cx,
                checks_run=tuple(run),
            )
        self._rule_event(sink, "view-cycle", "pass")
        return PrepassVerdict(spec.name, False, checks_run=tuple(run))

    # -- pieces ------------------------------------------------------------------

    def _ordering(self, history: SystemHistory) -> Relation[Operation]:
        """The spec's ordering, or a sound under-approximation of it.

        Semi-causality needs a coherence order the pre-pass never fixes;
        ``->ppo`` is contained in every semi-causal relation, so a cycle
        through ppo edges is a cycle through every candidate ordering.
        """
        if self.spec.ordering.needs_coherence:
            return ppo_relation(history)
        # Passing reads_from=None lets the memoized builders infer the
        # unique attribution (established by the caller) and share the
        # relation across specs under an active relation memo.
        return self.spec.ordering.build(history, cast(ReadsFrom, None), None)

    def _forced_write_order(
        self,
        history: SystemHistory,
        rf: ReadsFrom,
        ordering: Relation[Operation],
    ) -> Relation[Operation]:
        """Edges every admissible agreed write order must contain.

        Program-order pairs of a processor's own writes (same-location
        pairs always; cross-location ones only under total-write-order
        agreement) and reads-from-implied pairs (a processor that reads
        ``w1`` and later writes ``w2`` to the same location forces
        ``w1 < w2``).  Each candidate edge is admitted only when the spec's
        ordering actually orders the generating pair in the owner's view —
        both generators are same-processor pairs, so the test is sound even
        for own-view-only orderings.
        """
        writes = [op for op in history.operations if op.is_write]
        rel: Relation[Operation] = Relation(writes)
        for proc in history.procs:
            own = [op for op in history.ops_of(proc) if op.is_write]
            for i, a in enumerate(own):
                for b in own[i + 1:]:
                    same_loc = a.location == b.location
                    if (same_loc or self.total_writes) and ordering.orders(a, b):
                        rel.add(a, b)
        for read_op, src in rf.items():
            if src is None:
                continue
            for later in history.ops_of(read_op.proc)[read_op.index + 1:]:
                if (
                    later.is_write
                    and later.location == read_op.location
                    and later.uid != src.uid
                    and ordering.orders(read_op, later)
                ):
                    rel.add(src, later)
        return rel

    def _view_cycle(
        self,
        history: SystemHistory,
        rf: ReadsFrom,
        ordering: Relation[Operation],
        forced_closed: Relation[Operation] | None,
    ) -> Counterexample | None:
        """A cycle in some per-view constraint graph, or ``None``.

        Each graph combines, over the view's members: the ordering
        (restricted to own operations for own-view-only specs), legality
        edges of the fixed attribution (source before its read; an
        initial-value read before every same-location write), bracketing
        edges, and — when a forced write order exists — from-read edges
        (a read precedes every write forced after its source).
        """
        spec = self.spec
        ord_pairs = list(ordering.pairs())
        writes_by_loc: dict[str, list[Operation]] = {}
        for op in history.operations:
            if op.is_write:
                writes_by_loc.setdefault(op.location, []).append(op)
        brack = bracketing_edges(history, rf) if spec.bracketing else None
        own_only = spec.ordering_own_view_only

        if self.identical:
            probes: list[tuple[object, list[Operation]]] = [
                (None, list(history.operations))
            ]
        else:
            probes = [
                (proc, list(spec.operation_set.view_contents(history, proc)))
                for proc in history.procs
            ]
        for proc, members in probes:
            member_set = set(members)
            rel: Relation[Operation] = Relation(members)
            for a, b in ord_pairs:
                if a not in member_set or b not in member_set:
                    continue
                if own_only and proc is not None and (a.proc != proc or b.proc != proc):
                    continue
                rel.add(a, b)
            loc_writes = {
                loc: [w for w in ws if w in member_set]
                for loc, ws in writes_by_loc.items()
            }
            for r in members:
                if not r.is_read:
                    continue
                src = rf.get(r)
                same_loc = loc_writes.get(r.location, [])
                if src is None:
                    for w in same_loc:
                        if w.uid != r.uid:
                            rel.add(r, w)
                    continue
                if src in member_set:
                    rel.add(src, r)
                if forced_closed is not None:
                    for w in same_loc:
                        if (
                            w.uid != src.uid
                            and w.uid != r.uid
                            and forced_closed.orders(src, w)
                        ):
                            rel.add(r, w)
            if brack is not None:
                for a, b in brack.pairs():
                    if a in member_set and b in member_set:
                        rel.add(a, b)
            cycle = rel.find_cycle()
            if cycle is not None:
                who = "the common view" if proc is None else f"processor {proc!r}"
                detail = (
                    f"the static constraint graph for {who} is cyclic "
                    f"(cycle of {len(cycle) - 1} operations)"
                )
                return Counterexample(
                    spec.name,
                    "cyclic-constraints",
                    detail,
                    proc=proc,
                    cycle=tuple(cycle),
                )
        return None


@lru_cache(maxsize=128)
def compile_prepass(spec: MemoryModelSpec) -> HistoryPrepass:
    """The compiled pre-pass of ``spec`` (cached: specs are few, reuse is hot)."""
    return HistoryPrepass(spec)


def prepass_check(spec: MemoryModelSpec, history: SystemHistory) -> PrepassVerdict:
    """Run the compiled pre-pass of ``spec`` against ``history``."""
    return compile_prepass(spec).check(history)
