"""Polynomial pre-pass verdicts: definite DENY *or* ADMIT-with-witness.

The kernel decides admissibility by searching for legal linear extensions —
NP-hard in general.  But many verdicts follow from polynomial graph
analysis.  On the DENY side, *necessary* conditions:

* **rf-sanity** — a read observing a value no write stores (and which is
  not the initial value) is illegal in every view under every model;
* **write-order-cycle** — for coherence-class mutual consistency (views
  agree on same-location write order), the forced write-order edges
  ``wb ∪ po|loc`` must be acyclic, because every admissible shared order
  extends them;
* **view-cycle** — each processor's view must be a linear extension of the
  spec's ordering (restricted to the view), the reads-from legality edges,
  the bracketing edges, and the forced write-order edges; a cycle in that
  per-view constraint graph rules out every legal view;
* **agreement-exhausted** — every admissible agreed write order extends
  the *forced* write-order edges, and on litmus-scale histories the forced
  order typically leaves only a handful of linear extensions.  The rule
  enumerates them all (hard-capped), pins each candidate's exact legality
  edges, and concludes: some candidate builds legal views → ADMIT with
  that witness; *every* candidate forces a cyclic view graph → DENY,
  because the candidates are exhaustive.  Past the cap, or on any
  non-decisive failure, it abstains.

On the ADMIT side, a *sufficient* construction:

* **admit-witness** — under a unique reads-from attribution, commit to one
  agreed object (a deterministic topological extension of the forced write
  order, shared by every view) and inject, per view, exactly the edges that
  make legality automatic: each read after its source write and before the
  agreed order's next same-location write.  Any topological order of the
  resulting graph is then a legal view that embeds the agreed object and
  the spec's ordering — a complete, machine-checkable witness.  Whenever a
  graph is cyclic, or any precondition fails, the rule abstains (UNKNOWN);
  it never guesses.

A :class:`HistoryPrepass` is compiled once per
:class:`~repro.spec.model_spec.MemoryModelSpec` and then applied to many
histories; relation construction goes through the memoized builders of
:mod:`repro.orders.memo`, so under the engine's relation cache the graphs
are shared across the specs a sweep checks each history against.

Soundness contract
------------------
The pre-pass returns a **definite DENY**, a **definite ADMIT carrying a
witness**, or **UNKNOWN**.  A DENY is sound because every edge placed in a
graph is *forced*: it holds in every legal view of every admissible
execution under the spec.  Conservative under-approximations keep that
true:

* with an ambiguous reads-from attribution the pre-pass returns UNKNOWN
  (except for rf-sanity, which is attribution-independent), because
  legality edges are only forced once the attribution is fixed;
* for orderings that need a coherence order (semi-causality), the partial
  program order ``->ppo`` — a subset of every semi-causal relation — stands
  in for the real ordering on the DENY side (the ADMIT side rebuilds the
  real ordering from the agreed coherence order it chose);
* for specs whose ordering binds own views only (release consistency),
  ordering edges are applied only between a processor's own operations in
  its own view, mirroring the kernel's ``restrict_to_own``.

An ADMIT is sound because the witness is *verified by construction*: the
emitted views are legal sequences (checked), contain the spec's required
operation sets, are linear extensions of the spec's ordering and of one
shared agreed object, so the spec's existential is exhibited rather than
approximated.  The rule abstains for labeled-discipline specs whenever the
history has labeled operations (their extra serializations are the
NP-hard part the pre-pass must not guess at).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import islice, product
from typing import Any, cast

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.core.view import View, first_legality_violation
from repro.kernel.constraints import bracketing_edges
from repro.kernel.results import CheckResult, Counterexample, Witness
from repro.kernel.rf import impossible_read
from repro.obs.events import PrepassRule
from repro.obs.sink import TraceSink, active_sink
from repro.orders.coherence import forced_coherence_pairs
from repro.orders.program_order import ppo_relation
from repro.orders.relation import Relation
from repro.orders.writes_before import (
    ReadsFrom,
    reads_from_candidates,
    unambiguous_reads_from,
)
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import MutualConsistency

__all__ = ["PrepassVerdict", "HistoryPrepass", "compile_prepass", "prepass_check"]

#: Mutual-consistency classes whose views agree on (at least same-location)
#: write order, making forced write-order edges hold in every view.
#: Partition agreement spans whole location blocks, hence in particular
#: each single location, so it belongs here (but not in the total class:
#: cross-block writes stay unordered).
_COHERENCE_CLASS = (
    MutualConsistency.COHERENCE,
    MutualConsistency.TOTAL_WRITE_ORDER,
    MutualConsistency.IDENTICAL,
    MutualConsistency.PARTITION,
)

#: Classes whose agreement spans *all* writes, not only same-location ones.
_TOTAL_CLASS = (MutualConsistency.TOTAL_WRITE_ORDER, MutualConsistency.IDENTICAL)

#: Hard cap on the agreed-order candidates the exhaustive rule enumerates
#: (per level: global candidates, and per-view orders when no agreement
#: binds them).  Past the cap the rule abstains — the search's pruned
#: enumeration is the better tool for large choice spaces.
_MAX_AGREED_CANDIDATES = 24

#: One agreed-order choice: the per-location coherence mapping it induces
#: (``None`` when the spec's views agree on nothing) and the chains every
#: view must embed.
_Candidate = tuple[
    "dict[str, tuple[Operation, ...]] | None",
    "tuple[tuple[Operation, ...], ...]",
]


def _bounded_sorts(
    rel: Relation[Operation], cap: int
) -> tuple[list[list[Operation]], bool]:
    """Up to ``cap`` linear extensions, plus whether that was all of them."""
    out = list(islice(rel.all_topological_sorts(), cap + 1))
    if len(out) > cap:
        return out[:cap], False
    return out, True


@dataclass(frozen=True)
class PrepassVerdict:
    """The outcome of the pre-pass: a definite DENY or ADMIT, or UNKNOWN.

    Attributes
    ----------
    model:
        The spec the verdict is about.
    decided:
        ``True`` for a definite verdict in either direction.
    allowed:
        The verdict's polarity when decided: ``True`` means the
        ``admit-witness`` rule constructed legal views (see
        :attr:`witness`), ``False`` a necessary condition failed.
    check:
        The rule that decided (``"rf-sanity"``, ``"write-order-cycle"``,
        ``"view-cycle"`` or ``"admit-witness"``); empty when undecided.
    counterexample:
        For decided DENYs: the structured reason, in the same
        :class:`~repro.kernel.results.Counterexample` shape ``repro
        explain`` renders.
    witness:
        For decided ADMITs: the constructed legal views plus the
        reads-from attribution and agreed coherence order they embed —
        the same :class:`~repro.kernel.results.Witness` shape the search
        returns, so callers can re-verify the claim mechanically.
    checks_run:
        Which rules were evaluated (for metrics and tests).
    """

    model: str
    decided: bool
    allowed: bool = False
    check: str = ""
    counterexample: Counterexample | None = None
    witness: Witness | None = None
    checks_run: tuple[str, ...] = ()

    @property
    def reason(self) -> str:
        """One-line reason for a decided DENY (empty otherwise)."""
        return self.counterexample.detail if self.counterexample else ""

    def to_result(self) -> CheckResult:
        """The decided verdict as a kernel :class:`CheckResult`.

        Only meaningful when :attr:`decided` is set; the result carries
        ``explored=0`` — the search was never invoked.
        """
        if not self.decided:
            raise ValueError(f"{self.model}: undecided pre-pass has no result")
        if self.allowed:
            assert self.witness is not None  # decided admits always carry one
            return CheckResult(
                self.model,
                True,
                views=dict(self.witness.views),
                witness=self.witness,
            )
        return CheckResult(
            self.model,
            False,
            reason=self.reason,
            counterexample=self.counterexample,
        )


class HistoryPrepass:
    """The necessary-condition checks of one spec, compiled for reuse.

    Construction fixes *which* checks apply (from the spec's mutual
    consistency, bracketing and ordering parameters); :meth:`check` then
    runs them against a history in polynomial time.
    """

    def __init__(self, spec: MemoryModelSpec) -> None:
        self.spec = spec
        self.coherence_class = spec.mutual_consistency in _COHERENCE_CLASS
        self.total_writes = spec.mutual_consistency in _TOTAL_CLASS
        self.identical = spec.mutual_consistency is MutualConsistency.IDENTICAL
        checks = ["rf-sanity"]
        if self.coherence_class:
            checks.append("write-order-cycle")
        checks.append("view-cycle")
        checks.append("admit-witness")
        checks.append("agreement-exhausted")
        #: The rules this spec compiles to, in run order.
        self.checks: tuple[str, ...] = tuple(checks)

    def _rule_event(
        self, sink: TraceSink | None, rule: str, outcome: str, detail: str = ""
    ) -> None:
        """Narrate one rule's outcome to the active trace sink, if any."""
        if sink is not None:
            sink.emit(
                PrepassRule(
                    model=self.spec.name, rule=rule, outcome=outcome, detail=detail
                )
            )

    def check(self, history: SystemHistory) -> PrepassVerdict:
        """A definite DENY or ADMIT-with-witness, or UNKNOWN — never a guess."""
        spec = self.spec
        sink = active_sink()
        candidates = reads_from_candidates(history)
        bad = impossible_read(history, candidates)
        if bad is not None:
            reason = f"{bad} observes a value never written to {bad.location!r}"
            self._rule_event(sink, "rf-sanity", "deny", reason)
            return PrepassVerdict(
                spec.name,
                True,
                check="rf-sanity",
                counterexample=Counterexample(spec.name, "impossible-value", reason),
                checks_run=("rf-sanity",),
            )
        self._rule_event(sink, "rf-sanity", "pass")
        rf = unambiguous_reads_from(history)
        if rf is None:
            # Legality edges are forced only under a fixed attribution;
            # with several candidate writers per read, leave the choice
            # (and the verdict) to the kernel's enumeration.
            for rule in self.checks[1:]:
                self._rule_event(sink, rule, "abstain")
            return PrepassVerdict(spec.name, False, checks_run=("rf-sanity",))
        ordering = self._ordering(history)
        run = ["rf-sanity"]
        forced_closed: Relation[Operation] | None = None
        if self.coherence_class:
            run.append("write-order-cycle")
            forced = self._forced_write_order(history, rf, ordering)
            cycle = forced.find_cycle()
            if cycle is not None:
                detail = (
                    "the forced write order (program-order write chains and "
                    "reads-from-implied coherence edges) is cyclic "
                    f"(cycle of {len(cycle) - 1} writes)"
                )
                self._rule_event(sink, "write-order-cycle", "deny", detail)
                return PrepassVerdict(
                    spec.name,
                    True,
                    check="write-order-cycle",
                    counterexample=Counterexample(
                        spec.name, "cyclic-constraints", detail, cycle=tuple(cycle)
                    ),
                    checks_run=tuple(run),
                )
            self._rule_event(sink, "write-order-cycle", "pass")
            forced_closed = forced.transitive_closure()
        run.append("view-cycle")
        cx = self._view_cycle(history, rf, ordering, forced_closed)
        if cx is not None:
            self._rule_event(sink, "view-cycle", "deny", cx.detail)
            return PrepassVerdict(
                spec.name,
                True,
                check="view-cycle",
                counterexample=cx,
                checks_run=tuple(run),
            )
        self._rule_event(sink, "view-cycle", "pass")
        run.append("admit-witness")
        witness = self._admit_witness(history, rf)
        if witness is not None:
            self._rule_event(
                sink,
                "admit-witness",
                "admit",
                "constructed a legal topological witness per view",
            )
            return PrepassVerdict(
                spec.name,
                True,
                allowed=True,
                check="admit-witness",
                witness=witness,
                checks_run=tuple(run),
            )
        self._rule_event(sink, "admit-witness", "abstain")
        run.append("agreement-exhausted")
        outcome = self._exhaust_agreements(history, rf)
        if isinstance(outcome, Witness):
            self._rule_event(
                sink,
                "agreement-exhausted",
                "admit",
                "an enumerated agreed write order builds legal views",
            )
            return PrepassVerdict(
                spec.name,
                True,
                allowed=True,
                check="agreement-exhausted",
                witness=outcome,
                checks_run=tuple(run),
            )
        if outcome is not None:
            self._rule_event(sink, "agreement-exhausted", "deny", outcome.detail)
            return PrepassVerdict(
                spec.name,
                True,
                check="agreement-exhausted",
                counterexample=outcome,
                checks_run=tuple(run),
            )
        self._rule_event(sink, "agreement-exhausted", "abstain")
        return PrepassVerdict(spec.name, False, checks_run=tuple(run))

    # -- pieces ------------------------------------------------------------------

    def _ordering(self, history: SystemHistory) -> Relation[Operation]:
        """The spec's ordering, or a sound under-approximation of it.

        Semi-causality needs a coherence order the pre-pass never fixes;
        ``->ppo`` is contained in every semi-causal relation, so a cycle
        through ppo edges is a cycle through every candidate ordering.
        """
        if self.spec.ordering.needs_coherence:
            return ppo_relation(history)
        # Passing reads_from=None lets the memoized builders infer the
        # unique attribution (established by the caller) and share the
        # relation across specs under an active relation memo.
        return self.spec.ordering.build(history, cast(ReadsFrom, None), None)

    def _forced_write_order(
        self,
        history: SystemHistory,
        rf: ReadsFrom,
        ordering: Relation[Operation],
    ) -> Relation[Operation]:
        """Edges every admissible agreed write order must contain.

        Program-order pairs of a processor's own writes (same-location
        pairs always; cross-location ones only under total-write-order
        agreement) and reads-from-implied pairs (a processor that reads
        ``w1`` and later writes ``w2`` to the same location forces
        ``w1 < w2``).  Each candidate edge is admitted only when the spec's
        ordering actually orders the generating pair in the owner's view —
        both generators are same-processor pairs, so the test is sound even
        for own-view-only orderings.
        """
        writes = [op for op in history.operations if op.is_write]
        rel: Relation[Operation] = Relation(writes)
        for proc in history.procs:
            own = [op for op in history.ops_of(proc) if op.is_write]
            for i, a in enumerate(own):
                for b in own[i + 1:]:
                    same_loc = a.location == b.location
                    if (same_loc or self.total_writes) and ordering.orders(a, b):
                        rel.add(a, b)
        for read_op, src in rf.items():
            if src is None:
                continue
            for later in history.ops_of(read_op.proc)[read_op.index + 1:]:
                if (
                    later.is_write
                    and later.location == read_op.location
                    and later.uid != src.uid
                    and ordering.orders(read_op, later)
                ):
                    rel.add(src, later)
        return rel

    def _view_cycle(
        self,
        history: SystemHistory,
        rf: ReadsFrom,
        ordering: Relation[Operation],
        forced_closed: Relation[Operation] | None,
    ) -> Counterexample | None:
        """A cycle in some per-view constraint graph, or ``None``.

        Each graph combines, over the view's members: the ordering
        (restricted to own operations for own-view-only specs), legality
        edges of the fixed attribution (source before its read; an
        initial-value read before every same-location write), bracketing
        edges, and — when a forced write order exists — from-read edges
        (a read precedes every write forced after its source).
        """
        spec = self.spec
        ord_pairs = list(ordering.pairs())
        writes_by_loc: dict[str, list[Operation]] = {}
        for op in history.operations:
            if op.is_write:
                writes_by_loc.setdefault(op.location, []).append(op)
        brack = bracketing_edges(history, rf) if spec.bracketing else None
        own_only = spec.ordering_own_view_only

        if self.identical:
            probes: list[tuple[object, list[Operation]]] = [
                (None, list(history.operations))
            ]
        else:
            probes = [
                (proc, list(spec.operation_set.view_contents(history, proc)))
                for proc in history.procs
            ]
        for proc, members in probes:
            member_set = set(members)
            rel: Relation[Operation] = Relation(members)
            for a, b in ord_pairs:
                if a not in member_set or b not in member_set:
                    continue
                if own_only and proc is not None and (a.proc != proc or b.proc != proc):
                    continue
                rel.add(a, b)
            loc_writes = {
                loc: [w for w in ws if w in member_set]
                for loc, ws in writes_by_loc.items()
            }
            for r in members:
                if not r.is_read:
                    continue
                src = rf.get(r)
                same_loc = loc_writes.get(r.location, [])
                if src is None:
                    for w in same_loc:
                        if w.uid != r.uid:
                            rel.add(r, w)
                    continue
                if src in member_set:
                    rel.add(src, r)
                if forced_closed is not None:
                    for w in same_loc:
                        if (
                            w.uid != src.uid
                            and w.uid != r.uid
                            and forced_closed.orders(src, w)
                        ):
                            rel.add(r, w)
            if brack is not None:
                for a, b in brack.pairs():
                    if a in member_set and b in member_set:
                        rel.add(a, b)
            cycle = rel.find_cycle()
            if cycle is not None:
                who = "the common view" if proc is None else f"processor {proc!r}"
                detail = (
                    f"the static constraint graph for {who} is cyclic "
                    f"(cycle of {len(cycle) - 1} operations)"
                )
                return Counterexample(
                    spec.name,
                    "cyclic-constraints",
                    detail,
                    proc=proc,
                    cycle=tuple(cycle),
                )
        return None

    # -- the ADMIT side ----------------------------------------------------------

    def _admit_witness(self, history: SystemHistory, rf: ReadsFrom) -> Witness | None:
        """A complete witness constructed greedily, or ``None`` to abstain.

        The construction commits to *one* agreed object — a deterministic
        topological extension of the forced write order (per location for
        coherence agreement, global for total-write-order agreement, over
        the labeled operations for hybrid consistency) — and then builds
        each view's constraint graph from the spec's ordering, the agreed
        chains, the bracketing edges, and *exact* legality pins: a read
        goes after its source write and before the next same-location
        write of the agreed order (an initial-value read before every
        same-location write).  Any topological order of that graph makes
        every read observe precisely its attributed source, so the views
        are legal, mutually consistent and ordering-respecting by
        construction.  Every failure — a cycle, a missing source, labeled
        operations under a labeled discipline — abstains; the rule never
        guesses.
        """
        spec = self.spec
        if spec.labeled_discipline is not None and history.labeled_ops:
            # The labeled serializations are the NP-hard part (legal SC
            # orders / semi-causality of the labeled sub-history); leave
            # those histories to the search.
            return None
        coherence: dict[str, tuple[Operation, ...]] | None = None
        chains: tuple[tuple[Operation, ...], ...] = ()
        mc = spec.mutual_consistency
        if mc is MutualConsistency.TOTAL_WRITE_ORDER:
            from repro.kernel.serializations import forced_write_order

            forced = forced_write_order(history, rf)
            try:
                order = forced.topological_sort()
            except ValueError:
                return None
            chains = (tuple(order),)
            coherence = {}
            for w in order:
                coherence[w.location] = coherence.get(w.location, ()) + (w,)
        elif mc is MutualConsistency.COHERENCE:
            coherence = {}
            for loc in history.locations:
                pairs = forced_coherence_pairs(history, loc, rf)
                if not pairs.items:
                    continue
                try:
                    coherence[loc] = tuple(pairs.topological_sort())
                except ValueError:
                    return None
            chains = tuple(coherence.values())
        elif mc is MutualConsistency.PARTITION:
            from repro.kernel.serializations import forced_block_orders

            assert spec.partition_blocks is not None  # spec validation
            coherence = {}
            block_chains: list[tuple[Operation, ...]] = []
            for forced_b in forced_block_orders(
                history, spec.partition_blocks, rf
            ):
                try:
                    order = forced_b.topological_sort()
                except ValueError:
                    return None
                if order:
                    block_chains.append(tuple(order))
                for w in order:
                    coherence[w.location] = coherence.get(w.location, ()) + (w,)
            chains = tuple(block_chains)
        elif mc is MutualConsistency.LABELED_TOTAL_ORDER:
            labeled = history.labeled_ops
            if labeled:
                forced_l: Relation[Operation] = Relation(labeled)
                for proc in history.procs:
                    chain = [op for op in history.ops_of(proc) if op.labeled]
                    for a, b in zip(chain, chain[1:]):
                        forced_l.add(a, b)
                chains = (tuple(forced_l.topological_sort()),)
        # The *real* ordering this time: the DENY side under-approximates
        # semi-causality with ppo, but a witness must extend the ordering
        # the chosen coherence order induces.
        if spec.ordering.needs_coherence:
            assert coherence is not None  # guaranteed by spec validation
            ordering = spec.ordering.build(history, rf, coherence)
        else:
            ordering = spec.ordering.build(history, cast(ReadsFrom, None), None)
        ord_pairs = list(ordering.pairs())
        brack = bracketing_edges(history, rf) if spec.bracketing else None
        if self.identical:
            seq = self._admit_view(
                None, list(history.operations), rf, ord_pairs, chains, brack, coherence
            )
            if seq is None:
                return None
            views = {
                proc: View(proc, seq, history, validate=False)
                for proc in history.procs
            }
            return Witness(views=views, reads_from=rf, coherence=coherence)
        views = {}
        for proc in history.procs:
            members = list(spec.operation_set.view_contents(history, proc))
            seq = self._admit_view(
                proc, members, rf, ord_pairs, chains, brack, coherence
            )
            if seq is None:
                return None
            views[proc] = View(proc, seq, history, validate=False)
        return Witness(views=views, reads_from=rf, coherence=coherence)

    def _base_graph(
        self,
        proc: Any,
        members: list[Operation],
        rf: ReadsFrom,
        ord_pairs: list[tuple[Operation, Operation]],
        chains: tuple[tuple[Operation, ...], ...],
        brack: Relation[Operation] | None,
    ) -> Relation[Operation] | None:
        """Ordering + agreed chains + bracketing + attribution edges.

        ``None`` means some read's unique source is not in the view at
        all — no legal view of these members exists, whatever the order.
        """
        member_set = set(members)
        own_only = self.spec.ordering_own_view_only
        rel: Relation[Operation] = Relation(members)
        for a, b in ord_pairs:
            if a not in member_set or b not in member_set:
                continue
            if own_only and proc is not None and (a.proc != proc or b.proc != proc):
                continue
            rel.add(a, b)
        for chain in chains:
            prev: Operation | None = None
            for op in chain:
                if op not in member_set:
                    continue
                if prev is not None:
                    rel.add(prev, op)
                prev = op
        if brack is not None:
            for a, b in brack.pairs():
                if a in member_set and b in member_set:
                    rel.add(a, b)
        for r in members:
            if r.is_read:
                src = rf.get(r)
                if src is not None:
                    if src not in member_set:
                        return None  # the source is invisible: no legal view
                    rel.add(src, r)
        return rel

    @staticmethod
    def _add_pins(
        rel: Relation[Operation],
        members: list[Operation],
        rf: ReadsFrom,
        loc_order: dict[str, list[Operation]],
    ) -> bool:
        """Add exact legality pins for the given per-location write order.

        Between its source and the source's successor in ``loc_order`` (an
        initial-value read before every same-location write), every read
        observes precisely its attributed value in *any* topological
        order.  ``False`` means a read's source is missing from its
        location's order — no legal view embeds that order.
        """
        for r in members:
            if not r.is_read:
                continue
            src = rf.get(r)
            ws = loc_order.get(r.location, [])
            if src is None:
                for w in ws:
                    if w.uid != r.uid:
                        rel.add(r, w)
                continue
            try:
                at = next(i for i, w in enumerate(ws) if w.uid == src.uid)
            except StopIteration:
                return False
            nxt = next((w for w in ws[at + 1:] if w.uid != r.uid), None)
            if nxt is not None:
                rel.add(r, nxt)
        return True

    def _admit_view(
        self,
        proc: Any,
        members: list[Operation],
        rf: ReadsFrom,
        ord_pairs: list[tuple[Operation, Operation]],
        chains: tuple[tuple[Operation, ...], ...],
        brack: Relation[Operation] | None,
        coherence: dict[str, tuple[Operation, ...]] | None,
    ) -> list[Operation] | None:
        """One view as a verified legal sequence, or ``None`` to abstain."""
        member_set = set(members)
        rel = self._base_graph(proc, members, rf, ord_pairs, chains, brack)
        if rel is None:
            return None
        # The per-location write order this view will embed.  With a
        # coherence (or total) agreement it is the agreed order; without
        # one, derive a view-local order from a topological probe of the
        # constraints collected so far and freeze it with chain edges.
        loc_order: dict[str, list[Operation]] = {}
        if coherence is not None:
            for loc, chain in coherence.items():
                loc_order[loc] = [w for w in chain if w in member_set]
        else:
            try:
                probe = rel.topological_sort()
            except ValueError:
                return None
            pos = {op.uid: i for i, op in enumerate(probe)}
            for op in members:
                if op.is_write:
                    loc_order.setdefault(op.location, []).append(op)
            for ws in loc_order.values():
                ws.sort(key=lambda w: pos[w.uid])
                for a, b in zip(ws, ws[1:]):
                    rel.add(a, b)
        if not self._add_pins(rel, members, rf, loc_order):
            return None
        try:
            seq = rel.topological_sort()
        except ValueError:
            return None
        if first_legality_violation(seq) is not None:  # pragma: no cover
            # The construction argument guarantees legality; re-checking is
            # the cheap belt over those braces — abstain, never mis-admit.
            return None
        return seq

    # -- exhaustive agreement enumeration ----------------------------------------

    def _agreed_candidates(
        self, history: SystemHistory, rf: ReadsFrom
    ) -> tuple[list[_Candidate], bool]:
        """Every agreed-order choice the spec leaves open, hard-capped.

        Returns the candidate list and whether it is *exhaustive* — every
        admissible agreed object extends the forced edges, so enumerating
        all (capped) linear extensions covers every possibility.  An
        incomplete list may still ADMIT (each candidate is sufficient on
        its own) but can never ground a DENY.
        """
        candidates: list[_Candidate] = []
        complete = True
        if self.total_writes:
            from repro.kernel.serializations import forced_write_order

            orders, complete = _bounded_sorts(
                forced_write_order(history, rf), _MAX_AGREED_CANDIDATES
            )
            for order in orders:
                coherence: dict[str, tuple[Operation, ...]] = {}
                for w in order:
                    coherence[w.location] = coherence.get(w.location, ()) + (w,)
                candidates.append((coherence, (tuple(order),)))
        elif self.spec.mutual_consistency is MutualConsistency.COHERENCE:
            per_loc: list[list[tuple[str, tuple[Operation, ...]]]] = []
            size = 1
            for loc in history.locations:
                pairs = forced_coherence_pairs(history, loc, rf)
                if not pairs.items:
                    continue
                orders, loc_complete = _bounded_sorts(
                    pairs, _MAX_AGREED_CANDIDATES
                )
                complete = complete and loc_complete
                size *= max(len(orders), 1)
                per_loc.append([(loc, tuple(o)) for o in orders])
            if size > _MAX_AGREED_CANDIDATES:
                complete = False
            for combo in islice(product(*per_loc), _MAX_AGREED_CANDIDATES):
                coherence = dict(combo)
                candidates.append((coherence, tuple(coherence.values())))
        elif self.spec.mutual_consistency is MutualConsistency.PARTITION:
            from repro.kernel.serializations import forced_block_orders

            assert self.spec.partition_blocks is not None  # spec validation
            per_block: list[list[tuple[Operation, ...]]] = []
            size = 1
            for forced_b in forced_block_orders(
                history, self.spec.partition_blocks, rf
            ):
                orders, block_complete = _bounded_sorts(
                    forced_b, _MAX_AGREED_CANDIDATES
                )
                complete = complete and block_complete
                size *= max(len(orders), 1)
                per_block.append([tuple(o) for o in orders])
            if size > _MAX_AGREED_CANDIDATES:
                complete = False
            for combo in islice(product(*per_block), _MAX_AGREED_CANDIDATES):
                coherence = {}
                for order in combo:
                    for w in order:
                        coherence[w.location] = coherence.get(
                            w.location, ()
                        ) + (w,)
                candidates.append(
                    (coherence, tuple(order for order in combo if order))
                )
        elif self.spec.mutual_consistency is MutualConsistency.LABELED_TOTAL_ORDER:
            labeled = history.labeled_ops
            if labeled:
                rel: Relation[Operation] = Relation(labeled)
                for proc in history.procs:
                    chain = [op for op in history.ops_of(proc) if op.labeled]
                    for a, b in zip(chain, chain[1:]):
                        rel.add(a, b)
                orders, complete = _bounded_sorts(rel, _MAX_AGREED_CANDIDATES)
                candidates = [(None, (tuple(o),)) for o in orders]
            else:
                candidates = [(None, ())]
        else:  # NONE: no agreed object; all freedom is per view
            candidates = [(None, ())]
        return candidates, complete

    def _exhaust_agreements(
        self, history: SystemHistory, rf: ReadsFrom
    ) -> Witness | Counterexample | None:
        """Decide by enumerating every agreed write-order choice, capped.

        Each candidate agreed order makes the legality pins forced for
        views embedding it, so a candidate is either *built* (legal views
        exist — ADMIT, the candidate is a sufficient witness) or
        *refuted* (a pinned view graph is cyclic — no legal views embed
        it).  When the candidate list is exhaustive and every candidate
        is refuted, no agreed order works at all: a sound DENY.  Any
        non-decisive failure — the cap, a defensive legality re-check —
        degrades the DENY side to an abstention.  Labeled-discipline
        specs on labeled histories can still be denied this way (the
        discipline only *adds* requirements) but never admitted.
        """
        spec = self.spec
        labeled_hard = spec.labeled_discipline is not None and bool(
            history.labeled_ops
        )
        candidates, complete = self._agreed_candidates(history, rf)
        brack = bracketing_edges(history, rf) if spec.bracketing else None
        all_decisive = True
        last_cx: Counterexample | None = None
        for coherence, chains in candidates:
            if spec.ordering.needs_coherence:
                if coherence is None:  # pragma: no cover - spec validation
                    all_decisive = False
                    continue
                ordering = spec.ordering.build(history, rf, coherence)
            else:
                ordering = spec.ordering.build(
                    history, cast(ReadsFrom, None), None
                )
            ord_pairs = list(ordering.pairs())
            if self.identical:
                probes: list[tuple[Any, list[Operation]]] = [
                    (None, list(history.operations))
                ]
            else:
                probes = [
                    (proc, list(spec.operation_set.view_contents(history, proc)))
                    for proc in history.procs
                ]
            seqs: dict[Any, list[Operation]] = {}
            refuted: Counterexample | None = None
            stuck = False
            for proc, members in probes:
                seq, cx = self._exhaust_view(
                    proc, members, rf, ord_pairs, chains, brack, coherence
                )
                if seq is None:
                    if cx is None:
                        stuck = True
                    else:
                        refuted = cx
                    break
                seqs[proc] = seq
            if refuted is None and not stuck:
                if labeled_hard:
                    # This candidate satisfies the base requirements; only
                    # the labeled discipline is unverified.  Neither an
                    # ADMIT (the discipline may fail) nor a DENY (it may
                    # hold) — the whole rule abstains.
                    all_decisive = False
                    continue
                if self.identical:
                    common = seqs[None]
                    views = {
                        proc: View(proc, common, history, validate=False)
                        for proc in history.procs
                    }
                else:
                    views = {
                        proc: View(proc, seq, history, validate=False)
                        for proc, seq in seqs.items()
                    }
                return Witness(views=views, reads_from=rf, coherence=coherence)
            if stuck:
                all_decisive = False
            else:
                last_cx = refuted
        if complete and all_decisive and last_cx is not None:
            detail = (
                f"all {len(candidates)} agreed write-order choices are "
                f"refuted; e.g. {last_cx.detail}"
            )
            return Counterexample(
                spec.name,
                "cyclic-constraints",
                detail,
                proc=last_cx.proc,
                cycle=last_cx.cycle,
            )
        return None

    def _exhaust_view(
        self,
        proc: Any,
        members: list[Operation],
        rf: ReadsFrom,
        ord_pairs: list[tuple[Operation, Operation]],
        chains: tuple[tuple[Operation, ...], ...],
        brack: Relation[Operation] | None,
        coherence: dict[str, tuple[Operation, ...]] | None,
    ) -> tuple[list[Operation] | None, Counterexample | None]:
        """Build one view under a fixed agreed order, or refute it.

        Returns ``(sequence, None)`` on success, ``(None, counterexample)``
        when the candidate is *decisively* refuted for this view (the
        pinned graph is cyclic, or a read's unique source never enters the
        view), and ``(None, None)`` when nothing can be concluded.  With
        ``coherence`` fixed the graph is deterministic; without one (no
        cross-view agreement) the view's own per-location write orders are
        enumerated exhaustively, capped — all refuted and complete means
        the view itself is impossible.
        """
        spec = self.spec
        who = "the common view" if proc is None else f"processor {proc!r}"
        member_set = set(members)
        rel = self._base_graph(proc, members, rf, ord_pairs, chains, brack)
        if rel is None:
            return None, Counterexample(
                spec.name,
                "invisible-source",
                f"a read in {who} observes a value whose unique writer "
                "never enters that view",
                proc=proc,
            )
        if coherence is not None:
            loc_order = {
                loc: [w for w in chain if w in member_set]
                for loc, chain in coherence.items()
            }
            if not self._add_pins(rel, members, rf, loc_order):
                return None, None  # defensive: a source outside its order
            cycle = rel.find_cycle()
            if cycle is not None:
                return None, Counterexample(
                    spec.name,
                    "cyclic-constraints",
                    f"the pinned constraint graph for {who} is cyclic "
                    f"(cycle of {len(cycle) - 1} operations)",
                    proc=proc,
                    cycle=tuple(cycle),
                )
            seq = rel.topological_sort()
            if first_legality_violation(seq) is not None:  # pragma: no cover
                return None, None
            return seq, None
        # No agreed per-location order: the view chooses its own.  Every
        # legal sequence's induced write order extends the base graph's
        # forced pairs, so enumerating the extensions is exhaustive.
        cycle = rel.find_cycle()
        if cycle is not None:
            return None, Counterexample(
                spec.name,
                "cyclic-constraints",
                f"the constraint graph for {who} is cyclic "
                f"(cycle of {len(cycle) - 1} operations)",
                proc=proc,
                cycle=tuple(cycle),
            )
        closure = rel.transitive_closure()
        per_loc: list[list[tuple[str, tuple[Operation, ...]]]] = []
        complete = True
        size = 1
        writes_by_loc: dict[str, list[Operation]] = {}
        for op in members:
            if op.is_write:
                writes_by_loc.setdefault(op.location, []).append(op)
        for loc, ws in sorted(writes_by_loc.items()):
            sub: Relation[Operation] = Relation(ws)
            for a in ws:
                for b in ws:
                    if a.uid != b.uid and closure.orders(a, b):
                        sub.add(a, b)
            orders, loc_complete = _bounded_sorts(sub, _MAX_AGREED_CANDIDATES)
            complete = complete and loc_complete
            size *= max(len(orders), 1)
            per_loc.append([(loc, tuple(o)) for o in orders])
        if size > _MAX_AGREED_CANDIDATES:
            complete = False
        last: list[Operation] | None = None
        for combo in islice(product(*per_loc), _MAX_AGREED_CANDIDATES):
            trial = self._base_graph(proc, members, rf, ord_pairs, chains, brack)
            assert trial is not None  # the base graph built above
            loc_order = {}
            for loc, order in combo:
                loc_order[loc] = list(order)
                for a, b in zip(order, order[1:]):
                    trial.add(a, b)
            if not self._add_pins(trial, members, rf, loc_order):
                complete = False
                continue
            cycle = trial.find_cycle()
            if cycle is not None:
                last = cycle
                continue
            seq = trial.topological_sort()
            if first_legality_violation(seq) is not None:  # pragma: no cover
                complete = False
                continue
            return seq, None
        if complete and last is not None:
            return None, Counterexample(
                spec.name,
                "cyclic-constraints",
                f"every per-view write order for {who} is refuted "
                f"(e.g. a cycle of {len(last) - 1} operations)",
                proc=proc,
                cycle=tuple(last),
            )
        return None, None


@lru_cache(maxsize=128)
def compile_prepass(spec: MemoryModelSpec) -> HistoryPrepass:
    """The compiled pre-pass of ``spec`` (cached: specs are few, reuse is hot)."""
    return HistoryPrepass(spec)


def prepass_check(spec: MemoryModelSpec, history: SystemHistory) -> PrepassVerdict:
    """Run the compiled pre-pass of ``spec`` against ``history``."""
    return compile_prepass(spec).check(history)
