"""repro.staticcheck — the static analysis layer in front of the kernel.

Three coordinated analyzers, all polynomial-time, all *without* running the
kernel's exponential linear-extension search or executing a program:

* :mod:`repro.staticcheck.prepass` — per-spec necessary-condition checks on
  histories.  Sound for DENY (a decided verdict is always correct), never
  ADMITs; UNKNOWN falls through to the kernel.  The engine runs it as an
  opt-out fast path in front of every spec-backed checker.
* :mod:`repro.staticcheck.speclint` — validation of
  :class:`~repro.spec.model_spec.MemoryModelSpec` parameter triples, plus
  small-history probing that flags specs indistinguishable from (or
  contained in) an existing lattice node.
* :mod:`repro.staticcheck.progcheck` — static race and proper-labeling
  analysis of pseudocode programs (paper Section 3.4), cross-validated in
  the test suite against the dynamic :mod:`repro.analysis.labeling` checks
  on scheduler-generated histories.

All three are exposed by ``python -m repro lint {history,spec,program}``.
"""

from repro.staticcheck.prepass import (
    HistoryPrepass,
    PrepassVerdict,
    compile_prepass,
    prepass_check,
)
from repro.staticcheck.progcheck import (
    PotentialRace,
    ProgramReport,
    SharedAccess,
    analyze_program,
    report_covers_races,
)
from repro.staticcheck.speclint import (
    SpecFinding,
    broken_fixture_specs,
    lint_parameters,
    lint_registry,
    lint_spec,
)

__all__ = [
    "HistoryPrepass",
    "PrepassVerdict",
    "compile_prepass",
    "prepass_check",
    "SpecFinding",
    "broken_fixture_specs",
    "lint_parameters",
    "lint_registry",
    "lint_spec",
    "PotentialRace",
    "ProgramReport",
    "SharedAccess",
    "analyze_program",
    "report_covers_races",
]
