"""repro.staticcheck — the static analysis layer in front of the kernel.

Five coordinated analyzers, all polynomial-time except the bounded
agreement enumeration, all *without* running the kernel's full
linear-extension search or executing a program:

* :mod:`repro.staticcheck.prepass` — per-spec checks on histories.  Sound
  in both directions: necessary-condition rules decide DENY, and the
  bounded agreement-exhausted rule decides ADMIT with a witness view;
  UNKNOWN falls through to the kernel.  The engine runs it as an opt-out
  fast path in front of every spec-backed checker.
* :mod:`repro.staticcheck.speclint` — validation of
  :class:`~repro.spec.model_spec.MemoryModelSpec` parameter triples, plus
  small-history probing that flags specs indistinguishable from (or
  contained in) an existing lattice node.
* :mod:`repro.staticcheck.cfg` — control-flow graphs for pseudocode
  programs with the must-dataflow analyses (``must_in_cs``,
  ``cs_bracketed``) the program analyses build on.
* :mod:`repro.staticcheck.progcheck` — static race and proper-labeling
  analysis of pseudocode programs (paper Section 3.4) on the CFG, plus
  :func:`~repro.staticcheck.progcheck.infer_labels`, which proposes the
  minimal ``sync`` relabeling that makes a racy program properly labeled.
* :mod:`repro.staticcheck.drf` — machine-checkable DRF certificates:
  :func:`~repro.staticcheck.drf.certify_program` records every competing
  pair with its discharge, and
  :func:`~repro.staticcheck.drf.verify_certificate` re-validates the
  artifact from the program text alone.

The program analyses are cross-validated in the test suite against the
dynamic :mod:`repro.analysis.labeling` checks on scheduler-generated
histories, and continuously by the ``program:*`` fuzz strata of
:mod:`repro.diff.programs`.  All of this is exposed by
``python -m repro lint {history,spec,program}``.
"""

from repro.staticcheck.cfg import (
    Cfg,
    CfgNode,
    build_cfg,
    cs_bracketed,
    must_in_cs,
)
from repro.staticcheck.drf import (
    CertificationResult,
    DrfCertificate,
    Obligation,
    certify_program,
    verify_certificate,
)
from repro.staticcheck.prepass import (
    HistoryPrepass,
    PrepassVerdict,
    compile_prepass,
    prepass_check,
)
from repro.staticcheck.progcheck import (
    LabelPatch,
    PotentialRace,
    ProgramReport,
    SharedAccess,
    analyze_program,
    competing_pairs,
    infer_labels,
    report_covers_races,
)
from repro.staticcheck.speclint import (
    SpecFinding,
    broken_fixture_specs,
    lint_parameters,
    lint_registry,
    lint_spec,
)

__all__ = [
    "HistoryPrepass",
    "PrepassVerdict",
    "compile_prepass",
    "prepass_check",
    "SpecFinding",
    "broken_fixture_specs",
    "lint_parameters",
    "lint_registry",
    "lint_spec",
    "Cfg",
    "CfgNode",
    "build_cfg",
    "cs_bracketed",
    "must_in_cs",
    "CertificationResult",
    "DrfCertificate",
    "Obligation",
    "certify_program",
    "verify_certificate",
    "LabelPatch",
    "PotentialRace",
    "ProgramReport",
    "SharedAccess",
    "analyze_program",
    "competing_pairs",
    "infer_labels",
    "report_covers_races",
]
