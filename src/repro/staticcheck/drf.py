"""Machine-checkable DRF certificates for pseudocode programs (§3.4).

The paper's payoff for proper labeling is behavioral: a properly labeled
program running on any machine of the Figure 5 lattice that respects its
labels behaves as if the memory were sequentially consistent.  This module
turns the static analysis of :mod:`repro.staticcheck.progcheck` into an
*auditable artifact*: :func:`certify_program` issues a
:class:`DrfCertificate` that records every competing access pair together
with the reason it cannot race, and :func:`verify_certificate` re-derives
the pairs from the program text and checks each one against the recorded
discharge — so a certificate can be stored, shipped, and re-validated
without trusting the issuer.

A pair is discharged one of two ways:

* ``labeled`` — both sides carry the ``sync`` label; the paper's
  discipline explicitly permits competing labeled operations.
* ``critical-section`` — both sides are inside declared critical sections
  on every path (:func:`~repro.staticcheck.cfg.must_in_cs`), **and** the
  program's CS regions are bracketed by labeled synchronization
  (:func:`~repro.staticcheck.cfg.cs_bracketed`), so the mutual exclusion
  the markers assert is implemented by operations the model orders.  The
  bracketing check is the certificate's only assumption, recorded in
  :attr:`DrfCertificate.assumptions`.

Cross-validation lives in the test suite: every certified program in the
mutex suite is exhaustively model-checked
(:mod:`repro.programs.modelcheck`) and dynamically race-checked
(:func:`repro.analysis.labeling.find_races`) on weaker machines, and the
``program:`` fuzz strata of :mod:`repro.diff.programs` compare the static
verdict against dynamic races on random programs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.staticcheck.cfg import build_cfg, cs_bracketed
from repro.staticcheck.progcheck import (
    ProgramReport,
    analyze_program,
    competing_pairs,
)

__all__ = [
    "Obligation",
    "DrfCertificate",
    "CertificationResult",
    "certify_program",
    "verify_certificate",
]

#: The certificate format version; bumped on any schema change.
CERTIFICATE_VERSION = 1

_CS_ASSUMPTION = (
    "critical-section markers provide mutual exclusion "
    "(entry dominated by labeled sync, exit released by a labeled write)"
)


@dataclass(frozen=True)
class Obligation:
    """One competing access pair and why it cannot race."""

    base: str
    line_a: int
    line_b: int
    discharge: str  # "labeled" | "critical-section"

    def to_dict(self) -> dict[str, Any]:
        return {
            "base": self.base,
            "lines": [self.line_a, self.line_b],
            "discharge": self.discharge,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Obligation":
        a, b = data["lines"]
        return cls(str(data["base"]), int(a), int(b), str(data["discharge"]))


@dataclass(frozen=True)
class DrfCertificate:
    """A data-race-freedom certificate for ``threads`` copies of a program.

    The certificate is self-contained: the digest pins the exact program
    text, ``obligations`` enumerate every competing pair with its
    discharge, and ``assumptions`` list what the verifier must grant
    (empty for programs without critical sections).
    """

    program: str
    threads: int
    thread_param: str
    shared: tuple[str, ...]
    text_sha256: str
    obligations: tuple[Obligation, ...]
    assumptions: tuple[str, ...]
    version: int = CERTIFICATE_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "program": self.program,
            "threads": self.threads,
            "thread_param": self.thread_param,
            "shared": list(self.shared),
            "text_sha256": self.text_sha256,
            "obligations": [o.to_dict() for o in self.obligations],
            "assumptions": list(self.assumptions),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DrfCertificate":
        return cls(
            program=str(data["program"]),
            threads=int(data["threads"]),
            thread_param=str(data["thread_param"]),
            shared=tuple(data["shared"]),
            text_sha256=str(data["text_sha256"]),
            obligations=tuple(
                Obligation.from_dict(o) for o in data["obligations"]
            ),
            assumptions=tuple(data["assumptions"]),
            version=int(data.get("version", CERTIFICATE_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "DrfCertificate":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        lines = [
            f"DRF certificate for {self.program!r} "
            f"({self.threads} threads, digest {self.text_sha256[:12]}…)"
        ]
        if not self.obligations:
            lines.append("  no competing pairs")
        for ob in self.obligations:
            lines.append(
                f"  {ob.base}: lines {ob.line_a}/{ob.line_b} — {ob.discharge}"
            )
        for assumption in self.assumptions:
            lines.append(f"  assumes: {assumption}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CertificationResult:
    """Outcome of :func:`certify_program`.

    ``certificate`` is ``None`` exactly when ``problems`` is non-empty;
    the problems name the races (or unbracketed critical sections) that
    block certification.
    """

    report: ProgramReport
    certificate: DrfCertificate | None
    problems: tuple[str, ...]

    @property
    def certified(self) -> bool:
        return self.certificate is not None


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _competing_obligations(
    report: ProgramReport, bracketed: bool
) -> tuple[tuple[Obligation, ...], tuple[str, ...]]:
    """Discharge every competing pair of a race-free report.

    ``cs_protected`` pairs discharge via the critical-section argument only
    when the regions are bracketed; labeled-vs-labeled pairs are implicit
    in the report (it only records pairs with an unlabeled side), so they
    are re-derived by the verifier rather than stored here.
    """
    obligations: list[Obligation] = []
    problems: list[str] = []
    for race in report.races:
        problems.append(f"potential race: {race.render()}")
    for pair in report.cs_protected:
        if bracketed:
            obligations.append(
                Obligation(
                    pair.base,
                    pair.first.line,
                    pair.second.line,
                    "critical-section",
                )
            )
        else:
            problems.append(
                f"critical-section pair on {pair.base!r} "
                "(lines "
                f"{pair.first.line}/{pair.second.line}) but the CS regions "
                "are not bracketed by labeled synchronization"
            )
    return tuple(obligations), tuple(problems)


def certify_program(
    text: str,
    *,
    shared: tuple[str, ...] = (),
    name: str = "program",
    threads: int = 2,
    thread_param: str = "i",
    params: Mapping[str, Any] | None = None,
) -> CertificationResult:
    """Issue a DRF certificate for ``threads`` copies of ``text``, or
    explain why none can be issued."""
    report = analyze_program(
        text,
        shared=shared,
        name=name,
        threads=threads,
        thread_param=thread_param,
        params=params,
    )
    cfg = build_cfg(text, shared=shared)
    bracketed = cs_bracketed(cfg)
    obligations, problems = _competing_obligations(report, bracketed)
    if problems:
        return CertificationResult(report, None, problems)
    # Labeled competing pairs: record them too, so the certificate lists
    # every competing pair the verifier will re-derive.
    labeled: list[Obligation] = []
    pairs = competing_pairs(
        text,
        shared=shared,
        threads=threads,
        thread_param=thread_param,
        params=params,
    )
    for a, b in pairs:
        if a.labeled and b.labeled:
            labeled.append(Obligation(a.base, a.line, b.line, "labeled"))
    assumptions = (_CS_ASSUMPTION,) if report.cs_protected else ()
    cert = DrfCertificate(
        program=name,
        threads=threads,
        thread_param=thread_param,
        shared=tuple(shared),
        text_sha256=_digest(text),
        obligations=tuple(labeled) + obligations,
        assumptions=assumptions,
    )
    return CertificationResult(report, cert, ())


def verify_certificate(
    cert: DrfCertificate,
    text: str,
    *,
    params: Mapping[str, Any] | None = None,
) -> tuple[str, ...]:
    """Re-check a certificate against program text; return the problems.

    An empty tuple means the certificate is valid: the digest matches, the
    program is still race-free at the certified thread count, every
    re-derived competing pair appears among the obligations, and each
    obligation's discharge still holds (``critical-section`` discharges
    additionally require the CS regions to be bracketed).  The verifier
    shares no state with the issuer beyond the certificate itself.
    """
    problems: list[str] = []
    if _digest(text) != cert.text_sha256:
        return (
            "digest mismatch: the program text is not the one certified",
        )
    report = analyze_program(
        text,
        shared=cert.shared,
        name=cert.program,
        threads=cert.threads,
        thread_param=cert.thread_param,
        params=params,
    )
    for race in report.races:
        problems.append(f"uncertifiable race: {race.render()}")
    bracketed = cs_bracketed(build_cfg(text, shared=cert.shared))
    by_key = {
        (ob.base, frozenset((ob.line_a, ob.line_b))): ob
        for ob in cert.obligations
    }
    sites = {a.line: a for a in report.accesses}
    pairs = competing_pairs(
        text,
        shared=cert.shared,
        threads=cert.threads,
        thread_param=cert.thread_param,
        params=params,
    )
    for a, b in pairs:
        if by_key.get((a.base, frozenset((a.line, b.line)))) is None:
            problems.append(
                f"competing pair {a.base!r} lines {a.line}/{b.line} "
                "has no obligation"
            )
    for ob in cert.obligations:
        a, b = sites.get(ob.line_a), sites.get(ob.line_b)
        if a is None or b is None:
            problems.append(
                f"obligation names missing access lines "
                f"{ob.line_a}/{ob.line_b}"
            )
            continue
        if ob.discharge == "labeled":
            if not (a.labeled and b.labeled):
                problems.append(
                    f"labeled discharge at lines {ob.line_a}/{ob.line_b} "
                    "but a side is unlabeled"
                )
        elif ob.discharge == "critical-section":
            if not (a.in_cs and b.in_cs):
                problems.append(
                    f"critical-section discharge at lines "
                    f"{ob.line_a}/{ob.line_b} but a side is outside the CS"
                )
            elif not bracketed:
                problems.append(
                    "critical-section discharge but the CS regions are not "
                    "bracketed by labeled synchronization"
                )
            elif _CS_ASSUMPTION not in cert.assumptions:
                problems.append(
                    "critical-section discharge without the mutual-"
                    "exclusion assumption recorded"
                )
        else:
            problems.append(f"unknown discharge kind {ob.discharge!r}")
    return tuple(problems)
