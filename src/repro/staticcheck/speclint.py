"""Spec linting: validate memory-model parameter triples before trusting them.

A :class:`~repro.spec.model_spec.MemoryModelSpec` is data, and data can be
wrong in ways the constructor cannot see: an ordering callable that is not
a partial order, a parameter combination that type-checks but contradicts
the paper's definitions, or a "new" memory that is observationally the
same as a registry node.  The linter catches all three:

* **SL001** (error) — the ordering is not a partial order over H: it
  relates an operation to itself or is cyclic on an SC-allowed probe
  history (a broken ordering denies even a sequential execution);
* **SL002** (error) — the mutual-consistency class is inconsistent with
  the set-of-operations parameter, or bracketing/labeled-discipline flags
  contradict each other (the constructor's rules, reported as findings
  instead of raised);
* **SL003** (warning) — a labeled discipline is declared but nothing in
  the spec (bracketing, a label-aware ordering, labeled agreement) uses it;
* **SL101** (warning) — probe histories cannot distinguish the spec from
  an existing registry spec (trivially equal lattice node);
* **SL102** (info) — the spec's allowed set is strictly contained in (or
  strictly contains) a registry spec's on the probe set.

Probing is small-history: the fixed SC-allowed texts below for the
partial-order check, plus the litmus catalog and two labeled probes for
the equivalence/containment sweep.  Probe verdicts come from the kernel
(:func:`~repro.kernel.search.check_with_spec`), so the linter inherits the
kernel's semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import ReproError
from repro.core.history import SystemHistory
from repro.kernel.search import check_with_spec
from repro.orders.coherence import enumerate_coherence_orders
from repro.orders.relation import Relation
from repro.orders.writes_before import ReadsFrom, unambiguous_reads_from
from repro.core.operation import Operation
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import (
    PO,
    LabeledDiscipline,
    MutualConsistency,
    OperationSet,
    OrderingRule,
)

__all__ = [
    "SpecFinding",
    "lint_spec",
    "lint_parameters",
    "lint_registry",
    "broken_fixture_specs",
]

#: SC-allowed probe texts: any ordering that is cyclic on one of these
#: would deny a sequentially consistent execution, so it cannot be a
#: partial order over admissible histories.
_ORDERING_PROBES: tuple[str, ...] = (
    "p: w(x)1 r(x)1 | q: w(y)2 r(y)2",
    "p: w(x)1 w(y)2 | q: r(y)2 r(x)1",
    "p: w(x)1 r(y)0 | q: r(x)1 w(y)2",
)

#: Labeled probes for the equivalence sweep (separate the RC/hybrid specs,
#: which collapse onto their unlabeled cousins on label-free histories).
_LABELED_PROBES: tuple[str, ...] = (
    "p: w*(s)1 r(x)0 w(x)1 w*(s)2 | q: r*(s)2 r(x)1 w(x)2 w*(s)3",
    "p: w(x)1 w*(s)1 | q: r*(s)1 r(x)0",
    "p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0",  # labeled SB: RC_sc ≠ RC_pc
)

#: Probes separating the session-guarantee and Partition Consistency
#: families from each other and from the classical nodes.  The catalog's
#: two-location litmus tests cannot tell a partition instance from plain
#: coherence (round-robin blocks over two locations are singletons), nor
#: one session guarantee from another (each needs a violation of exactly
#: its own edge kind), so the sweep carries purpose-built texts.
_FAMILY_PROBES: tuple[str, ...] = (
    # read-your-writes violation: a session reads stale x after its own
    # write.  Denies ryw (and everything ordering w→r); admits mr/mw/wfr.
    "p: w(x)1 r(x)0",
    # monotonic-reads violation: the value sequence 1,2,1 cannot be
    # monotone under any agreed or private write order with one w(x)1.
    # Denies mr; admits ryw/mw/wfr (reads may be placed out of order).
    "p: w(x)1 w(x)2 | q: r(x)1 r(x)2 r(x)1",
    # monotonic-writes violation: q observes p's writes in the wrong
    # order across locations.  Denies mw (w(x)1 → w(y)1 binds every
    # view); admits ryw/mr/wfr and coherence.
    "p: w(x)1 w(y)1 | q: r(y)1 r(x)0 r(x)1",
    # A processor reads its own future write.  Causal's r→w program-order
    # edge denies this; none of the four session guarantees orders a read
    # before the same processor's later write, so session-causal admits
    # it — the witness that the session meet sits strictly below Causal.
    "p: r(x)2 w(x)2",
    # Store buffering on the {x, z} block of the two-way round-robin
    # partition of {x, y, z}.  partition-2 enforces program order and an
    # agreed write order inside the block, so it denies; coherence and
    # partition-3 (whose blocks over three locations are singletons)
    # admit.
    "p: w(x)1 r(z)0 | q: w(z)1 r(x)0 | s: w(y)1",
    # The same pattern on the {u, z} block of the three-way partition of
    # {u, x, y, z}; under partition-2 the blocks are {u, y} and {x, z},
    # so u and z are unrelated and the probe is admitted — partition-2
    # and partition-3 separate in both directions.
    "p: w(u)1 r(z)0 | q: w(z)1 r(u)0 | s: w(x)1 | t: w(y)1",
)


@dataclass(frozen=True)
class SpecFinding:
    """One linter diagnosis about one spec.

    Attributes
    ----------
    level:
        ``"error"`` (the spec is unusable), ``"warning"`` (probably not
        what the author meant) or ``"info"`` (lattice-position note).
    code:
        Stable finding code (``SL001`` …), for filtering and tests.
    spec:
        Name of the spec the finding is about.
    message:
        Human-readable one-liner.
    """

    level: str
    code: str
    spec: str
    message: str

    def render(self) -> str:
        return f"{self.level:7s} {self.code} [{self.spec}] {self.message}"


def _probe_histories(texts: Iterable[str]) -> list[SystemHistory]:
    from repro.litmus import parse_history

    return [parse_history(text) for text in texts]


def _default_probes() -> list[SystemHistory]:
    """The equivalence-probe set: the catalog plus the labeled probes."""
    from repro.litmus import CATALOG

    probes = [test.history for test in CATALOG.values()]
    probes.extend(_probe_histories(_LABELED_PROBES))
    probes.extend(_probe_histories(_FAMILY_PROBES))
    return probes


def _build_ordering(
    spec: MemoryModelSpec, history: SystemHistory, rf: ReadsFrom
) -> Relation[Operation] | None:
    """The spec's ordering on ``history``, or ``None`` when unbuildable."""
    co = None
    if spec.ordering.needs_coherence:
        co = next(enumerate_coherence_orders(history, rf), None)
        if co is None:
            return None
    return spec.ordering.build(history, rf, co)


def _check_ordering(spec: MemoryModelSpec) -> list[SpecFinding]:
    """SL001: the ordering must be a partial order over admissible H."""
    findings: list[SpecFinding] = []
    for history in _probe_histories(_ORDERING_PROBES):
        rf = unambiguous_reads_from(history)
        if rf is None:  # pragma: no cover - probes use distinct values
            continue
        try:
            rel = _build_ordering(spec, history, rf)
        except ReproError as exc:
            findings.append(
                SpecFinding(
                    "error",
                    "SL001",
                    spec.name,
                    f"ordering {spec.ordering.name!r} failed to build on an "
                    f"SC-allowed probe: {exc}",
                )
            )
            continue
        if rel is None:
            continue
        reflexive = next((a for a, b in rel.pairs() if a == b), None)
        if reflexive is not None:
            findings.append(
                SpecFinding(
                    "error",
                    "SL001",
                    spec.name,
                    f"ordering {spec.ordering.name!r} is not irreflexive: "
                    f"it orders {reflexive} before itself",
                )
            )
            break
        cycle = rel.find_cycle()
        if cycle is not None:
            findings.append(
                SpecFinding(
                    "error",
                    "SL001",
                    spec.name,
                    f"ordering {spec.ordering.name!r} is cyclic on an "
                    f"SC-allowed probe history (cycle of {len(cycle) - 1} "
                    "operations): not a partial order over H",
                )
            )
            break
    return findings


def lint_parameters(
    name: str,
    operation_set: OperationSet,
    mutual_consistency: MutualConsistency,
    ordering: OrderingRule,
    labeled_discipline: LabeledDiscipline | None = None,
    bracketing: bool = False,
    ordering_own_view_only: bool = False,
) -> list[SpecFinding]:
    """Lint a raw parameter triple that may not survive the constructor.

    The constructor's consistency rules, reported as SL002 findings
    instead of a raised :class:`~repro.core.errors.SpecError` — so a bad
    combination can be diagnosed (and all of its problems listed) without
    ever building the spec.
    """
    findings: list[SpecFinding] = []
    if bracketing and labeled_discipline is None:
        findings.append(
            SpecFinding(
                "error",
                "SL002",
                name,
                "bracketing conditions require a labeled discipline",
            )
        )
    if (
        mutual_consistency is MutualConsistency.IDENTICAL
        and operation_set is not OperationSet.ALL_REMOTE
    ):
        findings.append(
            SpecFinding(
                "error",
                "SL002",
                name,
                "identical views require every operation in every view "
                "(set-of-operations must be ALL_REMOTE)",
            )
        )
    if ordering.needs_coherence and mutual_consistency not in (
        MutualConsistency.COHERENCE,
        MutualConsistency.TOTAL_WRITE_ORDER,
    ):
        findings.append(
            SpecFinding(
                "error",
                "SL002",
                name,
                f"ordering {ordering.name!r} needs a coherence order but "
                f"mutual consistency {mutual_consistency.value!r} provides none",
            )
        )
    if (
        labeled_discipline is not None
        and not bracketing
        and mutual_consistency is not MutualConsistency.LABELED_TOTAL_ORDER
    ):
        findings.append(
            SpecFinding(
                "warning",
                "SL003",
                name,
                "a labeled discipline is declared but neither bracketing nor "
                "labeled agreement uses it",
            )
        )
    return findings


def lint_spec(
    spec: MemoryModelSpec,
    *,
    registry: Sequence[MemoryModelSpec] | None = None,
    probes: Sequence[SystemHistory] | None = None,
) -> list[SpecFinding]:
    """All findings about one spec (see the module docstring for codes).

    ``registry`` defaults to :data:`repro.spec.ALL_SPECS`; the spec itself
    (matched by name) is never compared against.  ``probes`` defaults to
    the litmus catalog plus two labeled probes.
    """
    findings = lint_parameters(
        spec.name,
        spec.operation_set,
        spec.mutual_consistency,
        spec.ordering,
        spec.labeled_discipline,
        spec.bracketing,
        spec.ordering_own_view_only,
    )
    findings.extend(_check_ordering(spec))
    if any(f.level == "error" for f in findings):
        # Probing runs the kernel on the spec; skip it for broken specs.
        return findings
    findings.extend(_probe_position(spec, registry, probes))
    return findings


def _probe_position(
    spec: MemoryModelSpec,
    registry: Sequence[MemoryModelSpec] | None,
    probes: Sequence[SystemHistory] | None,
) -> list[SpecFinding]:
    """SL101/SL102: where the spec sits relative to the registry lattice."""
    if registry is None:
        from repro.spec import ALL_SPECS

        registry = ALL_SPECS
    others = [s for s in registry if s.name != spec.name]
    if not others:
        return []
    if probes is None:
        probes = _default_probes()
    vector = _verdict_vector(spec, probes)
    findings: list[SpecFinding] = []
    for other in others:
        other_vector = _verdict_vector(other, probes)
        if vector == other_vector:
            findings.append(
                SpecFinding(
                    "warning",
                    "SL101",
                    spec.name,
                    f"indistinguishable from registry spec {other.name!r} on "
                    f"{len(probes)} probe histories (trivially equal lattice "
                    "node?)",
                )
            )
        elif all(b for a, b in zip(vector, other_vector) if a):
            findings.append(
                SpecFinding(
                    "info",
                    "SL102",
                    spec.name,
                    f"contained in registry spec {other.name!r} on the probe "
                    "set (every probe it allows, the registry spec allows)",
                )
            )
    return findings


def _verdict_vector(
    spec: MemoryModelSpec, probes: Sequence[SystemHistory]
) -> tuple[bool, ...]:
    return tuple(check_with_spec(spec, h).allowed for h in probes)


def lint_registry() -> dict[str, list[SpecFinding]]:
    """Lint every registered spec against the rest of the registry."""
    from repro.spec import ALL_SPECS

    probes = _default_probes()
    return {
        spec.name: lint_spec(spec, registry=ALL_SPECS, probes=probes)
        for spec in ALL_SPECS
    }


# -- seeded bad fixtures --------------------------------------------------------


def _build_reversed_po(
    history: SystemHistory, rf: ReadsFrom, co: object
) -> Relation[Operation]:
    """A deliberately broken ordering: program order plus its converse."""
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for a, b in zip(ops, ops[1:]):
            rel.add(a, b)
            rel.add(b, a)
    return rel


def broken_fixture_specs() -> tuple[MemoryModelSpec, ...]:
    """Deliberately bad specs the linter must flag (tests and the CLI demo).

    The constructor cannot reject these — the parameters type-check — but
    SL001 catches the non-partial-order ordering by probing.
    """
    contradictory = MemoryModelSpec(
        name="BrokenOrdering",
        operation_set=OperationSet.ALL_REMOTE,
        mutual_consistency=MutualConsistency.NONE,
        ordering=OrderingRule("po+po⁻¹", _build_reversed_po),
        description="Fixture: orders every program-order pair both ways.",
    )
    shadow_sc = MemoryModelSpec(
        name="ShadowSC",
        operation_set=OperationSet.ALL_REMOTE,
        mutual_consistency=MutualConsistency.IDENTICAL,
        ordering=PO,
        description="Fixture: SC under a new name (SL101 must flag it).",
    )
    return (contradictory, shadow_sc)
