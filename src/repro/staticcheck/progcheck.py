"""Static race and proper-labeling analysis of pseudocode programs (§3.4).

The dynamic checks in :mod:`repro.analysis.labeling` need an executed
history; this module inspects the program *text* — via the control-flow
graph :mod:`repro.staticcheck.cfg` builds from the
:mod:`repro.programs.pseudocode` AST — and reports which shared locations
can race when ``threads`` copies of the program run concurrently.

The analysis is deliberately conservative, mirroring the paper's notion of
*competing* operations:

* every *reachable* shared access is collected from the CFG with its
  label (``sync``) and whether it is inside a critical section on **every**
  path (the :func:`~repro.staticcheck.cfg.must_in_cs` dataflow — a
  ``cs_enter`` in one branch arm does not protect the join);
* two accesses from distinct threads form a *potential race* when they
  touch locations that may alias, at least one is a write, and at least
  one is unlabeled — exactly the pairs that §3.4's proper-labeling
  discipline forbids;
* pairs where **both** sides lie inside declared critical sections are
  reported separately (:attr:`ProgramReport.cs_protected`): the markers
  assert mutual exclusion, but that assertion is only as good as the
  labeled synchronization implementing the section — which the
  certificate layer (:mod:`repro.staticcheck.drf`) checks via
  :func:`~repro.staticcheck.cfg.cs_bracketed`.

Aliasing of indexed locations (``flag[1 - i]`` vs ``flag[i]``) is decided
by evaluating the index expressions over all assignments of distinct
thread ids to the thread parameter; any expression mentioning other
variables (loop counters, locals — including locals that *shadow* a
thread parameter, which an environment-only evaluation would silently
misread) is conservatively assumed to alias.

:func:`infer_labels` closes the loop: it computes the (unique minimal)
set of extra ``sync`` labels that silences every reported race and can
apply them to the program text — ``python -m repro lint program --fix``.

Soundness direction: the analyzer may over-report (an access guarded by
data flow it cannot see), but on the repository's algorithm suite every
potential race it reports is confirmed by the dynamic
:func:`repro.analysis.labeling.find_races` — see
``tests/staticcheck/test_progcheck.py``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.core.operation import Operation
from repro.programs.pseudocode import (
    PseudoProgram,
    _Assign,
    _For,
    _If,
    _Node,
    _SharedRead,
    _While,
    parse_program,
)
from repro.staticcheck.cfg import build_cfg, must_in_cs

__all__ = [
    "SharedAccess",
    "PotentialRace",
    "ProgramReport",
    "LabelPatch",
    "analyze_program",
    "competing_pairs",
    "infer_labels",
    "report_covers_races",
]


@dataclass(frozen=True)
class SharedAccess:
    """One static shared-memory access site in a program body."""

    line: int
    kind: str  # "read" | "write"
    base: str  # location name without the index, e.g. "number"
    index: str | None  # raw index expression text, e.g. "1 - i"
    labeled: bool  # carries the ``sync`` suffix
    in_cs: bool  # between cs_enter and cs_exit markers

    @property
    def location(self) -> str:
        return self.base if self.index is None else f"{self.base}[{self.index}]"

    def render(self) -> str:
        marks = [self.kind]
        if self.labeled:
            marks.append("sync")
        if self.in_cs:
            marks.append("cs")
        return f"line {self.line}: {self.location} ({', '.join(marks)})"


@dataclass(frozen=True)
class PotentialRace:
    """A pair of access sites that can compete without both being labeled."""

    first: SharedAccess
    second: SharedAccess
    reason: str

    @property
    def base(self) -> str:
        return self.first.base

    def render(self) -> str:
        return (
            f"{self.base}: {self.first.render()} vs {self.second.render()} "
            f"— {self.reason}"
        )


@dataclass(frozen=True)
class ProgramReport:
    """Everything :func:`analyze_program` learned about one program."""

    name: str
    threads: int
    accesses: tuple[SharedAccess, ...]
    races: tuple[PotentialRace, ...]
    cs_protected: tuple[PotentialRace, ...]

    @property
    def properly_labeled(self) -> bool:
        """No potential race outside declared critical sections (§3.4)."""
        return not self.races

    @property
    def race_bases(self) -> frozenset[str]:
        return frozenset(race.base for race in self.races)

    @property
    def cs_protected_bases(self) -> frozenset[str]:
        return frozenset(race.base for race in self.cs_protected)

    def render(self) -> str:
        lines = [
            f"{self.name}: {len(self.accesses)} shared access sites, "
            f"{self.threads} threads"
        ]
        if self.properly_labeled:
            lines.append("  properly labeled: no potential races outside CS")
        for race in self.races:
            lines.append(f"  RACE {race.render()}")
        for race in self.cs_protected:
            lines.append(f"  cs-protected {race.render()}")
        return "\n".join(lines)


# -- access collection ----------------------------------------------------------


def collect_accesses(program: PseudoProgram) -> tuple[SharedAccess, ...]:
    """All reachable shared-access sites of a program, in program order.

    Built from the control-flow graph: the ``in_cs`` flag is the
    :func:`~repro.staticcheck.cfg.must_in_cs` dataflow fact (inside a
    critical section on *every* path), and accesses in unreachable code
    (after a ``break``, say) are not collected at all.
    """
    cfg = build_cfg(program)
    in_cs = must_in_cs(cfg)
    out: list[SharedAccess] = []
    for node in cfg.accesses():
        assert node.base is not None
        kind = "write" if node.is_write else "read"
        out.append(
            SharedAccess(
                node.line, kind, node.base, node.index, node.labeled, in_cs[node.id]
            )
        )
    return tuple(out)


_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _local_names(body: list[_Node], shared_names: frozenset[str]) -> Iterator[str]:
    """Every name a program binds locally (assignments, reads, loop vars).

    Index expressions mentioning any of these must be treated as opaque
    even when a *parameter* of the same name exists — a local shadowing
    the thread parameter would otherwise be evaluated with the parameter's
    value, which is unsound.
    """
    for node in body:
        if (
            isinstance(node, _Assign)
            and not node.shared
            and "[" not in node.target
            and node.target not in shared_names
        ):
            yield node.target
        elif isinstance(node, _SharedRead):
            yield node.name
        elif isinstance(node, _If):
            for _, arm_body in node.arms:
                yield from _local_names(arm_body, shared_names)
        elif isinstance(node, _While):
            yield from _local_names(node.body, shared_names)
        elif isinstance(node, _For):
            yield node.var
            yield from _local_names(node.body, shared_names)


# -- aliasing -------------------------------------------------------------------


def _eval_index(
    expr: str, env: Mapping[str, Any], opaque: frozenset[str] = frozenset()
) -> int | None:
    """Evaluate an index expression, or ``None`` when it is not closed
    over the thread parameters (loop variables, locals → conservative).

    ``opaque`` lists names the program binds locally: an expression
    mentioning any of them is unknown *even when the environment holds a
    parameter of the same name*, because the local shadows the parameter
    at run time.
    """
    if opaque and any(name in opaque for name in _NAME_RE.findall(expr)):
        return None
    try:
        value = eval(expr, {"__builtins__": {}}, dict(env))
    except Exception:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def _indices_may_collide(
    a: str | None,
    b: str | None,
    thread_param: str,
    threads: int,
    params: Mapping[str, Any],
    opaque: frozenset[str] = frozenset(),
) -> bool:
    """May ``base[a]`` on one thread and ``base[b]`` on a *different*
    thread name the same location?

    Decided by evaluating both expressions under **every** ordered pair of
    distinct thread ids — with three or more threads, ``flag[1 - i]`` on
    thread 2 names ``flag[-1]``, which still collides with ``flag[1 - i]``
    on thread... no other thread, but does collide with ``flag[i]`` via
    the (0, 1) pair; the pairwise sweep covers all of it.
    """
    if a is None and b is None:
        return True
    if a is None or b is None:
        # "turn" and "turn[0]" are distinct location strings in the runner.
        return False
    for ta in range(threads):
        for tb in range(threads):
            if ta == tb:
                continue
            va = _eval_index(a, {**params, thread_param: ta}, opaque)
            vb = _eval_index(b, {**params, thread_param: tb}, opaque)
            if va is None or vb is None:
                return True  # unknown index → conservative alias
            if va == vb:
                return True
    return False


# -- race detection -------------------------------------------------------------


def analyze_program(
    program: PseudoProgram | str,
    *,
    shared: tuple[str, ...] = (),
    name: str = "program",
    threads: int = 2,
    thread_param: str = "i",
    params: Mapping[str, Any] | None = None,
) -> ProgramReport:
    """Statically analyze ``threads`` concurrent copies of a program.

    ``program`` is either a parsed :class:`PseudoProgram` or pseudocode
    text (then ``shared`` lists the bare shared names, as for
    :func:`~repro.programs.pseudocode.parse_program`).  ``thread_param``
    is the parameter that identifies a thread (distinct per thread);
    ``params`` supplies any other parameters index expressions may use
    (e.g. ``{"n": 3}``).
    """
    if isinstance(program, str):
        program = parse_program(program, shared=shared)
    accesses = collect_accesses(program)
    races: list[PotentialRace] = []
    protected: list[PotentialRace] = []
    for a, b in competing_pairs(
        program,
        threads=threads,
        thread_param=thread_param,
        params=params,
        _accesses=accesses,
    ):
        if a.labeled and b.labeled:
            continue  # competing but labeled: exactly what §3.4 allows
        unlabeled = [s for s in (a, b) if not s.labeled]
        reason = (
            "unlabeled "
            + " and ".join(
                f"{s.kind} at line {s.line}" for s in unlabeled
            )
            + " can compete across threads"
        )
        race = PotentialRace(a, b, reason)
        if a.in_cs and b.in_cs:
            protected.append(race)
        else:
            races.append(race)
    return ProgramReport(name, threads, accesses, tuple(races), tuple(protected))


def competing_pairs(
    program: PseudoProgram | str,
    *,
    shared: tuple[str, ...] = (),
    threads: int = 2,
    thread_param: str = "i",
    params: Mapping[str, Any] | None = None,
    _accesses: tuple[SharedAccess, ...] | None = None,
) -> tuple[tuple[SharedAccess, SharedAccess], ...]:
    """Every access pair that may touch the same location from distinct
    threads with at least one write — *competing* in the paper's sense,
    before any labeling or critical-section classification.

    This is the pair universe both :func:`analyze_program` and the
    certificate issuer/verifier (:mod:`repro.staticcheck.drf`) reason
    over, so the two can never disagree about which pairs exist.
    """
    if isinstance(program, str):
        program = parse_program(program, shared=shared)
    env = dict(params or {})
    env.setdefault("n", threads)
    opaque = frozenset(_local_names(program.body, program.shared_names))
    accesses = collect_accesses(program) if _accesses is None else _accesses
    pairs: list[tuple[SharedAccess, SharedAccess]] = []
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if a.base != b.base:
                continue
            if a.kind != "write" and b.kind != "write":
                continue
            if not _indices_may_collide(
                a.index, b.index, thread_param, threads, env, opaque
            ):
                continue
            pairs.append((a, b))
    return tuple(pairs)


# -- synchronization inference ---------------------------------------------------


@dataclass(frozen=True)
class LabelPatch:
    """The minimal relabeling that makes a program properly labeled.

    ``lines`` are the 1-based source lines whose statement must gain a
    ``sync`` suffix; ``accesses`` are the corresponding access sites.  The
    set is *forced*, hence minimal: a potential race is permitted only
    when both sides are labeled (or both are inside critical sections), so
    every unlabeled participant of every reported race must be labeled —
    there is no smaller choice, and labeling never creates new races.
    """

    lines: tuple[int, ...]
    accesses: tuple[SharedAccess, ...]

    @property
    def empty(self) -> bool:
        return not self.lines

    def apply(self, text: str) -> str:
        """``text`` with ``sync`` appended to each patched statement.

        The suffix is inserted before any trailing comment, so the patched
        program re-parses with the same line numbers.
        """
        out = text.splitlines()
        for line in self.lines:
            raw = out[line - 1]
            code, sep, comment = raw.partition("#")
            stripped = code.rstrip()
            pad = code[len(stripped):]
            out[line - 1] = f"{stripped} sync{pad}{sep}{comment}"
        return "\n".join(out) + ("\n" if text.endswith("\n") else "")

    def render(self) -> str:
        if self.empty:
            return "already properly labeled: no relabeling needed"
        lines = [f"add `sync` to {len(self.lines)} statement(s):"]
        lines += [f"  {a.render()}" for a in self.accesses]
        return "\n".join(lines)


def infer_labels(
    program: PseudoProgram | str,
    *,
    shared: tuple[str, ...] = (),
    name: str = "program",
    threads: int = 2,
    thread_param: str = "i",
    params: Mapping[str, Any] | None = None,
) -> LabelPatch:
    """The minimal extra ``sync`` labels that silence every reported race.

    Arguments mirror :func:`analyze_program`.  The patch is idempotent:
    applying it and re-inferring yields the empty patch (pinned by the CI
    ``staticcheck-smoke`` job over the mutex algorithm suite).
    """
    report = analyze_program(
        program,
        shared=shared,
        name=name,
        threads=threads,
        thread_param=thread_param,
        params=params,
    )
    sites: dict[int, SharedAccess] = {}
    for race in report.races:
        for side in (race.first, race.second):
            if not side.labeled:
                sites.setdefault(side.line, side)
    lines = tuple(sorted(sites))
    return LabelPatch(lines, tuple(sites[line] for line in lines))


# -- cross-validation against the dynamic analysis ------------------------------


def _location_base(location: str) -> str:
    return location.split("[", 1)[0]


def report_covers_races(
    report: ProgramReport, races: Iterable[tuple[Operation, Operation]]
) -> bool:
    """Does the static report account for every dynamic race?

    ``races`` is the output of
    :func:`repro.analysis.labeling.find_races` on a history generated by
    running the analyzed program.  Each racing pair must touch a location
    whose base the static analysis flagged — either as a potential race
    or as a cs-protected pair (the static analysis trusts the
    ``cs_enter``/``cs_exit`` markers; the dynamic one does not).
    """
    covered = report.race_bases | report.cs_protected_bases
    return all(
        _location_base(first.location) in covered for first, _ in races
    )
