"""Static race and proper-labeling analysis of pseudocode programs (§3.4).

The dynamic checks in :mod:`repro.analysis.labeling` need an executed
history; this module inspects the program *text* — the parsed AST from
:mod:`repro.programs.pseudocode` — and reports which shared locations can
race when ``threads`` copies of the program run concurrently.

The analysis is deliberately conservative, mirroring the paper's notion of
*competing* operations:

* every shared access in the AST is collected with its label (``sync``)
  and whether it sits between ``cs_enter``/``cs_exit`` markers;
* two accesses from distinct threads form a *potential race* when they
  touch locations that may alias, at least one is a write, and at least
  one is unlabeled — exactly the pairs that §3.4's proper-labeling
  discipline forbids;
* pairs where **both** sides lie inside declared critical sections are
  reported separately (:attr:`ProgramReport.cs_protected`): the markers
  assert mutual exclusion, but that assertion is only as good as the
  labeled synchronization implementing the section, which a static
  analysis of one thread body cannot verify.

Aliasing of indexed locations (``flag[1 - i]`` vs ``flag[i]``) is decided
by evaluating the index expressions over all assignments of distinct
thread ids to the thread parameter; any expression mentioning other
variables (loop counters, locals) is conservatively assumed to alias.

Soundness direction: the analyzer may over-report (an access guarded by
data flow it cannot see), but on the repository's algorithm suite every
potential race it reports is confirmed by the dynamic
:func:`repro.analysis.labeling.find_races` — see
``tests/staticcheck/test_progcheck.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.core.operation import Operation
from repro.programs.pseudocode import (
    PseudoProgram,
    _Assign,
    _Await,
    _For,
    _If,
    _Node,
    _SharedRead,
    _Simple,
    _While,
    parse_program,
)

__all__ = [
    "SharedAccess",
    "PotentialRace",
    "ProgramReport",
    "analyze_program",
    "report_covers_races",
]


@dataclass(frozen=True)
class SharedAccess:
    """One static shared-memory access site in a program body."""

    line: int
    kind: str  # "read" | "write"
    base: str  # location name without the index, e.g. "number"
    index: str | None  # raw index expression text, e.g. "1 - i"
    labeled: bool  # carries the ``sync`` suffix
    in_cs: bool  # between cs_enter and cs_exit markers

    @property
    def location(self) -> str:
        return self.base if self.index is None else f"{self.base}[{self.index}]"

    def render(self) -> str:
        marks = [self.kind]
        if self.labeled:
            marks.append("sync")
        if self.in_cs:
            marks.append("cs")
        return f"line {self.line}: {self.location} ({', '.join(marks)})"


@dataclass(frozen=True)
class PotentialRace:
    """A pair of access sites that can compete without both being labeled."""

    first: SharedAccess
    second: SharedAccess
    reason: str

    @property
    def base(self) -> str:
        return self.first.base

    def render(self) -> str:
        return (
            f"{self.base}: {self.first.render()} vs {self.second.render()} "
            f"— {self.reason}"
        )


@dataclass(frozen=True)
class ProgramReport:
    """Everything :func:`analyze_program` learned about one program."""

    name: str
    threads: int
    accesses: tuple[SharedAccess, ...]
    races: tuple[PotentialRace, ...]
    cs_protected: tuple[PotentialRace, ...]

    @property
    def properly_labeled(self) -> bool:
        """No potential race outside declared critical sections (§3.4)."""
        return not self.races

    @property
    def race_bases(self) -> frozenset[str]:
        return frozenset(race.base for race in self.races)

    @property
    def cs_protected_bases(self) -> frozenset[str]:
        return frozenset(race.base for race in self.cs_protected)

    def render(self) -> str:
        lines = [
            f"{self.name}: {len(self.accesses)} shared access sites, "
            f"{self.threads} threads"
        ]
        if self.properly_labeled:
            lines.append("  properly labeled: no potential races outside CS")
        for race in self.races:
            lines.append(f"  RACE {race.render()}")
        for race in self.cs_protected:
            lines.append(f"  cs-protected {race.render()}")
        return "\n".join(lines)


# -- access collection ----------------------------------------------------------


def _split_location(text: str) -> tuple[str, str | None]:
    text = text.strip()
    if "[" in text and text.endswith("]"):
        base, index = text.split("[", 1)
        return base.strip(), index[:-1].strip()
    return text, None


def _collect(
    body: list[_Node], shared_names: frozenset[str], depth: int
) -> Iterator[tuple[SharedAccess, int]]:
    """Pre-order walk yielding (access, cs-depth-after-node)."""
    for node in body:
        if isinstance(node, _Simple):
            if node.kind == "cs_enter":
                depth += 1
            elif node.kind == "cs_exit":
                depth = max(0, depth - 1)
        elif isinstance(node, _Assign):
            base = node.target.split("[", 1)[0].strip()
            if node.shared or base in shared_names:
                base, index = _split_location(node.target)
                yield (
                    SharedAccess(node.line, "write", base, index, node.sync, depth > 0),
                    depth,
                )
        elif isinstance(node, _SharedRead):
            base, index = _split_location(node.loc)
            yield (
                SharedAccess(node.line, "read", base, index, node.sync, depth > 0),
                depth,
            )
        elif isinstance(node, _Await):
            base, index = _split_location(node.loc)
            yield (
                SharedAccess(node.line, "read", base, index, node.sync, depth > 0),
                depth,
            )
        elif isinstance(node, _If):
            for _, arm_body in node.arms:
                for item in _collect(arm_body, shared_names, depth):
                    yield item
                    depth = item[1]
        elif isinstance(node, (_While, _For)):
            for item in _collect(node.body, shared_names, depth):
                yield item
                depth = item[1]


def collect_accesses(program: PseudoProgram) -> tuple[SharedAccess, ...]:
    """All static shared-access sites of a program, in program order."""
    return tuple(
        access for access, _ in _collect(program.body, program.shared_names, 0)
    )


# -- aliasing -------------------------------------------------------------------


def _eval_index(
    expr: str, env: Mapping[str, Any]
) -> int | None:
    """Evaluate an index expression, or ``None`` when it is not closed
    over the thread parameters (loop variables, locals → conservative)."""
    try:
        value = eval(expr, {"__builtins__": {}}, dict(env))
    except Exception:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def _indices_may_collide(
    a: str | None,
    b: str | None,
    thread_param: str,
    threads: int,
    params: Mapping[str, Any],
) -> bool:
    """May ``base[a]`` on one thread and ``base[b]`` on a *different*
    thread name the same location?"""
    if a is None and b is None:
        return True
    if a is None or b is None:
        # "turn" and "turn[0]" are distinct location strings in the runner.
        return False
    for ta in range(threads):
        for tb in range(threads):
            if ta == tb:
                continue
            va = _eval_index(a, {**params, thread_param: ta})
            vb = _eval_index(b, {**params, thread_param: tb})
            if va is None or vb is None:
                return True  # unknown index → conservative alias
            if va == vb:
                return True
    return False


# -- race detection -------------------------------------------------------------


def analyze_program(
    program: PseudoProgram | str,
    *,
    shared: tuple[str, ...] = (),
    name: str = "program",
    threads: int = 2,
    thread_param: str = "i",
    params: Mapping[str, Any] | None = None,
) -> ProgramReport:
    """Statically analyze ``threads`` concurrent copies of a program.

    ``program`` is either a parsed :class:`PseudoProgram` or pseudocode
    text (then ``shared`` lists the bare shared names, as for
    :func:`~repro.programs.pseudocode.parse_program`).  ``thread_param``
    is the parameter that identifies a thread (distinct per thread);
    ``params`` supplies any other parameters index expressions may use
    (e.g. ``{"n": 3}``).
    """
    if isinstance(program, str):
        program = parse_program(program, shared=shared)
    env = dict(params or {})
    env.setdefault("n", threads)
    accesses = collect_accesses(program)
    races: list[PotentialRace] = []
    protected: list[PotentialRace] = []
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if a.base != b.base:
                continue
            if a.kind != "write" and b.kind != "write":
                continue
            if not _indices_may_collide(
                a.index, b.index, thread_param, threads, env
            ):
                continue
            if a.labeled and b.labeled:
                continue  # competing but labeled: exactly what §3.4 allows
            unlabeled = [s for s in (a, b) if not s.labeled]
            reason = (
                "unlabeled "
                + " and ".join(
                    f"{s.kind} at line {s.line}" for s in unlabeled
                )
                + " can compete across threads"
            )
            race = PotentialRace(a, b, reason)
            if a.in_cs and b.in_cs:
                protected.append(race)
            else:
                races.append(race)
    return ProgramReport(name, threads, accesses, tuple(races), tuple(protected))


# -- cross-validation against the dynamic analysis ------------------------------


def _location_base(location: str) -> str:
    return location.split("[", 1)[0]


def report_covers_races(
    report: ProgramReport, races: Iterable[tuple[Operation, Operation]]
) -> bool:
    """Does the static report account for every dynamic race?

    ``races`` is the output of
    :func:`repro.analysis.labeling.find_races` on a history generated by
    running the analyzed program.  Each racing pair must touch a location
    whose base the static analysis flagged — either as a potential race
    or as a cs-protected pair (the static analysis trusts the
    ``cs_enter``/``cs_exit`` markers; the dynamic one does not).
    """
    covered = report.race_bases | report.cs_protected_bases
    return all(
        _location_base(first.location) in covered for first, _ in races
    )
