"""Control-flow graphs for pseudocode programs, with label dataflow.

:mod:`repro.staticcheck.progcheck` originally collected shared accesses by
a flat pre-order AST walk with a critical-section *depth counter* — which
cannot see that a ``cs_enter`` inside one branch arm does not protect the
code after the join, and happily collects accesses that sit after a
``break``.  This module builds a real control-flow graph from the
:mod:`repro.programs.pseudocode` AST and runs three *must* dataflow
analyses over it:

* :func:`must_in_cs` — is a node inside a critical section on **every**
  path from entry?  (The sound replacement for the depth counter.)
* :func:`acquires_before` / :func:`sync_before` — does every path from
  entry to the node pass a labeled read (an *acquire*, in the RC machine's
  sense) / any labeled access first?
* :func:`releases_after` — does every path from the node to exit pass a
  labeled write (a *release*) afterwards?

The acquire/release vocabulary mirrors :mod:`repro.machines.rc_machine`:
labeled reads synchronize-with the labeled writes they read, so a critical
section whose entry is dominated by labeled synchronization and whose exit
is post-dominated by a labeled write is bracketed the way the paper's
properly-labeled programs are (Figure 6's ``choosing[i] := 1 sync`` …
``number[i] := 0 sync``).  :func:`cs_bracketed` packages that check for
the certifier.  Entry protocols usually *spin* on a conditional acquire
(``await choosing[j] == 0 sync`` under ``if j != i``), which a static
must-analysis cannot see executing, so the enter side accepts any
dominating labeled access while the exit side demands a true release.

Loops are modeled with back edges (``await`` spins on itself), ``break``
and ``continue`` jump to the loop exit and header, and statements that
follow them in the same block are simply never connected — unreachable
accesses do not exist in the CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.errors import ProgramError
from repro.programs.pseudocode import (
    PseudoProgram,
    _Assign,
    _Await,
    _For,
    _If,
    _Node,
    _SharedRead,
    _Simple,
    _While,
    parse_program,
)

__all__ = [
    "CfgNode",
    "Cfg",
    "build_cfg",
    "must_in_cs",
    "acquires_before",
    "releases_after",
    "sync_before",
    "cs_bracketed",
]


@dataclass(frozen=True)
class CfgNode:
    """One statement (or structural point) in the control-flow graph.

    ``kind`` is one of ``entry``, ``exit``, ``write``, ``read``, ``await``,
    ``local``, ``branch``, ``cs-enter``, ``cs-exit``, ``join``.  Access
    nodes (``write`` / ``read`` / ``await``) carry the location split into
    ``base`` and raw ``index`` expression text plus their ``sync`` label.
    """

    id: int
    kind: str
    line: int = 0
    base: str | None = None
    index: str | None = None
    labeled: bool = False
    text: str = ""

    @property
    def is_access(self) -> bool:
        return self.kind in ("write", "read", "await")

    @property
    def is_write(self) -> bool:
        return self.kind == "write"

    @property
    def is_read(self) -> bool:
        return self.kind in ("read", "await")

    def render(self) -> str:
        loc = ""
        if self.base is not None:
            loc = self.base if self.index is None else f"{self.base}[{self.index}]"
            loc = f" {loc}"
        mark = " sync" if self.labeled else ""
        return f"[{self.id}] {self.kind}{loc}{mark} (line {self.line})"


@dataclass
class Cfg:
    """A program's control-flow graph; node 0 is entry, node 1 is exit."""

    nodes: tuple[CfgNode, ...]
    succ: dict[int, tuple[int, ...]] = field(default_factory=dict)

    ENTRY = 0
    EXIT = 1

    @cached_property
    def pred(self) -> dict[int, tuple[int, ...]]:
        back: dict[int, list[int]] = {n.id: [] for n in self.nodes}
        for src, dsts in self.succ.items():
            for dst in dsts:
                back[dst].append(src)
        return {k: tuple(v) for k, v in back.items()}

    def accesses(self) -> tuple[CfgNode, ...]:
        """All shared-access nodes, in program (= creation) order."""
        return tuple(n for n in self.nodes if n.is_access)

    def render(self) -> str:
        lines = []
        for node in self.nodes:
            dsts = ", ".join(str(d) for d in self.succ.get(node.id, ()))
            lines.append(f"{node.render()} -> [{dsts}]")
        return "\n".join(lines)


def _split_location(text: str) -> tuple[str, str | None]:
    text = text.strip()
    if "[" in text and text.endswith("]"):
        base, index = text.split("[", 1)
        return base.strip(), index[:-1].strip()
    return text, None


class _Builder:
    def __init__(self) -> None:
        entry = CfgNode(0, "entry")
        exit_ = CfgNode(1, "exit")
        self.nodes: list[CfgNode] = [entry, exit_]
        self.succ: dict[int, set[int]] = {0: set(), 1: set()}
        # (header id, exit-collector list) per enclosing loop.
        self.loops: list[tuple[int, list[int]]] = []

    def node(self, kind: str, line: int = 0, **kw: object) -> int:
        n = CfgNode(len(self.nodes), kind, line, **kw)  # type: ignore[arg-type]
        self.nodes.append(n)
        self.succ[n.id] = set()
        return n.id

    def edge(self, src: int | None, dst: int) -> None:
        if src is not None:
            self.succ[src].add(dst)

    def finish(self) -> Cfg:
        return Cfg(
            tuple(self.nodes),
            {k: tuple(sorted(v)) for k, v in self.succ.items()},
        )


def build_cfg(
    program: PseudoProgram | str, *, shared: tuple[str, ...] = ()
) -> Cfg:
    """The control-flow graph of a program (text or parsed form)."""
    if isinstance(program, str):
        program = parse_program(program, shared=shared)
    b = _Builder()
    tail = _build_block(b, program.body, Cfg.ENTRY, program.shared_names)
    b.edge(tail, Cfg.EXIT)
    return b.finish()


def _build_block(
    b: _Builder,
    body: list[_Node],
    current: int | None,
    shared_names: frozenset[str],
) -> int | None:
    """Wire ``body`` starting from ``current``; return the open tail node.

    ``None`` means the flow never falls out of this block (it ended in
    ``break``/``continue`` on every path) — later statements in the parent
    block stay unconnected, i.e. unreachable.
    """
    for stmt in body:
        if current is None:
            break  # everything after an unconditional jump is unreachable
        current = _build_stmt(b, stmt, current, shared_names)
    return current


def _build_stmt(
    b: _Builder,
    stmt: _Node,
    current: int,
    shared_names: frozenset[str],
) -> int | None:
    match stmt:
        case _Simple(kind="pass"):
            return current
        case _Simple(kind="cs_enter"):
            nid = b.node("cs-enter", stmt.line)
            b.edge(current, nid)
            return nid
        case _Simple(kind="cs_exit"):
            nid = b.node("cs-exit", stmt.line)
            b.edge(current, nid)
            return nid
        case _Simple(kind="break"):
            if not b.loops:
                raise ProgramError(f"line {stmt.line}: break outside a loop")
            b.loops[-1][1].append(current)
            return None
        case _Simple(kind="continue"):
            if not b.loops:
                raise ProgramError(f"line {stmt.line}: continue outside a loop")
            b.edge(current, b.loops[-1][0])
            return None
        case _Assign(target=target, sync=sync, shared=is_shared):
            base = target.split("[", 1)[0].strip()
            if is_shared or base in shared_names:
                base, index = _split_location(target)
                nid = b.node(
                    "write", stmt.line, base=base, index=index, labeled=sync
                )
            else:
                nid = b.node("local", stmt.line, text=target)
            b.edge(current, nid)
            return nid
        case _SharedRead(loc=loc, sync=sync):
            base, index = _split_location(loc)
            nid = b.node("read", stmt.line, base=base, index=index, labeled=sync)
            b.edge(current, nid)
            return nid
        case _Await(loc=loc, sync=sync):
            base, index = _split_location(loc)
            nid = b.node("await", stmt.line, base=base, index=index, labeled=sync)
            b.edge(current, nid)
            b.edge(nid, nid)  # the spin re-reads until the value matches
            return nid
        case _If(arms=arms):
            branch = b.node("branch", stmt.line, text=arms[0][0] or "")
            b.edge(current, branch)
            join = b.node("join", stmt.line)
            has_else = any(cond is None for cond, _ in arms)
            for cond, arm_body in arms:
                tail = _build_block(b, arm_body, branch, shared_names)
                b.edge(tail, join)
            if not has_else:
                b.edge(branch, join)  # fall-through when no arm matches
            return join
        case _While(cond=cond, body=loop_body):
            header = b.node("branch", stmt.line, text=cond)
            b.edge(current, header)
            exits: list[int] = []
            b.loops.append((header, exits))
            tail = _build_block(b, loop_body, header, shared_names)
            b.edge(tail, header)
            b.loops.pop()
            after = b.node("join", stmt.line)
            if cond.strip() != "true":
                b.edge(header, after)  # the condition can be false on entry
            for src in exits:
                b.edge(src, after)
            return after
        case _For(var=var, body=loop_body):
            header = b.node("branch", stmt.line, text=f"for {var}")
            b.edge(current, header)
            exits = []
            b.loops.append((header, exits))
            tail = _build_block(b, loop_body, header, shared_names)
            b.edge(tail, header)
            b.loops.pop()
            after = b.node("join", stmt.line)
            b.edge(header, after)  # a range can be empty
            for src in exits:
                b.edge(src, after)
            return after
        case _:
            raise ProgramError(f"line {stmt.line}: unknown statement {stmt!r}")


# -- dataflow -------------------------------------------------------------------
#
# All four analyses are *must* (intersection) problems over the boolean
# lattice, solved by chaotic iteration to a fixpoint: start every non-root
# node at the optimistic top (True), propagate the meet (AND) over the
# relevant neighbors, and shrink monotonically.  The CFGs are statement-
# sized, so worklist refinement is unnecessary.


def _reachable(cfg: Cfg) -> set[int]:
    seen = {Cfg.ENTRY}
    frontier = [Cfg.ENTRY]
    while frontier:
        node = frontier.pop()
        for nxt in cfg.succ.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _forward_must(
    cfg: Cfg, gen: set[int], kill: set[int]
) -> dict[int, bool]:
    """In-state per node: do **all** entry paths pass a ``gen`` node (with
    no later ``kill`` node) before reaching it?"""
    reach = _reachable(cfg)
    state = {n.id: True for n in cfg.nodes}  # optimistic top

    def out(node: int) -> bool:
        if node in gen:
            return True
        if node in kill:
            return False
        return state[node]

    state[Cfg.ENTRY] = False
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.id == Cfg.ENTRY or node.id not in reach:
                continue
            preds = [p for p in cfg.pred.get(node.id, ()) if p in reach]
            new = all(out(p) for p in preds) if preds else False
            if new != state[node.id]:
                state[node.id] = new
                changed = True
    return state


def _backward_must(cfg: Cfg, gen: set[int]) -> dict[int, bool]:
    """Out-state per node: do **all** paths from it to exit pass a ``gen``
    node afterwards?"""
    reach = _reachable(cfg)
    state = {n.id: True for n in cfg.nodes}

    def into(node: int) -> bool:
        return True if node in gen else state[node]

    state[Cfg.EXIT] = False
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.id == Cfg.EXIT or node.id not in reach:
                continue
            succs = cfg.succ.get(node.id, ())
            new = all(into(s) for s in succs) if succs else False
            if new != state[node.id]:
                state[node.id] = new
                changed = True
    return state


def must_in_cs(cfg: Cfg) -> dict[int, bool]:
    """Node id → is the node inside a critical section on every path?

    A node is *in* a critical section when every path from entry to it
    passes a ``cs_enter`` with no intervening ``cs_exit``.  Accesses that
    are only sometimes protected (a ``cs_enter`` in one branch arm) are
    correctly reported unprotected, unlike the old depth counter.
    """
    gen = {n.id for n in cfg.nodes if n.kind == "cs-enter"}
    kill = {n.id for n in cfg.nodes if n.kind == "cs-exit"}
    return _forward_must(cfg, gen, kill)


def acquires_before(cfg: Cfg) -> set[int]:
    """Ids of nodes dominated by a labeled read (an RC *acquire*)."""
    gen = {n.id for n in cfg.nodes if n.is_read and n.labeled}
    state = _forward_must(cfg, gen, set())
    return {nid for nid, ok in state.items() if ok}


def sync_before(cfg: Cfg) -> set[int]:
    """Ids of nodes dominated by *any* labeled access."""
    gen = {n.id for n in cfg.nodes if n.is_access and n.labeled}
    state = _forward_must(cfg, gen, set())
    return {nid for nid, ok in state.items() if ok}


def releases_after(cfg: Cfg) -> set[int]:
    """Ids of nodes post-dominated by a labeled write (an RC *release*)."""
    gen = {n.id for n in cfg.nodes if n.is_write and n.labeled}
    state = _backward_must(cfg, gen)
    return {nid for nid, ok in state.items() if ok}


def cs_bracketed(cfg: Cfg) -> bool:
    """Is every critical-section region bracketed by labeled sync?

    Every ``cs_enter`` must be dominated by a labeled access (the entry
    handshake) and every ``cs_exit`` post-dominated by a labeled write
    (the release that publishes the exit).  Programs without critical
    sections are trivially bracketed.  This is what lets the certifier
    trust the markers: the mutual exclusion they assert is implemented by
    labeled operations the memory model orders.
    """
    enters = [n.id for n in cfg.nodes if n.kind == "cs-enter"]
    exits = [n.id for n in cfg.nodes if n.kind == "cs-exit"]
    if not enters and not exits:
        return True
    before = sync_before(cfg)
    after = releases_after(cfg)
    return all(e in before for e in enters) and all(x in after for x in exits)
