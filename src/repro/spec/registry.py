"""The named memory models of the paper, as specifications (Section 3).

Each entry instantiates :class:`~repro.spec.model_spec.MemoryModelSpec`
with the parameter choices the paper gives for that memory, plus two
"new" memories obtained by recombining parameters as Section 7 suggests.
"""

from __future__ import annotations

from repro.core.errors import SpecError
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import (
    CAUSAL,
    LabeledDiscipline,
    MutualConsistency,
    OperationSet,
    PO,
    PO_LOC,
    PO_SYNC,
    PPO,
    SEMI_CAUSAL,
)

__all__ = [
    "SC_SPEC",
    "TSO_SPEC",
    "PC_SPEC",
    "PRAM_SPEC",
    "CAUSAL_SPEC",
    "COHERENCE_SPEC",
    "RC_SC_SPEC",
    "RC_PC_SPEC",
    "HYBRID_SPEC",
    "SLOW_SPEC",
    "COHERENT_CAUSAL_SPEC",
    "COHERENT_PRAM_SPEC",
    "ALL_SPECS",
    "get_spec",
    "spec_names",
]

SC_SPEC = MemoryModelSpec(
    name="SC",
    operation_set=OperationSet.ALL_REMOTE,
    mutual_consistency=MutualConsistency.IDENTICAL,
    ordering=PO,
    description=(
        "Sequential consistency (Lamport 1979): one legal total order over "
        "all operations, respecting each processor's program order; every "
        "processor view is that common order."
    ),
)

TSO_SPEC = MemoryModelSpec(
    name="TSO",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.TOTAL_WRITE_ORDER,
    ordering=PPO,
    description=(
        "Total store ordering (SPARC; Sindhu et al. 1991): views contain "
        "own operations plus all remote writes, all views order all writes "
        "identically, and the partial program order (write→read bypass "
        "allowed) is respected (paper Section 3.2)."
    ),
)

PC_SPEC = MemoryModelSpec(
    name="PC",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=SEMI_CAUSAL,
    description=(
        "Processor consistency as defined by Gharachorloo et al. for DASH: "
        "coherence (per-location agreed write order) plus the semi-causality "
        "order (ppo ∪ rwb ∪ rrb)+ within each view (paper Section 3.3)."
    ),
)

PRAM_SPEC = MemoryModelSpec(
    name="PRAM",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=PO,
    description=(
        "Pipelined RAM (Lipton & Sandberg 1988): replicated memories with "
        "reliable FIFO update channels; views respect only program order "
        "and need not agree with each other (paper Section 3.5)."
    ),
)

CAUSAL_SPEC = MemoryModelSpec(
    name="Causal",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=CAUSAL,
    description=(
        "Causal memory (Ahamad et al. 1991): like PRAM but views must "
        "respect the causal order (po ∪ wb)+ (paper Section 3.5)."
    ),
)

COHERENCE_SPEC = MemoryModelSpec(
    name="Coherence",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PO_LOC,
    description=(
        "Plain cache coherence (per-location sequential consistency): "
        "per-location agreement on write order, with program order enforced "
        "only between same-location operations — the mutual-consistency "
        "example of Section 2, as a memory in its own right.  Incomparable "
        "with PRAM: coherence allows message-passing staleness that PRAM "
        "forbids, and forbids the per-location disagreement PRAM allows."
    ),
)

RC_SC_SPEC = MemoryModelSpec(
    name="RC_sc",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PPO,
    labeled_discipline=LabeledDiscipline.SC,
    bracketing=True,
    ordering_own_view_only=True,
    description=(
        "Release consistency with sequentially consistent labeled "
        "operations (DASH RC_sc): coherence for all writes, ppo locally, "
        "acquire/release bracketing for ordinary operations, and the "
        "labeled subsequences of all views drawn from one SC order "
        "(paper Section 3.4)."
    ),
)

RC_PC_SPEC = MemoryModelSpec(
    name="RC_pc",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PPO,
    labeled_discipline=LabeledDiscipline.PC,
    bracketing=True,
    ordering_own_view_only=True,
    description=(
        "Release consistency with processor consistent labeled operations "
        "(DASH RC_pc): as RC_sc but labeled subsequences need only satisfy "
        "PC (paper Section 3.4)."
    ),
)

SLOW_SPEC = MemoryModelSpec(
    name="Slow",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=PO_LOC,
    description=(
        "Slow memory (Hutto & Ahamad 1990, the same group's weakest "
        "proposal): a processor must eventually see another's writes to a "
        "given location in the order they were issued, but locations are "
        "completely independent and there is no mutual consistency — the "
        "bottom of the lattice, strictly below PRAM and below coherence."
    ),
)

HYBRID_SPEC = MemoryModelSpec(
    name="Hybrid",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.LABELED_TOTAL_ORDER,
    ordering=PO_SYNC,
    description=(
        "Hybrid consistency (Attiya & Friedman 1992), the paper's cited "
        "example of distinguishing strong and weak operations: all views "
        "agree on one total order of the strong (labeled) operations, "
        "extending program order; weak operations are ordered only "
        "relative to the same processor's strong operations.  With no "
        "labels it is weaker than PRAM; labeling everything recovers a "
        "strongly ordered memory."
    ),
)

# -- Section 7: new memories by recombining parameters ------------------------

COHERENT_CAUSAL_SPEC = MemoryModelSpec(
    name="CoherentCausal",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=CAUSAL,
    description=(
        "A new memory suggested by Section 7: causal memory strengthened "
        "with the coherence mutual-consistency requirement."
    ),
)

COHERENT_PRAM_SPEC = MemoryModelSpec(
    name="CoherentPRAM",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PO,
    description=(
        "A new memory from the same recipe: PRAM strengthened with "
        "coherence (close to Goodman's original processor consistency)."
    ),
)

ALL_SPECS: tuple[MemoryModelSpec, ...] = (
    SC_SPEC,
    TSO_SPEC,
    PC_SPEC,
    PRAM_SPEC,
    CAUSAL_SPEC,
    COHERENCE_SPEC,
    RC_SC_SPEC,
    RC_PC_SPEC,
    HYBRID_SPEC,
    SLOW_SPEC,
    COHERENT_CAUSAL_SPEC,
    COHERENT_PRAM_SPEC,
)

_BY_NAME = {spec.name.lower(): spec for spec in ALL_SPECS}


def get_spec(name: str) -> MemoryModelSpec:
    """Look a specification up by (case-insensitive) name.

    Raises
    ------
    SpecError
        If no model of that name is registered.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(s.name for s in ALL_SPECS))
        raise SpecError(f"unknown memory model {name!r}; known: {known}") from None


def spec_names() -> tuple[str, ...]:
    """Names of all registered model specifications."""
    return tuple(spec.name for spec in ALL_SPECS)
