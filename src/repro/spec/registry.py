"""The named memory models of the paper, as specifications (Section 3).

Each entry instantiates :class:`~repro.spec.model_spec.MemoryModelSpec`
with the parameter choices the paper gives for that memory, plus two
"new" memories obtained by recombining parameters as Section 7 suggests.
"""

from __future__ import annotations

import difflib

from repro.core.errors import SpecError
from repro.spec.model_spec import MemoryModelSpec
from repro.spec.parameters import (
    CAUSAL,
    LabeledDiscipline,
    MutualConsistency,
    OperationSet,
    PO,
    PO_LOC,
    PO_SYNC,
    PPO,
    SEMI_CAUSAL,
    SESSION_COMPONENTS,
    partition_rule,
    session_rule,
)

__all__ = [
    "SC_SPEC",
    "TSO_SPEC",
    "PC_SPEC",
    "PRAM_SPEC",
    "CAUSAL_SPEC",
    "COHERENCE_SPEC",
    "RC_SC_SPEC",
    "RC_PC_SPEC",
    "HYBRID_SPEC",
    "SLOW_SPEC",
    "COHERENT_CAUSAL_SPEC",
    "COHERENT_PRAM_SPEC",
    "RYW_SPEC",
    "MR_SPEC",
    "MW_SPEC",
    "WFR_SPEC",
    "SESSION_CAUSAL_SPEC",
    "PARTITION2_SPEC",
    "PARTITION3_SPEC",
    "ALL_SPECS",
    "get_spec",
    "spec_names",
    "suggest_names",
]

SC_SPEC = MemoryModelSpec(
    name="SC",
    operation_set=OperationSet.ALL_REMOTE,
    mutual_consistency=MutualConsistency.IDENTICAL,
    ordering=PO,
    description=(
        "Sequential consistency (Lamport 1979): one legal total order over "
        "all operations, respecting each processor's program order; every "
        "processor view is that common order."
    ),
)

TSO_SPEC = MemoryModelSpec(
    name="TSO",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.TOTAL_WRITE_ORDER,
    ordering=PPO,
    description=(
        "Total store ordering (SPARC; Sindhu et al. 1991): views contain "
        "own operations plus all remote writes, all views order all writes "
        "identically, and the partial program order (write→read bypass "
        "allowed) is respected (paper Section 3.2)."
    ),
)

PC_SPEC = MemoryModelSpec(
    name="PC",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=SEMI_CAUSAL,
    description=(
        "Processor consistency as defined by Gharachorloo et al. for DASH: "
        "coherence (per-location agreed write order) plus the semi-causality "
        "order (ppo ∪ rwb ∪ rrb)+ within each view (paper Section 3.3)."
    ),
)

PRAM_SPEC = MemoryModelSpec(
    name="PRAM",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=PO,
    description=(
        "Pipelined RAM (Lipton & Sandberg 1988): replicated memories with "
        "reliable FIFO update channels; views respect only program order "
        "and need not agree with each other (paper Section 3.5)."
    ),
)

CAUSAL_SPEC = MemoryModelSpec(
    name="Causal",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=CAUSAL,
    description=(
        "Causal memory (Ahamad et al. 1991): like PRAM but views must "
        "respect the causal order (po ∪ wb)+ (paper Section 3.5)."
    ),
)

COHERENCE_SPEC = MemoryModelSpec(
    name="Coherence",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PO_LOC,
    description=(
        "Plain cache coherence (per-location sequential consistency): "
        "per-location agreement on write order, with program order enforced "
        "only between same-location operations — the mutual-consistency "
        "example of Section 2, as a memory in its own right.  Incomparable "
        "with PRAM: coherence allows message-passing staleness that PRAM "
        "forbids, and forbids the per-location disagreement PRAM allows."
    ),
)

RC_SC_SPEC = MemoryModelSpec(
    name="RC_sc",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PPO,
    labeled_discipline=LabeledDiscipline.SC,
    bracketing=True,
    ordering_own_view_only=True,
    description=(
        "Release consistency with sequentially consistent labeled "
        "operations (DASH RC_sc): coherence for all writes, ppo locally, "
        "acquire/release bracketing for ordinary operations, and the "
        "labeled subsequences of all views drawn from one SC order "
        "(paper Section 3.4)."
    ),
)

RC_PC_SPEC = MemoryModelSpec(
    name="RC_pc",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PPO,
    labeled_discipline=LabeledDiscipline.PC,
    bracketing=True,
    ordering_own_view_only=True,
    description=(
        "Release consistency with processor consistent labeled operations "
        "(DASH RC_pc): as RC_sc but labeled subsequences need only satisfy "
        "PC (paper Section 3.4)."
    ),
)

SLOW_SPEC = MemoryModelSpec(
    name="Slow",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=PO_LOC,
    description=(
        "Slow memory (Hutto & Ahamad 1990, the same group's weakest "
        "proposal): a processor must eventually see another's writes to a "
        "given location in the order they were issued, but locations are "
        "completely independent and there is no mutual consistency — the "
        "bottom of the lattice, strictly below PRAM and below coherence."
    ),
)

HYBRID_SPEC = MemoryModelSpec(
    name="Hybrid",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.LABELED_TOTAL_ORDER,
    ordering=PO_SYNC,
    description=(
        "Hybrid consistency (Attiya & Friedman 1992), the paper's cited "
        "example of distinguishing strong and weak operations: all views "
        "agree on one total order of the strong (labeled) operations, "
        "extending program order; weak operations are ordered only "
        "relative to the same processor's strong operations.  With no "
        "labels it is weaker than PRAM; labeling everything recovers a "
        "strongly ordered memory."
    ),
)

# -- Section 7: new memories by recombining parameters ------------------------

COHERENT_CAUSAL_SPEC = MemoryModelSpec(
    name="CoherentCausal",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=CAUSAL,
    description=(
        "A new memory suggested by Section 7: causal memory strengthened "
        "with the coherence mutual-consistency requirement."
    ),
)

COHERENT_PRAM_SPEC = MemoryModelSpec(
    name="CoherentPRAM",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.COHERENCE,
    ordering=PO,
    description=(
        "A new memory from the same recipe: PRAM strengthened with "
        "coherence (close to Goodman's original processor consistency)."
    ),
)

# -- session guarantees and Partition Consistency (ROADMAP growth path) --------

RYW_SPEC = MemoryModelSpec(
    name="read-your-writes",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=session_rule("ryw"),
    description=(
        "The read-your-writes session guarantee (Terry et al. 1994): every "
        "view orders a processor's writes before its own later reads, so a "
        "session observes its own updates.  No cross-view agreement; the "
        "other program-order pairs are free."
    ),
)

MR_SPEC = MemoryModelSpec(
    name="monotonic-reads",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=session_rule("mr"),
    description=(
        "The monotonic-reads session guarantee (Terry et al. 1994): a "
        "session's reads are ordered by program order in its view, so "
        "later reads observe states at least as new as earlier ones "
        "(no going back in time within a session)."
    ),
)

MW_SPEC = MemoryModelSpec(
    name="monotonic-writes",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=session_rule("mw"),
    description=(
        "The monotonic-writes session guarantee (Terry et al. 1994): every "
        "view orders each session's writes in program order — writes "
        "propagate in issue order, but nothing constrains reads.  On "
        "plain read/write histories this is the weakest registered model."
    ),
)

WFR_SPEC = MemoryModelSpec(
    name="writes-follow-reads",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=session_rule("wfr"),
    description=(
        "The writes-follow-reads session guarantee (Terry et al. 1994): "
        "when a session reads a write and later writes, every view orders "
        "the observed write before the later one — the causality fragment "
        "that makes replies follow the messages they answer."
    ),
)

SESSION_CAUSAL_SPEC = MemoryModelSpec(
    name="session-causal",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.NONE,
    ordering=session_rule(*SESSION_COMPONENTS),
    description=(
        "The meet of all four session guarantees (Steinke & Nutt's "
        "decomposition; Brzezinski et al.'s composition theorem): "
        "read-your-writes ∧ monotonic-reads ∧ monotonic-writes ∧ "
        "writes-follow-reads.  Weaker than causal memory (the read→write "
        "program-order edges of full causality are not enforced) and "
        "strictly between Causal and each single guarantee."
    ),
)

PARTITION2_SPEC = MemoryModelSpec(
    name="partition-2",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.PARTITION,
    ordering=partition_rule(2),
    partition_blocks=2,
    description=(
        "Partition Consistency (Cheng, Higham & Kawash) with two blocks: "
        "locations split round-robin into two groups; views agree on the "
        "write order within each block and respect program order within "
        "each block, with no cross-block constraints — strictly between "
        "SC and plain coherence.  (The one-block instance is expressible "
        "via partition_rule(1) but is observationally equal to SC, so it "
        "is not a separate registry node.)"
    ),
)

PARTITION3_SPEC = MemoryModelSpec(
    name="partition-3",
    operation_set=OperationSet.REMOTE_WRITES,
    mutual_consistency=MutualConsistency.PARTITION,
    ordering=partition_rule(3),
    partition_blocks=3,
    description=(
        "Partition Consistency with three blocks.  Strictly between SC "
        "and coherence, but incomparable with partition-2: the "
        "round-robin block maps of different arity are not refinements "
        "of one another once a history touches four locations."
    ),
)

ALL_SPECS: tuple[MemoryModelSpec, ...] = (
    SC_SPEC,
    TSO_SPEC,
    PC_SPEC,
    PRAM_SPEC,
    CAUSAL_SPEC,
    COHERENCE_SPEC,
    RC_SC_SPEC,
    RC_PC_SPEC,
    HYBRID_SPEC,
    SLOW_SPEC,
    COHERENT_CAUSAL_SPEC,
    COHERENT_PRAM_SPEC,
    RYW_SPEC,
    MR_SPEC,
    MW_SPEC,
    WFR_SPEC,
    SESSION_CAUSAL_SPEC,
    PARTITION2_SPEC,
    PARTITION3_SPEC,
)

_BY_NAME = {spec.name.lower(): spec for spec in ALL_SPECS}


def _initials(name: str) -> str:
    """The initialism of a hyphenated/underscored name (``read-your-writes``
    → ``ryw``); single-word names initialize to their first letter only."""
    parts = [p for p in name.lower().replace("_", "-").split("-") if p]
    return "".join(p[0] for p in parts)


def suggest_names(query: str, limit: int = 3) -> tuple[str, ...]:
    """Registered model names a mistyped ``query`` probably meant.

    Matches initialisms of hyphenated names (``ryw`` →
    ``read-your-writes``), substring containment in either direction, and
    :mod:`difflib` closeness — in registry order, deduplicated, capped at
    ``limit``.
    """
    q = query.lower()
    names = [spec.name for spec in ALL_SPECS]
    hits: list[str] = []
    for name in names:
        ln = name.lower()
        if q == _initials(name) or (len(q) >= 2 and (q in ln or ln in q)):
            hits.append(name)
    by_lower = {name.lower(): name for name in names}
    for close in difflib.get_close_matches(q, list(by_lower), n=limit, cutoff=0.6):
        hits.append(by_lower[close])
    seen: set[str] = set()
    unique = [h for h in hits if not (h in seen or seen.add(h))]
    return tuple(unique[:limit])


def get_spec(name: str) -> MemoryModelSpec:
    """Look a specification up by (case-insensitive) name.

    Raises
    ------
    SpecError
        If no model of that name is registered; the error names near
        misses (``'ryw'`` suggests ``read-your-writes``) plus the full
        registry.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(s.name for s in ALL_SPECS))
        suggestions = suggest_names(name)
        hint = (
            f" did you mean {' or '.join(suggestions)}?" if suggestions else ""
        )
        raise SpecError(
            f"unknown memory model {name!r};{hint} known: {known}"
        ) from None


def spec_names() -> tuple[str, ...]:
    """Names of all registered model specifications."""
    return tuple(spec.name for spec in ALL_SPECS)
