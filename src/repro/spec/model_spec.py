"""Memory-model specifications: a named bundle of the three parameters.

A :class:`MemoryModelSpec` is the declarative description of a memory in
the paper's framework.  It does not itself decide anything; the generic
solver (:mod:`repro.checking.solver`) interprets it, and the per-model fast
checkers in :mod:`repro.checking` are verified against it in the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SpecError
from repro.spec.parameters import (
    LabeledDiscipline,
    MutualConsistency,
    OperationSet,
    OrderingRule,
)

__all__ = ["MemoryModelSpec"]


@dataclass(frozen=True)
class MemoryModelSpec:
    """Declarative description of a memory model.

    Parameters
    ----------
    name:
        Human-readable model name (``"SC"``, ``"TSO"``, …).
    operation_set:
        Which remote operations every view must include (parameter 1).
    mutual_consistency:
        Cross-view agreement requirement (parameter 2).
    ordering:
        The per-view ordering constraint (parameter 3).
    labeled_discipline:
        Only for release consistency: the consistency required of labeled
        operations (``SC`` for ``RC_sc``, ``PC`` for ``RC_pc``); ``None``
        for models without an ordinary/labeled distinction.
    bracketing:
        Only for release consistency: enforce the two acquire/release
        bracketing conditions of Section 3.4 on ordinary operations.
    ordering_own_view_only:
        When ``True`` the ordering constraint binds a processor's
        operations only in *that processor's own* view ("o1 precedes o2 in
        S_p", Section 3.4) — release consistency's reading, under which
        ordinary writes may arrive at other caches out of order.  When
        ``False`` (TSO, PC, PRAM, causal) the ordering binds every view
        that contains both operations.
    partition_blocks:
        Only for Partition Consistency (``MutualConsistency.PARTITION``):
        how many blocks the location set splits into (round-robin over the
        sorted locations).  ``None`` for every other mutual consistency.
    description:
        One-paragraph provenance note shown by documentation helpers.
    """

    name: str
    operation_set: OperationSet
    mutual_consistency: MutualConsistency
    ordering: OrderingRule
    labeled_discipline: LabeledDiscipline | None = None
    bracketing: bool = False
    ordering_own_view_only: bool = False
    partition_blocks: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.bracketing and self.labeled_discipline is None:
            raise SpecError(
                f"{self.name}: bracketing conditions require a labeled discipline"
            )
        if self.mutual_consistency is MutualConsistency.PARTITION:
            if self.partition_blocks is None or self.partition_blocks < 1:
                raise SpecError(
                    f"{self.name}: partition consistency needs a positive "
                    "partition_blocks count"
                )
        elif self.partition_blocks is not None:
            raise SpecError(
                f"{self.name}: partition_blocks only applies to "
                "partition mutual consistency"
            )
        if (
            self.mutual_consistency is MutualConsistency.IDENTICAL
            and self.operation_set is not OperationSet.ALL_REMOTE
        ):
            raise SpecError(
                f"{self.name}: identical views only make sense when views "
                "contain every operation (ALL_REMOTE)"
            )
        if (
            self.ordering.needs_coherence
            and self.mutual_consistency
            not in (MutualConsistency.COHERENCE, MutualConsistency.TOTAL_WRITE_ORDER)
        ):
            raise SpecError(
                f"{self.name}: ordering {self.ordering.name!r} needs a "
                "coherence order but mutual consistency provides none"
            )

    @property
    def is_release_consistent(self) -> bool:
        """True when the model distinguishes labeled from ordinary operations."""
        return self.labeled_discipline is not None

    @property
    def cache_key(self) -> str:
        """Stable identity of the spec's *parameters* (not its name).

        Two specs with equal parameters compile to the same constraint
        kernel, so the engine's compiled-constraint cache keys on this
        rather than on the display name.
        """
        parts = [
            self.operation_set.value,
            self.mutual_consistency.value,
            self.ordering.name,
            self.labeled_discipline.value if self.labeled_discipline else "-",
            "brk" if self.bracketing else "-",
            "own" if self.ordering_own_view_only else "-",
            str(self.partition_blocks) if self.partition_blocks else "-",
        ]
        return "/".join(parts)

    def __str__(self) -> str:
        parts = [
            f"δ_p={self.operation_set.value}",
            f"mutual={self.mutual_consistency.value}",
            f"order={self.ordering.name}",
        ]
        if self.labeled_discipline is not None:
            parts.append(f"labeled={self.labeled_discipline.value}")
        if self.bracketing:
            parts.append("bracketing")
        if self.partition_blocks is not None:
            parts.append(f"blocks={self.partition_blocks}")
        return f"{self.name}({', '.join(parts)})"
