"""The three characterization parameters of the paper (Section 2).

A memory model in the framework is a choice of

1. **Set of operations** (:class:`OperationSet`) — which remote operations
   each processor's view must contain in addition to its own;
2. **Mutual consistency** (:class:`MutualConsistency`) — which cross-view
   agreement is required;
3. **Ordering** (:class:`OrderingRule`) — which order derived from the
   history every view must respect.

These are deliberately declarative values, not code: the generic solver in
:mod:`repro.checking.solver` interprets them, the registry composes them
into the paper's named models, and new memories (Section 7) are built by
recombining them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache, partial
from typing import Any, Callable

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.orders.causal import causal_relation
from repro.orders.coherence import CoherenceOrder
from repro.orders.program_order import po_relation, ppo_relation
from repro.orders.relation import Relation
from repro.orders.semi_causal import sem_relation
from repro.orders.writes_before import ReadsFrom, unambiguous_reads_from

__all__ = [
    "OperationSet",
    "MutualConsistency",
    "LabeledDiscipline",
    "OrderingRule",
    "PO",
    "PO_LOC",
    "PO_SYNC",
    "PPO",
    "CAUSAL",
    "SEMI_CAUSAL",
    "SESSION_COMPONENTS",
    "session_rule",
    "partition_rule",
    "partition_block_map",
    "rule_by_name",
]


class OperationSet(enum.Enum):
    """Parameter 1: the contents of ``δ_p`` (remote operations in a view)."""

    #: ``δ_p = a``: all operations of the other processors.  Views then see
    #: the entire execution; SC further requires the views to coincide.
    ALL_REMOTE = "all"

    #: ``δ_p = w``: only the write operations of other processors — the
    #: common choice for weak memories, since only writes change state.
    REMOTE_WRITES = "writes"

    def members(self, history: SystemHistory, proc: Any) -> tuple[Operation, ...]:
        """The remote operations that must appear in ``proc``'s view."""
        if self is OperationSet.ALL_REMOTE:
            return history.remote_ops(proc, lambda op: True)
        return history.remote_writes(proc)

    def view_contents(self, history: SystemHistory, proc: Any) -> tuple[Operation, ...]:
        """Own operations plus the required remote operations."""
        return history.ops_of(proc) + self.members(history, proc)


class MutualConsistency(enum.Enum):
    """Parameter 2: cross-view agreement requirements."""

    #: No agreement between views beyond sharing the one history (PRAM,
    #: causal memory).
    NONE = "none"

    #: All views order *all* writes identically (TSO's store order).
    TOTAL_WRITE_ORDER = "total-write-order"

    #: All views order the writes *to each location* identically — cache
    #: coherence (PC, RC).
    COHERENCE = "coherence"

    #: Views must be identical sequences (SC collapses every view to one
    #: common legal sequence over all operations).
    IDENTICAL = "identical"

    #: All views order the *labeled* (strong) operations identically —
    #: hybrid consistency's agreement requirement (Attiya & Friedman,
    #: cited by the paper as the strong/weak example of parameter 1).
    LABELED_TOTAL_ORDER = "labeled-total-order"

    #: Locations are split into ``k`` blocks and all views order the
    #: writes *within each block* identically — Partition Consistency
    #: (Cheng, Higham & Kawash) as a parameterized family.  The block
    #: count lives on the spec (``partition_blocks``); one block is
    #: total-write-order agreement, one block per location degenerates
    #: to coherence.
    PARTITION = "partition"


class LabeledDiscipline(enum.Enum):
    """Consistency required of labeled (synchronization) operations under RC."""

    #: ``RC_sc``: labeled operations are sequentially consistent.
    SC = "sc"

    #: ``RC_pc``: labeled operations are processor consistent.
    PC = "pc"


@dataclass(frozen=True)
class OrderingRule:
    """Parameter 3: the per-view ordering constraint.

    ``build`` produces, for a fixed reads-from assignment and (when the
    model has one) coherence order, the relation that every view must
    embed as a linear extension on the operations it contains.
    """

    name: str
    build: Callable[
        [SystemHistory, ReadsFrom, CoherenceOrder | None], Relation[Operation]
    ]
    #: Whether ``build`` needs a coherence order (only semi-causality does).
    needs_coherence: bool = False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"OrderingRule({self.name})"


def _build_po(history: SystemHistory, rf: ReadsFrom, co: CoherenceOrder | None):
    return po_relation(history)


def _build_ppo(history: SystemHistory, rf: ReadsFrom, co: CoherenceOrder | None):
    return ppo_relation(history)


def _build_causal(history: SystemHistory, rf: ReadsFrom, co: CoherenceOrder | None):
    return causal_relation(history, rf)


def _build_sem(history: SystemHistory, rf: ReadsFrom, co: CoherenceOrder | None):
    if co is None:
        raise ValueError("semi-causality requires a coherence order")
    return sem_relation(history, rf, co)


def _build_po_loc(history: SystemHistory, rf: ReadsFrom, co: CoherenceOrder | None):
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if a.location == b.location:
                    rel.add(a, b)
    return rel


def _build_po_sync(history: SystemHistory, rf: ReadsFrom, co: CoherenceOrder | None):
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if a.labeled or b.labeled:
                    rel.add(a, b)
    return rel.transitive_closure()


#: Program order — full, blocking operations (SC, PRAM).
PO = OrderingRule("po", _build_po)

#: Program order restricted to pairs with at least one labeled (strong)
#: operation — hybrid consistency's ordering: weak operations are ordered
#: only relative to the strong operations around them.
PO_SYNC = OrderingRule("po-sync", _build_po_sync)

#: Program order restricted to same-location pairs — per-location SC, the
#: ordering half of plain cache coherence.
PO_LOC = OrderingRule("po-loc", _build_po_loc)

#: Partial program order — write→read bypass allowed (TSO, PC, RC).
PPO = OrderingRule("ppo", _build_ppo)

#: Causal order ``(po ∪ wb)+`` (causal memory).
CAUSAL = OrderingRule("causal", _build_causal)

#: Semi-causality ``(ppo ∪ rwb ∪ rrb)+`` (processor consistency).
SEMI_CAUSAL = OrderingRule("sem", _build_sem, needs_coherence=True)


# -- session guarantees (Terry et al.; Steinke & Nutt's basic orders) ----------

#: The four per-session guarantee components, in canonical order:
#: read-your-writes (``w →po r``), monotonic reads (``r →po r``),
#: monotonic writes (``w →po w``) and writes-follow-reads
#: (``src(r) → w'`` for a read ``r`` program-order-before a write ``w'``).
SESSION_COMPONENTS = ("ryw", "mr", "mw", "wfr")


def _build_session(
    components: tuple[str, ...],
    history: SystemHistory,
    rf: ReadsFrom,
    co: CoherenceOrder | None,
):
    comps = set(components)
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if (
                    ("mw" in comps and a.is_write and b.is_write)
                    or ("ryw" in comps and a.is_write and b.is_read)
                    or ("mr" in comps and a.is_read and b.is_read)
                ):
                    rel.add(a, b)
    if "wfr" in comps:
        reads = rf if rf is not None else unambiguous_reads_from(history)
        if reads is not None:
            for r, src in reads.items():
                if src is None:
                    continue
                for later in history.ops_of(r.proc)[r.index + 1:]:
                    if later.is_write and later.uid != src.uid:
                        rel.add(src, later)
    return rel.transitive_closure()


@lru_cache(maxsize=None)
def session_rule(*components: str) -> OrderingRule:
    """The ordering rule enforcing a meet of session-guarantee components.

    ``components`` is any non-empty subset of :data:`SESSION_COMPONENTS`;
    the returned rule is cached so equal component sets share one rule
    object (the kernel's per-history mask cache keys on rule identity).
    The full meet ``session_rule(*SESSION_COMPONENTS)`` is Steinke &
    Nutt's composition recovering a causal-like memory without the
    ``r →po w`` edges of full program order.
    """
    seen = set(components)
    unknown = seen - set(SESSION_COMPONENTS)
    if unknown or not seen:
        raise ValueError(
            f"session components must be a non-empty subset of "
            f"{SESSION_COMPONENTS}, got {components!r}"
        )
    canon = tuple(c for c in SESSION_COMPONENTS if c in seen)
    return OrderingRule(
        f"session({'+'.join(canon)})", partial(_build_session, canon)
    )


# -- Partition Consistency (Cheng, Higham & Kawash) ----------------------------


def partition_block_map(history: SystemHistory, blocks: int) -> dict[str, int]:
    """The location → block assignment of a ``blocks``-way partition.

    Deterministic and history-derived: locations sort lexicographically
    and take blocks round-robin, so every layer (ordering rule, candidate
    enumeration, pre-pass) agrees on the partition without carrying it
    through the wire format.
    """
    return {loc: i % blocks for i, loc in enumerate(sorted(history.locations))}


def _build_po_block(
    blocks: int,
    history: SystemHistory,
    rf: ReadsFrom,
    co: CoherenceOrder | None,
):
    block = partition_block_map(history, blocks)
    rel: Relation[Operation] = Relation(history.operations)
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if block[a.location] == block[b.location]:
                    rel.add(a, b)
    return rel


@lru_cache(maxsize=None)
def partition_rule(blocks: int) -> OrderingRule:
    """Program order restricted to same-block pairs of a ``blocks``-way split.

    The ordering half of Partition Consistency: with one block it is full
    program order, with one block per location it degenerates to
    ``po-loc``.  Cached per ``blocks`` so every spec with the same
    parameter shares one rule object.
    """
    if blocks < 1:
        raise ValueError(f"partition needs at least one block, got {blocks}")
    return OrderingRule(f"po-block({blocks})", partial(_build_po_block, blocks))


_BASE_RULES = {
    rule.name: rule for rule in (PO, PO_SYNC, PO_LOC, PPO, CAUSAL, SEMI_CAUSAL)
}


def rule_by_name(name: str) -> OrderingRule | None:
    """Resolve an ordering rule from its stable name, or ``None``.

    Covers the module singletons plus every factory-made session and
    partition rule (the factories cache, so the resolved object is
    identical to the one specs hold — callers that key caches on rule
    identity, like the plane arena, can rely on that).
    """
    base = _BASE_RULES.get(name)
    if base is not None:
        return base
    if name.startswith("session(") and name.endswith(")"):
        parts = tuple(name[len("session("):-1].split("+"))
        try:
            return session_rule(*parts)
        except ValueError:
            return None
    if name.startswith("po-block(") and name.endswith(")"):
        try:
            return partition_rule(int(name[len("po-block("):-1]))
        except ValueError:
            return None
    return None
