"""Structured observability: tracing, profiling, and the docs pipeline.

``repro.obs`` is how the framework explains *how* it decided, not just
what: the kernel, the static pre-pass and the engine emit typed
:mod:`~repro.obs.events` to an opt-in :mod:`~repro.obs.sink`, the
:mod:`~repro.obs.render` module narrates a recorded stream, and
:mod:`~repro.obs.profile` aggregates per-check phase timings.  The
:mod:`~repro.obs.docgen` module turns the same machinery into generated
documentation (CLI reference, worked trace examples) that CI keeps
honest.

Tracing is off by default and free when off: instrumented code checks
``active_sink() is None`` once per check and skips all event
construction (the <3% disabled-overhead bound is asserted by
``benchmarks/bench_obs.py``).  See ``docs/obs.md`` for the guided tour.
"""

from repro.obs.events import (
    EVENT_KINDS,
    AttributionTried,
    Backtracked,
    CandidateTried,
    CheckStarted,
    LabeledExtraTried,
    NodeEntered,
    PhaseMark,
    PrefixReuse,
    PrepassRule,
    PropagationApplied,
    SessionAppend,
    TraceEvent,
    VerdictReached,
    ViewSearch,
    ViewSolved,
    ViewStuck,
    event_from_dict,
    event_to_dict,
)
from repro.obs.profile import PHASES, CheckProfile, ProfileAggregate, profile_check
from repro.obs.render import render_trace
from repro.obs.sink import (
    CountingSink,
    NullSink,
    RecordingSink,
    SessionStatsSink,
    TimingSink,
    TraceSink,
    active_sink,
    tracing,
)

__all__ = [
    "TraceEvent",
    "CheckStarted",
    "PhaseMark",
    "PrepassRule",
    "AttributionTried",
    "CandidateTried",
    "LabeledExtraTried",
    "PropagationApplied",
    "ViewSearch",
    "NodeEntered",
    "Backtracked",
    "ViewSolved",
    "ViewStuck",
    "VerdictReached",
    "SessionAppend",
    "PrefixReuse",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
    "TraceSink",
    "NullSink",
    "RecordingSink",
    "CountingSink",
    "SessionStatsSink",
    "TimingSink",
    "active_sink",
    "tracing",
    "CheckProfile",
    "ProfileAggregate",
    "profile_check",
    "PHASES",
    "render_trace",
]
