"""Trace sinks: where instrumented layers send their events.

The protocol is one method — :meth:`TraceSink.emit` — and the contract
that matters is *what happens when nobody listens*: tracing is opt-in,
the default is no sink at all (``active_sink()`` returns ``None``), and
the instrumented hot paths test that single reference before building
any event.  ``benchmarks/bench_obs.py`` holds the disabled path to <3%
overhead over the un-gated kernel.

Sinks:

* :class:`NullSink` — accepts and discards everything; the explicit
  no-op for call sites that want a sink object unconditionally.
* :class:`RecordingSink` — keeps the events (optionally capped) for
  rendering or serialization; what ``python -m repro trace`` uses.
* :class:`CountingSink` — per-kind counters only, O(1) memory; the
  cheap profiling mode.
* :class:`TimingSink` — a counting sink that also pairs
  :class:`~repro.obs.events.PhaseMark` events into per-phase wall
  times; what ``python -m repro profile`` uses.

A sink is installed for a region of code with :func:`tracing`::

    with tracing(RecordingSink()) as sink:
        check_with_spec(spec, history)
    print(render_trace(sink.events))

Installation is process-global (the kernel is single-threaded per
check); nesting saves and restores the previous sink.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import (
    PhaseMark,
    PrefixReuse,
    PrepassRule,
    SessionAppend,
    TraceEvent,
)

__all__ = [
    "TraceSink",
    "NullSink",
    "RecordingSink",
    "CountingSink",
    "SessionStatsSink",
    "TimingSink",
    "active_sink",
    "tracing",
]


class TraceSink:
    """Base sink: receives every event of the checks run while installed."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(TraceSink):
    """Discards everything (the explicit form of "tracing disabled")."""

    def emit(self, event: TraceEvent) -> None:
        pass


class RecordingSink(TraceSink):
    """Keeps the event stream in order, optionally capped.

    Parameters
    ----------
    limit:
        Maximum events retained; further events are counted in
        :attr:`dropped` but not stored, so tracing a pathological search
        cannot exhaust memory.  ``None`` means unbounded.
    """

    def __init__(self, limit: int | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.limit = limit
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """The recorded events with the given ``kind`` tag, in order."""
        return [e for e in self.events if type(e).kind == kind]


class CountingSink(TraceSink):
    """Counts events per kind and remembers nothing else."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def emit(self, event: TraceEvent) -> None:
        kind = type(event).kind
        self.counts[kind] = self.counts.get(kind, 0) + 1


class SessionStatsSink(CountingSink):
    """A counting sink that also totals the incremental-session payloads.

    :class:`~repro.obs.events.SessionAppend` and
    :class:`~repro.obs.events.PrefixReuse` events carry per-append
    figures (did the plane grow in place, how many prefix failures the
    resumed search replayed); this sink sums them, so a service's
    ``GET /stats`` — or a benchmark's reuse-rate report — reads totals
    instead of replaying an event stream.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Operations accepted by incremental sessions while installed.
        self.appends = 0
        #: Appends whose compiled plane grew in place (vs full recompile).
        self.planes_grown = 0
        #: Candidate serializations replayed from prefix failure memory.
        self.reuse_hits = 0
        #: Candidate serializations searched fresh under an active memory.
        self.reuse_misses = 0
        #: Session checks that ran as full one-shot searches (no memory).
        self.fallbacks = 0
        #: Static pre-pass rule outcomes while installed, keyed
        #: ``{"deny": n, "admit": n, "pass": n, "abstain": n}`` — the
        #: service's ``/stats`` view of how often the polynomial battery
        #: decided (in either direction) without a search.
        self.prepass_outcomes: dict[str, int] = {}

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if isinstance(event, SessionAppend):
            self.appends += 1
            if event.reused:
                self.planes_grown += 1
        elif isinstance(event, PrefixReuse):
            if event.fallback:
                self.fallbacks += 1
            else:
                self.reuse_hits += event.hits
                self.reuse_misses += event.misses
        elif isinstance(event, PrepassRule):
            self.prepass_outcomes[event.outcome] = (
                self.prepass_outcomes.get(event.outcome, 0) + 1
            )

    @property
    def reuse_rate(self) -> float:
        """Fraction of candidate serializations served from prefix memory."""
        total = self.reuse_hits + self.reuse_misses
        return self.reuse_hits / total if total else 0.0

    def session_counters(self) -> dict[str, int]:
        """The session totals as a plain dictionary (for ``/stats``)."""
        return {
            "appends": self.appends,
            "planes_grown": self.planes_grown,
            "reuse_hits": self.reuse_hits,
            "reuse_misses": self.reuse_misses,
            "fallbacks": self.fallbacks,
        }

    def prepass_counters(self) -> dict[str, int]:
        """Pre-pass rule outcomes as a plain dictionary (for ``/stats``).

        ``denied``/``admitted`` count checks the static battery decided
        outright; ``passed``/``abstained`` count rule runs that fell
        through to the search.
        """
        return {
            "denied": self.prepass_outcomes.get("deny", 0),
            "admitted": self.prepass_outcomes.get("admit", 0),
            "passed": self.prepass_outcomes.get("pass", 0),
            "abstained": self.prepass_outcomes.get("abstain", 0),
        }


class TimingSink(CountingSink):
    """Counts events and pairs phase marks into per-phase wall times.

    ``phase_seconds`` maps phase names to accumulated seconds across
    every start/end pair seen while installed; an unmatched start (a
    check that raised mid-phase) contributes nothing.
    """

    def __init__(self) -> None:
        super().__init__()
        self.phase_seconds: dict[str, float] = {}
        self._open: dict[str, float] = {}

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if isinstance(event, PhaseMark):
            if event.mark == "start":
                self._open[event.phase] = time.perf_counter()
            elif event.mark == "end" and event.phase in self._open:
                t0 = self._open.pop(event.phase)
                elapsed = time.perf_counter() - t0
                self.phase_seconds[event.phase] = (
                    self.phase_seconds.get(event.phase, 0.0) + elapsed
                )


#: The installed sink; ``None`` — the default — is the zero-cost off state.
_ACTIVE: TraceSink | None = None


def active_sink() -> TraceSink | None:
    """The currently installed sink, or ``None`` when tracing is off.

    Instrumented code fetches this once per check and skips every event
    construction when it is ``None``; per-event code never runs on the
    disabled path.
    """
    return _ACTIVE


@contextmanager
def tracing(sink: TraceSink) -> Iterator[TraceSink]:
    """Install ``sink`` for the duration of the ``with`` block.

    Yields the sink (so ``with tracing(RecordingSink()) as sink:`` reads
    naturally) and restores whatever was installed before — including
    ``None`` — on exit, even on exceptions.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink
    try:
        yield sink
    finally:
        _ACTIVE = previous
