"""Render a recorded trace as a human-readable search narration.

The renderer turns the event stream of one ``check_with_spec`` call into
the story of the decision: which pre-pass rules ran, which reads-from
attribution was fixed, which candidate serializations were proposed, how
each view search placed and retracted operations, and the final verdict.

Two output modes share one structure: plain ASCII (the default of
``python -m repro trace``) and markdown (``--markdown``), where the same
narration gets headings and code fences — the form embedded in
``docs/obs.md`` by the docs generator, so the documentation's worked
examples are literally this renderer's output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.events import (
    AttributionTried,
    Backtracked,
    CandidateTried,
    CheckStarted,
    LabeledExtraTried,
    NodeEntered,
    PhaseMark,
    PrepassRule,
    PropagationApplied,
    TraceEvent,
    VerdictReached,
    ViewSearch,
    ViewSolved,
    ViewStuck,
)

__all__ = ["render_trace"]

#: Default cap on rendered search-step lines (placements + backtracks).
DEFAULT_MAX_STEPS = 400


def render_trace(
    events: Iterable[TraceEvent],
    *,
    markdown: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> str:
    """The narration of one check's event stream.

    Parameters
    ----------
    events:
        The events one ``check_with_spec`` call emitted, in order.
    markdown:
        Emit markdown (headings, code fences) instead of plain ASCII.
    max_steps:
        Cap on rendered search steps (node placements and backtracks);
        further steps are elided with a count so deep searches stay
        readable.
    """
    r = _Renderer(markdown=markdown, max_steps=max_steps)
    for event in events:
        r.feed(event)
    return r.finish()


class _Renderer:
    def __init__(self, *, markdown: bool, max_steps: int) -> None:
        self.md = markdown
        self.max_steps = max_steps
        self.lines: list[str] = []
        self.steps = 0
        self.elided = 0
        self._in_search_block = False

    # -- structure helpers -------------------------------------------------------

    def head(self, text: str) -> None:
        self._close_block()
        if self.md:
            self.lines += [f"### {text}", ""]
        else:
            self.lines += [text, "-" * len(text)]

    def line(self, text: str, indent: int = 0) -> None:
        self._close_block()
        prefix = "  " * indent
        self.lines.append(f"{prefix}- {text}" if self.md else f"{prefix}{text}")

    def step_line(self, text: str, indent: int = 0) -> None:
        """A search step: rendered inside a code fence in markdown mode."""
        if self.steps >= self.max_steps:
            self.elided += 1
            return
        self.steps += 1
        if self.md and not self._in_search_block:
            self.lines += ["", "```text"]
            self._in_search_block = True
        self.lines.append("  " * indent + text)

    def _close_block(self) -> None:
        if self._in_search_block:
            self.lines += ["```", ""]
            self._in_search_block = False

    # -- event dispatch ----------------------------------------------------------

    def feed(self, event: TraceEvent) -> None:
        if isinstance(event, CheckStarted):
            title = (
                f"Tracing {event.model}: {event.operations} operations, "
                f"{event.processors} processor(s)"
            )
            if self.md:
                self.lines += [f"## {title}", ""]
            else:
                self.lines += [title, "=" * len(title)]
        elif isinstance(event, PhaseMark):
            if event.mark == "start" and event.phase != "compile":
                self.head(
                    "Static pre-pass" if event.phase == "prepass" else "Search"
                )
        elif isinstance(event, PrepassRule):
            outcome = {
                "deny": f"DENY — {event.detail}" if event.detail else "DENY",
                "pass": "passed (no contradiction found)",
                "abstain": "abstained (ambiguous reads-from attribution)",
            }.get(event.outcome, event.outcome)
            self.line(f"rule {event.rule}: {outcome}")
        elif isinstance(event, AttributionTried):
            tag = "the unique attribution" if event.unique else f"attribution #{event.index}"
            self.line(f"reads-from: {tag}")
            for read, src in event.assignment:
                self.line(f"{read} <- {src or '(initial value)'}", indent=1)
        elif isinstance(event, CandidateTried):
            self.line(f"mutual-consistency candidate #{event.index}")
            for chain in event.chains:
                self.line("agreed order: " + " < ".join(chain), indent=1)
        elif isinstance(event, LabeledExtraTried):
            self.line(f"labeled serialization #{event.index}")
            if event.order:
                self.line(" < ".join(event.order), indent=1)
        elif isinstance(event, PropagationApplied):
            self.line(f"unit propagation installed {event.edges} forced edge(s)")
        elif isinstance(event, ViewSearch):
            who = "the common view" if event.proc == "*" else f"view of {event.proc}"
            self.line(f"searching {who} ({event.operations} operation(s))")
        elif isinstance(event, NodeEntered):
            self.step_line(f"place {event.op}", indent=event.depth + 1)
        elif isinstance(event, Backtracked):
            self.step_line(f"undo  {event.op}", indent=event.depth + 1)
        elif isinstance(event, ViewSolved):
            self._close_block()
            who = "common view" if event.proc == "*" else f"view of {event.proc}"
            self.line(f"{who} solved: " + " ".join(event.order))
        elif isinstance(event, ViewStuck):
            self._close_block()
            who = "common view" if event.proc == "*" else f"view of {event.proc}"
            why = (
                "the constraint masks are cyclic"
                if event.reason == "constraint-cycle"
                else "no legal placement remains"
            )
            self.line(f"{who} stuck: {why}")
        elif isinstance(event, VerdictReached):
            self._close_block()
            if self.elided:
                self.line(f"(... {self.elided} further search step(s) elided)")
                self.elided = 0
            verdict = "allowed" if event.allowed else "NOT allowed"
            text = f"Verdict: {event.model} {verdict}"
            if event.explored:
                text += f" after {event.explored} candidate serialization(s)"
            if event.reason and not event.allowed:
                text += f" — {event.reason}"
            if self.md:
                self.lines += ["", f"**{text}**"]
            else:
                self.lines += ["", text]

    def finish(self) -> str:
        self._close_block()
        if self.elided:
            self.line(f"(... {self.elided} further search step(s) elided)")
        return "\n".join(self.lines).rstrip() + "\n"


def render_views_block(views: Sequence[str], *, markdown: bool = False) -> str:
    """Witness views as a block matching the narration's mode."""
    if markdown:
        return "\n".join(["```text", *views, "```"])
    return "\n".join(views)
