"""Per-check profiles and their aggregation into timing tables.

A :class:`CheckProfile` is the observability record of *one* check: how
long each kernel phase took (``prepass``, ``compile``, ``search``) and
how often each search event fired (attributions, candidates, nodes,
backtracks, …).  :func:`profile_check` produces one by running
``check_with_spec`` under a :class:`~repro.obs.sink.TimingSink`.

A :class:`ProfileAggregate` folds many profiles into per-model tables —
the engine merges the phase component into
:class:`~repro.engine.metrics.EngineMetrics` (surfaced in every sweep
summary), and ``python -m repro profile`` renders the full table over
the litmus catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.obs.sink import TimingSink, tracing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.history import SystemHistory
    from repro.kernel.results import CheckResult

__all__ = ["CheckProfile", "ProfileAggregate", "profile_check", "PHASES"]

#: The kernel phases a check is divided into, in execution order.
PHASES: tuple[str, ...] = ("prepass", "compile", "search")


@dataclass
class CheckProfile:
    """Timing and counters of one check of one history under one model.

    Attributes
    ----------
    model:
        The model checked.
    allowed:
        The verdict (profiling never changes it).
    explored:
        Candidate serializations examined (the kernel's effort figure).
    phase_seconds:
        Wall time per kernel phase (see :data:`PHASES`); phases that
        never ran (no prepass, prepass-decided search) are absent.
    counters:
        Event counts per kind tag (``"node"``, ``"backtrack"``,
        ``"attribution"``, ``"candidate"``, ``"prepass-rule"``, …).
    """

    model: str
    allowed: bool = False
    explored: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Wall time summed over the recorded phases."""
        return sum(self.phase_seconds.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (what the result store's summary embeds)."""
        return {
            "model": self.model,
            "allowed": self.allowed,
            "explored": self.explored,
            "phase_seconds": {
                p: round(s, 6) for p, s in sorted(self.phase_seconds.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }


def profile_check(
    spec: Any,
    history: "SystemHistory",
    *,
    prepass: bool = True,
) -> tuple["CheckResult", CheckProfile]:
    """Run ``check_with_spec`` under a timing sink; the result plus profile.

    The verdict, witness and ``explored`` count are exactly what an
    unprofiled call returns — profiling only observes.  ``prepass``
    defaults on (matching the engine) so the profile shows where the
    static layer saves searches.
    """
    # Imported here, not at module top: the kernel imports repro.obs.sink,
    # so a top-level kernel import would be circular.
    from repro.kernel.search import check_with_spec

    sink = TimingSink()
    with tracing(sink):
        result = check_with_spec(spec, history, prepass=prepass)
    profile = CheckProfile(
        model=spec.name,
        allowed=result.allowed,
        explored=result.explored,
        phase_seconds=dict(sink.phase_seconds),
        counters=dict(sink.counts),
    )
    return result, profile


@dataclass
class ProfileAggregate:
    """Many check profiles folded into per-model totals.

    The shape ``python -m repro profile`` renders: for each model, the
    number of checks, total/per-phase wall time, and the summed search
    counters.
    """

    checks: dict[str, int] = field(default_factory=dict)
    allowed: dict[str, int] = field(default_factory=dict)
    explored: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, dict[str, float]] = field(default_factory=dict)
    counters: dict[str, dict[str, int]] = field(default_factory=dict)

    def add(self, profile: CheckProfile) -> None:
        """Fold one check's profile into the per-model totals."""
        m = profile.model
        self.checks[m] = self.checks.get(m, 0) + 1
        self.allowed[m] = self.allowed.get(m, 0) + (1 if profile.allowed else 0)
        self.explored[m] = self.explored.get(m, 0) + profile.explored
        phases = self.phase_seconds.setdefault(m, {})
        for phase, seconds in profile.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        counts = self.counters.setdefault(m, {})
        for kind, n in profile.counters.items():
            counts[kind] = counts.get(kind, 0) + n

    def models(self) -> list[str]:
        """The profiled models, slowest total time first."""
        return sorted(
            self.checks,
            key=lambda m: -sum(self.phase_seconds.get(m, {}).values()),
        )

    def render(self, *, markdown: bool = False) -> str:
        """The per-phase timing table, ASCII by default, markdown on request."""
        phases = list(PHASES)
        header = ["model", "checks", "allowed", "explored", *phases, "total"]
        rows: list[list[str]] = []
        for m in self.models():
            per_phase = self.phase_seconds.get(m, {})
            total = sum(per_phase.values())
            rows.append(
                [
                    m,
                    str(self.checks[m]),
                    str(self.allowed.get(m, 0)),
                    str(self.explored.get(m, 0)),
                    *(f"{per_phase.get(p, 0.0) * 1000:.2f}ms" for p in phases),
                    f"{total * 1000:.2f}ms",
                ]
            )
        if not rows:
            return "(no checks profiled)"
        return _table(header, rows, markdown=markdown)

    def render_counters(self, *, markdown: bool = False) -> str:
        """The summed search-counter table (nodes, backtracks, …)."""
        kinds = sorted({k for counts in self.counters.values() for k in counts})
        if not kinds:
            return "(no counters recorded)"
        header = ["model", *kinds]
        rows = [
            [m, *(str(self.counters.get(m, {}).get(k, 0)) for k in kinds)]
            for m in self.models()
        ]
        return _table(header, rows, markdown=markdown)


def _table(header: Sequence[str], rows: Sequence[Sequence[str]], *, markdown: bool) -> str:
    """Render a column-aligned ASCII or markdown table."""
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    if markdown:
        lines = [
            "| " + " | ".join(str(h).ljust(w) for h, w in zip(header, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for row in rows:
            lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        return "\n".join(lines)
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
