"""Self-documenting pipeline: generated doc blocks, CLI reference, link check.

The docs under ``docs/`` contain *generated blocks* — regions delimited
by ``<!-- generated:NAME start/end -->`` markers whose contents are
produced by this module from the live code:

* ``cli-reference`` (in ``docs/cli.md``) — the full ``python -m repro``
  command reference, walked out of the real argparse tree
  (:func:`cli_reference_markdown`), so the reference *cannot* drift from
  the parser: a CI check regenerates and compares.
* ``trace-example`` (in ``docs/obs.md``) — a worked check narration of
  the paper's Figure 1 history under TSO and SC (the static pre-pass
  admits one and denies the other), rendered by the same
  :func:`~repro.obs.render.render_trace` the ``trace`` verb uses.  The
  kernel is deterministic and events carry no timestamps, so the block
  is byte-stable.

``python -m repro.obs.docgen --check`` verifies every generated block is
current and every intra-repo markdown link resolves (the CI docs job);
``--write`` regenerates the blocks in place.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Callable, Iterator

__all__ = [
    "cli_reference_markdown",
    "trace_example_markdown",
    "GENERATED_BLOCKS",
    "extract_block",
    "inject_block",
    "stale_blocks",
    "iter_markdown_links",
    "broken_links",
    "main",
]


# -- the CLI reference, from the argparse tree --------------------------------


def cli_reference_markdown() -> str:
    """The ``python -m repro`` reference, generated from the parser.

    One section per verb (recursing into sub-verbs like ``lint history``),
    with the verb's help line, usage, and an option table.  Produced from
    ``repro.cli.build_parser()`` at call time — the test suite compares
    this against the committed ``docs/cli.md`` block.
    """
    from repro.cli import build_parser

    parser = build_parser()
    out: list[str] = []
    _describe_parser(parser, "python -m repro", out, level=0)
    return "\n".join(out).rstrip() + "\n"


def _sub_actions(parser: argparse.ArgumentParser) -> argparse._SubParsersAction | None:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    return None


def _describe_parser(
    parser: argparse.ArgumentParser, prog: str, out: list[str], *, level: int
) -> None:
    sub = _sub_actions(parser)
    if level == 0:
        out.append(f"Global options of `{prog}`:")
        out.append("")
        out.extend(_option_lines(parser, include_positionals=False))
        out.append("")
    if sub is None:
        return
    # argparse registers one parser object per alias; keep first names only.
    seen: set[int] = set()
    help_by_name = {a.dest: a.help for a in sub._choices_actions}
    for name, child in sub.choices.items():
        if id(child) in seen:
            continue
        seen.add(id(child))
        child_prog = f"{prog} {name}"
        heading = "#" * min(level + 3, 5)
        out.append(f"{heading} `{child_prog}`")
        out.append("")
        blurb = help_by_name.get(name) or child.description
        if blurb:
            out.append(str(blurb).rstrip("."). strip() + ".")
            out.append("")
        grand = _sub_actions(child)
        if grand is None:
            usage = child.format_usage().replace("usage: ", "").strip()
            usage = re.sub(r"\s+", " ", usage)
            out.append("```text")
            out.append(usage)
            out.append("```")
            out.append("")
        lines = _option_lines(child, include_positionals=True)
        if lines:
            out.extend(lines)
            out.append("")
        if grand is not None:
            _describe_parser(child, child_prog, out, level=level + 1)


def _option_lines(
    parser: argparse.ArgumentParser, *, include_positionals: bool
) -> list[str]:
    rows: list[tuple[str, str]] = []
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            continue
        if action.option_strings:
            name = ", ".join(f"`{s}`" for s in action.option_strings)
            if action.metavar:
                name += f" `{action.metavar}`"
            elif action.nargs != 0 and not isinstance(
                action,
                (
                    argparse._StoreTrueAction,
                    argparse._HelpAction,
                    argparse._VersionAction,
                ),
            ):
                name += f" `{action.dest.upper()}`"
        elif include_positionals:
            name = f"`{action.metavar or action.dest}`"
        else:
            continue
        help_text = (action.help or "").strip()
        if action.default not in (None, argparse.SUPPRESS, False, "==SUPPRESS=="):
            help_text += f" (default: `{action.default}`)"
        rows.append((name, help_text))
    if not rows:
        return []
    lines = ["| argument | meaning |", "|---|---|"]
    lines += [f"| {name} | {help_text} |" for name, help_text in rows]
    return lines


# -- the worked trace example -------------------------------------------------


def trace_example_markdown() -> str:
    """A worked Figure 1 narration: TSO admits, SC denies.

    Rendered by the live instrumentation — regenerating this block *is*
    the test that the trace layer still narrates correctly.
    """
    from repro.checking.models import MODELS
    from repro.kernel.search import check_with_spec
    from repro.litmus import CATALOG
    from repro.obs.render import render_trace
    from repro.obs.sink import RecordingSink, tracing

    entry = CATALOG["fig1-sb"]
    parts = [
        f"The paper's Figure 1 store-buffering history — `{entry.text}` — "
        "is the classic TSO/SC separator.  Traced under both models:",
        "",
    ]
    for model in ("TSO", "SC"):
        spec = MODELS[model].spec
        assert spec is not None
        with tracing(RecordingSink()) as sink:
            check_with_spec(spec, entry.history, prepass=True)
        parts.append(render_trace(sink.events, markdown=True, max_steps=60).rstrip())
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


# -- generated-block plumbing -------------------------------------------------

#: Relative doc path -> {block name -> producer}.
GENERATED_BLOCKS: dict[str, dict[str, Callable[[], str]]] = {
    "docs/cli.md": {"cli-reference": cli_reference_markdown},
    "docs/obs.md": {"trace-example": trace_example_markdown},
}

_BLOCK_RE = "<!-- generated:{name} start -->\n(.*?)<!-- generated:{name} end -->"


def extract_block(text: str, name: str) -> str | None:
    """The current contents of a generated block, or ``None`` if absent."""
    m = re.search(_BLOCK_RE.format(name=re.escape(name)), text, re.DOTALL)
    return None if m is None else m.group(1)


def inject_block(text: str, name: str, payload: str) -> str:
    """``text`` with the named block's contents replaced by ``payload``."""
    if extract_block(text, name) is None:
        raise ValueError(f"no generated block {name!r} in document")
    return re.sub(
        _BLOCK_RE.format(name=re.escape(name)),
        f"<!-- generated:{name} start -->\n{payload}<!-- generated:{name} end -->",
        text,
        flags=re.DOTALL,
    )


def stale_blocks(root: Path) -> list[str]:
    """Human-readable problems: missing docs, missing blocks, stale blocks."""
    problems: list[str] = []
    for rel, blocks in GENERATED_BLOCKS.items():
        path = root / rel
        if not path.exists():
            problems.append(f"{rel}: file missing")
            continue
        text = path.read_text(encoding="utf-8")
        for name, producer in blocks.items():
            current = extract_block(text, name)
            if current is None:
                problems.append(f"{rel}: generated block {name!r} missing")
            elif current != producer():
                problems.append(
                    f"{rel}: generated block {name!r} is stale "
                    "(run `python -m repro.obs.docgen --write`)"
                )
    return problems


def write_blocks(root: Path) -> list[str]:
    """Regenerate every block in place; returns the files rewritten."""
    changed: list[str] = []
    for rel, blocks in GENERATED_BLOCKS.items():
        path = root / rel
        text = path.read_text(encoding="utf-8")
        new = text
        for name, producer in blocks.items():
            new = inject_block(new, name, producer())
        if new != text:
            path.write_text(new, encoding="utf-8")
            changed.append(rel)
    return changed


# -- markdown link checking ---------------------------------------------------

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_links(text: str) -> Iterator[str]:
    """Every inline link target in ``text`` (images excluded)."""
    inside_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            inside_fence = not inside_fence
            continue
        if inside_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield m.group(1)


def broken_links(root: Path, *, subdirs: tuple[str, ...] = ("",)) -> list[str]:
    """Intra-repo links that do not resolve, as ``file: target`` strings.

    External links (``http(s)://``, ``mailto:``) and pure in-page anchors
    are skipped; a ``path#anchor`` link is checked for the path only.
    """
    problems: list[str] = []
    for sub in subdirs:
        base = root / sub if sub else root
        for md in sorted(base.glob("*.md")):
            text = md.read_text(encoding="utf-8")
            for target in iter_markdown_links(text):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{md.relative_to(root)}: {target}")
    return problems


# -- entry point (the CI docs job) --------------------------------------------


def _default_root() -> Path:
    """The repo root: cwd if it holds the docs, else up from this file.

    The src layout puts this module at ``src/repro/obs/docgen.py``, so a
    source checkout's root is three parents up; an installed package has
    no docs tree, and the caller must pass ``--root`` explicitly.
    """
    cwd = Path.cwd().resolve()
    if (cwd / "docs").is_dir() and (cwd / "README.md").exists():
        return cwd
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "docs").is_dir():
        return candidate
    return cwd


def main(argv: list[str] | None = None) -> int:
    """``--check`` verifies blocks + links; ``--write`` regenerates blocks."""
    ap = argparse.ArgumentParser(prog="repro.obs.docgen")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true", help="fail on stale docs")
    mode.add_argument("--write", action="store_true", help="regenerate blocks")
    ap.add_argument(
        "--root", default=None, help="repository root (default: auto-detect)"
    )
    args = ap.parse_args(argv)
    root = Path(args.root).resolve() if args.root else _default_root()
    if args.write:
        changed = write_blocks(root)
        print(
            "regenerated: " + ", ".join(changed) if changed else "all blocks current"
        )
        return 0
    problems = stale_blocks(root)
    problems += [f"broken link — {p}" for p in broken_links(root, subdirs=("", "docs"))]
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs OK: generated blocks current, all intra-repo links resolve")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
