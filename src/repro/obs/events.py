"""Typed trace events: what the instrumented layers can tell a sink.

Every event is a small frozen dataclass whose fields are JSON-compatible
primitives (strings, ints, bools, tuples of those), so a recorded trace
serializes losslessly: :func:`event_to_dict` / :func:`event_from_dict`
round-trip every event kind through plain dictionaries, and the round
trip is pinned by ``tests/obs/test_events.py``.

Operations are carried as their rendered text (``str(op)``), not as
:class:`~repro.core.operation.Operation` objects: events are
*observations* of a check, meant to outlive the history object that
produced them (in a JSONL file, a docs page, a terminal).

The emitting layers and what they say:

========================  ====================================================
event                     emitted by
========================  ====================================================
:class:`CheckStarted`     ``check_with_spec`` on entry
:class:`PhaseMark`        ``check_with_spec`` around prepass/compile/search
:class:`PrepassRule`      each necessary-condition rule of the static pre-pass
:class:`AttributionTried` layer 1, once per reads-from attribution
:class:`CandidateTried`   layer 2, once per mutual-consistency candidate
:class:`LabeledExtraTried`  layer 2, once per labeled serialization
:class:`PropagationApplied` layer 3, when unit-propagation edges are installed
:class:`ViewSearch`       layer 4, entering one processor's view search
:class:`NodeEntered`      layer 4, one operation placed in a partial view
:class:`Backtracked`      layer 4, that placement undone
:class:`ViewSolved`       layer 4, a legal view found
:class:`ViewStuck`        layer 4, the view search exhausted
:class:`VerdictReached`   ``check_with_spec`` on exit
:class:`SessionAppend`    an incremental session accepted one appended op
:class:`PrefixReuse`      how much prior-prefix work that append reused
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Type

__all__ = [
    "TraceEvent",
    "CheckStarted",
    "PhaseMark",
    "PrepassRule",
    "AttributionTried",
    "CandidateTried",
    "LabeledExtraTried",
    "PropagationApplied",
    "ViewSearch",
    "NodeEntered",
    "Backtracked",
    "ViewSolved",
    "ViewStuck",
    "VerdictReached",
    "SessionAppend",
    "PrefixReuse",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event carries a class-level ``kind`` tag."""

    kind: ClassVar[str] = ""


@dataclass(frozen=True)
class CheckStarted(TraceEvent):
    """A spec-driven check began: which model, how big the history is."""

    kind: ClassVar[str] = "check-started"
    model: str
    operations: int
    processors: int


@dataclass(frozen=True)
class PhaseMark(TraceEvent):
    """A named phase of the check started or ended.

    Phases are ``"prepass"``, ``"compile"`` and ``"search"``; timing
    sinks pair the marks to measure per-phase wall time (the events
    themselves carry no timestamps, so recorded traces stay
    deterministic).
    """

    kind: ClassVar[str] = "phase"
    phase: str
    mark: str  # "start" | "end"


@dataclass(frozen=True)
class PrepassRule(TraceEvent):
    """One necessary-condition rule of the static pre-pass ran.

    ``outcome`` is ``"deny"`` (the rule decided the check), ``"pass"``
    (it ran and found nothing) or ``"abstain"`` (its precondition — an
    unambiguous reads-from attribution — failed, so it never ran).
    """

    kind: ClassVar[str] = "prepass-rule"
    model: str
    rule: str
    outcome: str
    detail: str = ""


@dataclass(frozen=True)
class AttributionTried(TraceEvent):
    """Layer 1 fixed one reads-from attribution (the ``index``-th tried).

    ``assignment`` maps each read (rendered) to its source write
    (rendered), or ``""`` for an initial-value read.  ``unique`` is set
    when the litmus discipline made the attribution the only candidate.
    """

    kind: ClassVar[str] = "attribution"
    index: int
    unique: bool
    assignment: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class CandidateTried(TraceEvent):
    """Layer 2 proposed one mutual-consistency candidate serialization."""

    kind: ClassVar[str] = "candidate"
    index: int
    chains: tuple[tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class LabeledExtraTried(TraceEvent):
    """Layer 2 proposed one serialization of the labeled operations."""

    kind: ClassVar[str] = "labeled-extra"
    index: int
    order: tuple[str, ...] = ()


@dataclass(frozen=True)
class PropagationApplied(TraceEvent):
    """Unit-propagation edges were installed as predecessor masks."""

    kind: ClassVar[str] = "propagation"
    edges: int


@dataclass(frozen=True)
class ViewSearch(TraceEvent):
    """Layer 4 started searching one processor's view.

    ``proc`` is the processor name, or ``"*"`` for the common view of
    identical-view models (SC).
    """

    kind: ClassVar[str] = "view-search"
    proc: str
    operations: int


@dataclass(frozen=True)
class NodeEntered(TraceEvent):
    """The search placed ``op`` at position ``depth`` of a partial view."""

    kind: ClassVar[str] = "node"
    proc: str
    depth: int
    op: str


@dataclass(frozen=True)
class Backtracked(TraceEvent):
    """The search undid the placement of ``op`` at position ``depth``."""

    kind: ClassVar[str] = "backtrack"
    proc: str
    depth: int
    op: str


@dataclass(frozen=True)
class ViewSolved(TraceEvent):
    """A legal view was found for ``proc``."""

    kind: ClassVar[str] = "view-solved"
    proc: str
    order: tuple[str, ...] = ()


@dataclass(frozen=True)
class ViewStuck(TraceEvent):
    """No legal view exists for ``proc`` under the current candidate.

    ``reason`` is ``"search-exhausted"`` (the backtracking search ran
    dry) or ``"constraint-cycle"`` (the combined predecessor masks were
    cyclic, so no placement was ever attempted).
    """

    kind: ClassVar[str] = "view-stuck"
    proc: str
    reason: str = "search-exhausted"


@dataclass(frozen=True)
class VerdictReached(TraceEvent):
    """The check finished: the final verdict and its effort figure."""

    kind: ClassVar[str] = "verdict"
    model: str
    allowed: bool
    explored: int
    reason: str = ""


@dataclass(frozen=True)
class SessionAppend(TraceEvent):
    """An :class:`~repro.kernel.incremental.IncrementalCheck` session
    accepted one appended operation.

    ``operations`` is the history size *after* the append; ``reused`` is
    whether the session's compiled plane grew in place (the appended
    operation was non-rescuing under a unique reads-from attribution) or
    had to be rebuilt from scratch.
    """

    kind: ClassVar[str] = "session-append"
    model: str
    op: str
    operations: int
    reused: bool


@dataclass(frozen=True)
class PrefixReuse(TraceEvent):
    """How much prior-prefix search work one session append reused.

    ``hits`` counts candidate serializations whose failure was replayed
    from the surviving prefix's failure memory (their view searches were
    skipped); ``misses`` counts candidates searched fresh.  ``fallback``
    is set when the append invalidated the prefix state entirely and the
    check ran as a full one-shot search.
    """

    kind: ClassVar[str] = "prefix-reuse"
    model: str
    hits: int
    misses: int
    fallback: bool = False


#: Every concrete event type, keyed by its ``kind`` tag.
EVENT_KINDS: dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        CheckStarted,
        PhaseMark,
        PrepassRule,
        AttributionTried,
        CandidateTried,
        LabeledExtraTried,
        PropagationApplied,
        ViewSearch,
        NodeEntered,
        Backtracked,
        ViewSolved,
        ViewStuck,
        VerdictReached,
        SessionAppend,
        PrefixReuse,
    )
}


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """The event as a JSON-compatible dict (``kind`` plus its fields).

    Tuples become lists under :func:`json.dumps`; :func:`event_from_dict`
    restores them, so ``from_dict(loads(dumps(to_dict(e)))) == e``.
    """
    return {"kind": type(event).kind, **asdict(event)}


def _restore(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_restore(v) for v in value)
    return value


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from :func:`event_to_dict` output.

    Raises
    ------
    ValueError
        If the ``kind`` tag is missing or names no known event type.
    """
    kind = data.get("kind")
    cls = EVENT_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(f"unknown trace-event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    kwargs = {k: _restore(v) for k, v in data.items() if k in names}
    return cls(**kwargs)
