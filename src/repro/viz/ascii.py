"""ASCII rendering of histories, views, and the memory lattice.

The paper presents everything as small typeset figures; these helpers
render the same artifacts on a terminal — histories in the row-per-
processor layout of Figures 1-4, witness views in the ``S_{p+w}: …``
notation of Section 3, and the Figure 5 lattice as layered text.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx

from repro.core.history import SystemHistory
from repro.core.view import View
from repro.litmus.dsl import format_history

__all__ = ["render_history", "render_views", "render_lattice", "render_verdicts"]


def render_history(history: SystemHistory, *, title: str = "") -> str:
    """The row-per-processor layout of the paper's figures."""
    body = format_history(history)
    return f"{title}\n{body}" if title else body


def render_views(views: Mapping, *, indent: str = "  ") -> str:
    """Witness views in the paper's ``S_{p}: op op op`` notation."""
    lines = []
    for proc in sorted(views, key=str):
        view: View = views[proc]
        ops = " ".join(str(op) for op in view)
        lines.append(f"{indent}S_{{{proc}+w}}: {ops}")
    return "\n".join(lines)


def render_lattice(g: nx.DiGraph) -> str:
    """Layered rendering of a Hasse diagram (strongest models on top).

    Matches the paper's Figure 5 reading: a model is contained in (allows
    fewer histories than) everything connected below it.
    """
    lines = ["strongest"]
    for layer in nx.topological_generations(g):
        names = "   ".join(sorted(layer))
        lines.append(f"   {names}")
        edges = sorted(
            (a, b) for a, b in g.edges() if a in layer
        )
        if edges:
            lines.append(
                "   " + "  ".join(f"{a}->{b}" for a, b in edges)
            )
    lines.append("weakest")
    return "\n".join(lines)


def render_verdicts(
    name: str,
    verdicts: Mapping[str, bool],
    expected: Mapping[str, bool] | None = None,
) -> str:
    """One-line verdict summary, flagging divergence from the paper."""
    cells = []
    for model in verdicts:
        mark = "Y" if verdicts[model] else "N"
        if expected is not None and model in expected and expected[model] != verdicts[model]:
            mark += "(!)"
        cells.append(f"{model}={mark}")
    return f"{name}: " + " ".join(cells)
