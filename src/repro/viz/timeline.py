"""Column-per-processor timeline rendering of histories and runs.

The paper's figures lay each processor's operations out left-to-right on
its own row; for *runs* (where a global issue order exists) a vertical
timeline with one column per processor is the conventional rendering.
:func:`render_timeline` produces the latter from any
:class:`~repro.core.history.SystemHistory` plus an optional issue order,
and :func:`render_run` renders a :class:`~repro.programs.runner.RunResult`
with critical-section spans marked.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.history import SystemHistory
from repro.core.operation import Operation
from repro.programs.runner import RunResult

__all__ = ["render_timeline", "render_run"]


def _cell(op: Operation) -> str:
    star = "*" if op.labeled else ""
    if op.kind.value == "u":
        return f"u{star}({op.location}){op.read_value}->{op.value}"
    return f"{op.kind.value}{star}({op.location}){op.value}"


def render_timeline(
    history: SystemHistory,
    order: Sequence[Operation] | None = None,
) -> str:
    """One column per processor, one row per operation, in ``order``.

    ``order`` defaults to an interleaving by operation index (round-robin
    across processors), which is only a display order; pass a machine's
    issue order or a witness view for a semantically meaningful timeline.
    """
    if order is None:
        by_round: list[Operation] = []
        depth = max((len(history.ops_of(p)) for p in history.procs), default=0)
        for i in range(depth):
            for proc in history.procs:
                ops = history.ops_of(proc)
                if i < len(ops):
                    by_round.append(ops[i])
        order = by_round
    procs = list(history.procs)
    width = max(
        [len(_cell(op)) for op in history.operations] + [len(str(p)) for p in procs]
    ) + 2
    lines = ["".join(str(p).center(width) for p in procs)]
    lines.append("".join("-" * (width - 1) + " " for _ in procs))
    for op in order:
        col = procs.index(op.proc)
        row = [" " * width] * len(procs)
        row[col] = _cell(op).center(width)
        lines.append("".join(row).rstrip())
    return "\n".join(lines)


def render_run(result: RunResult) -> str:
    """Timeline of a program run with ``[CS enter]``/``[CS exit]`` marks.

    Operations appear in recording order per processor (the per-processor
    order is exact; cross-processor vertical alignment is approximate
    since the runner does not timestamp operations globally).
    """
    history = result.history
    lines = [render_timeline(history)]
    if result.cs_events:
        lines.append("")
        lines.append("critical-section events (step, processor, kind):")
        for step, proc, kind in result.cs_events:
            lines.append(f"  step {step:4d}  {proc}  {kind}")
        lines.append(f"peak occupancy: {result.max_in_cs}")
        if result.mutex_violation:
            lines.append("MUTUAL EXCLUSION VIOLATED")
    return "\n".join(lines)
