"""Graphviz DOT export of order relations and the memory lattice.

No Graphviz binding is required at run time — the functions emit DOT
source text that any external renderer accepts.  Used by the examples to
dump the Figure 5 diagram and the causal/semi-causal orders of witness
histories.
"""

from __future__ import annotations


import networkx as nx

from repro.core.operation import Operation
from repro.orders.relation import Relation

__all__ = ["relation_to_dot", "lattice_to_dot"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def relation_to_dot(
    rel: Relation[Operation],
    *,
    name: str = "relation",
    transitive_reduce: bool = True,
) -> str:
    """DOT digraph of an operation order (optionally transitively reduced).

    Reduction makes closures readable: the paper draws ``->co`` and
    ``->sem`` as their generating edges, not their closures.
    """
    g = nx.DiGraph()
    g.add_nodes_from(str(op) for op in rel.items)
    g.add_edges_from((str(a), str(b)) for a, b in rel.pairs())
    if transitive_reduce and nx.is_directed_acyclic_graph(g):
        g = nx.transitive_reduction(g)
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in sorted(g.nodes):
        lines.append(f"  {_quote(node)};")
    for a, b in sorted(g.edges):
        lines.append(f"  {_quote(a)} -> {_quote(b)};")
    lines.append("}")
    return "\n".join(lines)


def lattice_to_dot(g: nx.DiGraph, *, name: str = "figure5") -> str:
    """DOT digraph of a memory-strength Hasse diagram (stronger → weaker)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=box];']
    for node in sorted(g.nodes):
        lines.append(f"  {_quote(str(node))};")
    for a, b in sorted(g.edges):
        lines.append(f"  {_quote(str(a))} -> {_quote(str(b))};")
    lines.append("}")
    return "\n".join(lines)
