"""Rendering: ASCII figures and Graphviz DOT export."""

from repro.viz.ascii import render_history, render_lattice, render_verdicts, render_views
from repro.viz.dot import lattice_to_dot, relation_to_dot
from repro.viz.timeline import render_run, render_timeline

__all__ = [
    "lattice_to_dot",
    "relation_to_dot",
    "render_history",
    "render_run",
    "render_timeline",
    "render_lattice",
    "render_verdicts",
    "render_views",
]
