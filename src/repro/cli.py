"""Command-line interface: the framework's operations as subcommands.

::

    python -m repro check  "p: w(x)1 r(y)0 | q: w(y)1 r(x)0" --model TSO
    python -m repro check  --stream [--model SC,TSO,PRAM] [seed-history]
    python -m repro classify "p: w(x)1 r(y)0 | q: w(y)1 r(x)0"
    python -m repro explain fig1-sb SC
    python -m repro catalog [--name fig1-sb]
    python -m repro lattice [--procs 2] [--ops 2] [--jobs 4] [--dot]
    python -m repro sweep   [--source catalog] [--models SC,TSO,PC] [--jobs 4]
    python -m repro bakery  [--machine rc_pc] [--runs 100] [--adversarial]
    python -m repro fuzz    [--seed 0] [--count 500] [--shapes default] [--jobs 4]
    python -m repro lint history "p: w(x)1 | q: r(x)2" [--model SC]
    python -m repro lint spec [--broken-fixtures]
    python -m repro lint program figure6
    python -m repro trace fig1 TSO [--markdown] [--no-prepass]
    python -m repro profile [--models SC,TSO] [--repeat 3] [--markdown]
    python -m repro serve  [--host 127.0.0.1] [--port 8979] [--store URL]
    python -m repro store migrate results.jsonl sqlite:results.db
    python -m repro store compact results.db
    python -m repro store summary results.db
    python -m repro models

Commands that accept a history accept either litmus notation or a
catalog entry name; an unambiguous prefix of a catalog name (``fig1``
for ``fig1-sb``) also resolves.

Exit status: 0 on success; for ``check``, 0 when the history is allowed
and 1 when it is rejected (so the command composes in shell scripts);
2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.checking import MODELS, PAPER_MODELS, check, model_names
from repro.core.errors import ReproError
from repro.lattice import (
    FIGURE5_EDGES,
    HistorySpace,
    canonical_key,
    classify_histories,
    containment_violations,
    empirical_hasse,
    enumerate_histories,
)
from repro.litmus import CATALOG, parse_history
from repro.machines import PRAMMachine, RCMachine, SCMachine, TSOMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.mutex import bakery_program
from repro.viz import lattice_to_dot, render_history, render_lattice, render_views

__all__ = ["main", "build_parser"]

_BAKERY_MACHINES = {
    "sc": lambda: SCMachine(("p0", "p1")),
    "tso": lambda: TSOMachine(("p0", "p1")),
    "pram": lambda: PRAMMachine(("p0", "p1")),
    "rc_sc": lambda: RCMachine(("p0", "p1"), labeled_mode="sc"),
    "rc_pc": lambda: RCMachine(("p0", "p1"), labeled_mode="pc"),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for shell-completion generators and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Characterization framework for scalable shared memories "
        "(Kohli, Neiger & Ahamad, ICPP 1993).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="decide one history under one model")
    p_check.add_argument(
        "history",
        nargs="?",
        default=None,
        help="litmus notation, e.g. 'p: w(x)1 | q: r(x)1' "
        "(with --stream: an optional seed prefix)",
    )
    p_check.add_argument(
        "--model",
        default="SC",
        help="model name (see `models`); with --stream, a comma-separated "
        "model set",
    )
    p_check.add_argument(
        "--views", action="store_true", help="print witness views when allowed"
    )
    p_check.add_argument(
        "--stream",
        action="store_true",
        help="incremental mode: read op lines ('proc: op [op ...]') from "
        "stdin and print a per-op admit/deny verdict after each append",
    )
    p_check.add_argument(
        "--backend",
        choices=("python", "numpy"),
        default=None,
        help="kernel mask backend (default: REPRO_BACKEND or python); "
        "verdicts are identical either way",
    )

    p_classify = sub.add_parser("classify", help="decide one history under all models")
    p_classify.add_argument("history")

    p_explain = sub.add_parser(
        "explain",
        help="explain why a model rejects (or how it admits) a history",
    )
    p_explain.add_argument(
        "history", help="litmus notation or a catalog entry name (e.g. fig1-sb)"
    )
    p_explain.add_argument("model", help="spec-backed model name (see `models`)")

    p_catalog = sub.add_parser("catalog", help="sweep or show litmus catalog entries")
    p_catalog.add_argument("--name", help="show just this entry")

    p_lattice = sub.add_parser(
        "lattice", help="measure the model lattice by enumeration"
    )
    p_lattice.add_argument("--procs", type=int, default=2)
    p_lattice.add_argument("--ops", type=int, default=2)
    p_lattice.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_lattice.add_argument(
        "--models",
        default="all",
        help="comma-separated panel, or 'all' (every registered model; "
        "the default) or 'paper' (Figure 5's five)",
    )
    p_lattice.add_argument(
        "--paper",
        action="store_true",
        help="shorthand for --models paper: Figure 5's sub-lattice only",
    )
    p_lattice.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_lattice.add_argument(
        "--report", metavar="FILE", help="write a markdown survey report"
    )

    p_sweep = sub.add_parser(
        "sweep", help="batch-check a history source against a model set"
    )
    p_sweep.add_argument(
        "--source",
        choices=("catalog", "space", "random"),
        default="catalog",
        help="where histories come from",
    )
    p_sweep.add_argument(
        "--models",
        default="all",
        help="comma-separated model names, or 'all' (default)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_sweep.add_argument(
        "--out",
        metavar="STORE",
        help="append results to this store (a JSONL path, or a store URL "
        "like sqlite:results.db — see `store`)",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip keys already completed in --out",
    )
    p_sweep.add_argument(
        "--store-views",
        action="store_true",
        help="also record witness views in result records",
    )
    p_sweep.add_argument(
        "--procs", type=int, default=2, help="history shape (space/random)"
    )
    p_sweep.add_argument(
        "--ops", type=int, default=2, help="ops per processor (space/random)"
    )
    p_sweep.add_argument(
        "--count", type=int, default=100, help="sample count (random)"
    )
    p_sweep.add_argument("--seed", type=int, default=0, help="generator seed (random)")
    p_sweep.add_argument(
        "--p-write", type=float, default=0.5, help="write probability (random)"
    )
    p_sweep.add_argument(
        "--no-prepass",
        action="store_true",
        help="disable the static DENY pre-pass (same verdicts, more searching)",
    )
    p_sweep.add_argument(
        "--backend",
        choices=("python", "numpy"),
        default=None,
        help="kernel mask backend for every worker (default: REPRO_BACKEND "
        "or python); verdicts are identical either way",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: cross-examine the kernel, legacy solver, "
        "fast paths and pre-pass on random histories",
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="base campaign seed")
    p_fuzz.add_argument(
        "--count", type=int, default=500, help="total histories across all shapes"
    )
    p_fuzz.add_argument(
        "--shapes",
        default="default",
        help="comma-separated shape presets, 'default', or 'all' "
        "(see docs/diff.md)",
    )
    p_fuzz.add_argument(
        "--models",
        default="all",
        help="comma-separated model names, 'all' (every spec-backed "
        "registered model, the default), or 'paper' (Figure 5 set)",
    )
    p_fuzz.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="record discrepancies as found, without witness minimization",
    )
    p_fuzz.add_argument(
        "--corpus",
        metavar="FILE",
        help="append findings to this JSONL discrepancy corpus",
    )
    p_fuzz.add_argument(
        "--resume",
        action="store_true",
        help="skip samples already checked in --corpus",
    )

    p_bakery = sub.add_parser("bakery", help="run the Section 5 Bakery experiment")
    p_bakery.add_argument(
        "--machine", choices=sorted(_BAKERY_MACHINES), default="rc_pc"
    )
    p_bakery.add_argument("--runs", type=int, default=100)
    p_bakery.add_argument(
        "--adversarial",
        action="store_true",
        help="use the delivery-delaying scheduler instead of random ones",
    )

    p_spec = sub.add_parser(
        "spectrum", help="the strongest models allowing a history"
    )
    p_spec.add_argument("history")

    p_lint = sub.add_parser(
        "lint", help="static analysis: history pre-pass, spec linter, progcheck"
    )
    lint_sub = p_lint.add_subparsers(dest="lint_target", required=True)

    p_lint_history = lint_sub.add_parser(
        "history",
        help="polynomial ADMIT/DENY pre-pass on one history "
        "(exit 0: no denial; 1: some model denies; 2: usage error)",
    )
    p_lint_history.add_argument(
        "history", help="litmus notation or a catalog entry name"
    )
    p_lint_history.add_argument(
        "--model",
        default="all",
        help="spec-backed model name, or 'all' (default)",
    )
    p_lint_history.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_lint_spec = lint_sub.add_parser(
        "spec",
        help="lint memory-model specs (registry by default; exit 0: clean; "
        "1: error-level findings; 2: usage error)",
    )
    p_lint_spec.add_argument("--name", help="lint just this registered spec")
    p_lint_spec.add_argument(
        "--broken-fixtures",
        action="store_true",
        help="lint the deliberately broken fixture specs instead",
    )
    p_lint_spec.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_lint_program = lint_sub.add_parser(
        "program",
        help="static race/labeling analysis of a pseudocode program "
        "(exit 0: properly labeled; 1: potential races; 2: usage error)",
    )
    p_lint_program.add_argument(
        "program",
        nargs="?",
        help="a built-in name (figure6, peterson, naive-lock, "
        "mislabeled-bakery) — or use --file",
    )
    p_lint_program.add_argument(
        "--file", metavar="PATH", help="analyze pseudocode read from a file"
    )
    p_lint_program.add_argument(
        "--shared",
        default="",
        help="comma-separated bare shared names (with --file)",
    )
    p_lint_program.add_argument(
        "--threads", type=int, default=2, help="concurrent copies to assume"
    )
    p_lint_program.add_argument(
        "--fix",
        action="store_true",
        help="print the program with the minimal `sync` relabeling applied",
    )
    p_lint_program.add_argument(
        "--certify",
        action="store_true",
        help="emit a machine-checkable DRF certificate (JSON) when the "
        "program is certifiably race-free",
    )
    p_lint_program.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_trace = sub.add_parser(
        "trace",
        help="narrate one check's search as a human-readable trace",
    )
    p_trace.add_argument(
        "history", help="litmus notation or a catalog entry name (prefixes ok)"
    )
    p_trace.add_argument("model", help="spec-backed model name (see `models`)")
    p_trace.add_argument(
        "--markdown", action="store_true", help="render markdown instead of ASCII"
    )
    p_trace.add_argument(
        "--max-steps",
        type=int,
        default=400,
        help="cap on rendered search steps (placements + backtracks)",
    )
    p_trace.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the static pre-pass phase of the narration",
    )

    p_profile = sub.add_parser(
        "profile",
        help="per-phase timing tables over the litmus catalog",
    )
    p_profile.add_argument(
        "--models",
        default="all",
        help="comma-separated spec-backed model names, or 'all' (default)",
    )
    p_profile.add_argument(
        "--repeat", type=int, default=1, help="profile each check this many times"
    )
    p_profile.add_argument(
        "--markdown", action="store_true", help="render markdown tables"
    )
    p_profile.add_argument(
        "--counters",
        action="store_true",
        help="also print the summed search-event counters",
    )
    p_profile.add_argument(
        "--no-prepass",
        action="store_true",
        help="profile the raw kernel without the static pre-pass",
    )

    p_serve = sub.add_parser(
        "serve",
        help="consistency checking as a service: an async HTTP front end "
        "over the engine",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8979, help="bind port")
    p_serve.add_argument(
        "--store",
        metavar="STORE",
        help="persist verdicts to this store (JSONL path or sqlite: URL); "
        "omitted = memory only",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="checker worker threads"
    )
    p_serve.add_argument(
        "--sweep-jobs",
        type=int,
        default=1,
        help="worker processes per sweep job (1 = in the worker thread)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request wall-clock budget in seconds",
    )
    p_serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=1 << 20,
        help="reject request bodies larger than this (HTTP 413)",
    )
    p_serve.add_argument(
        "--no-prepass",
        action="store_true",
        help="disable the static DENY pre-pass (same verdicts, more searching)",
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    p_serve.add_argument(
        "--backend",
        choices=("python", "numpy"),
        default=None,
        help="kernel mask backend for the whole service (default: "
        "REPRO_BACKEND or python); verdicts are identical either way",
    )

    p_store = sub.add_parser(
        "store",
        help="result-store maintenance: migrate between backends, compact, "
        "summarize",
    )
    store_sub = p_store.add_subparsers(dest="store_action", required=True)
    p_store_migrate = store_sub.add_parser(
        "migrate",
        help="stream every record of one store into another "
        "(e.g. JSONL -> sqlite:)",
    )
    p_store_migrate.add_argument("source", help="source store path or URL")
    p_store_migrate.add_argument("dest", help="destination store path or URL")
    p_store_compact = store_sub.add_parser(
        "compact", help="drop result records superseded by a later re-run"
    )
    p_store_compact.add_argument("store", help="store path or URL")
    p_store_summary = store_sub.add_parser(
        "summary", help="print a store's totals and per-model allowed counts"
    )
    p_store_summary.add_argument("store", help="store path or URL")

    sub.add_parser("models", help="list registered memory models")
    return parser


def _resolve_history(text: str):
    """A ``(history, label)`` pair from litmus notation or a catalog name.

    Exact catalog names win; otherwise an unambiguous prefix of a catalog
    name resolves (``fig1`` -> ``fig1-sb``); anything else is parsed as
    litmus notation.
    """
    entry = CATALOG.get(text)
    if entry is None:
        matches = [name for name in CATALOG if name.startswith(text)]
        if len(matches) == 1:
            entry = CATALOG[matches[0]]
    if entry is not None:
        return entry.history, entry.name
    return parse_history(text), None


def _cmd_check(args: argparse.Namespace) -> int:
    if args.backend is not None:
        from repro.kernel.backend import set_backend

        set_backend(args.backend)
    if args.stream:
        return _cmd_check_stream(args)
    if args.history is None:
        print(
            "check: a history argument is required unless --stream",
            file=sys.stderr,
        )
        return 2
    history, _ = _resolve_history(args.history)
    result = check(history, args.model)
    verdict = "allowed" if result.allowed else "NOT allowed"
    print(f"{args.model}: {verdict}")
    if result.allowed and args.views and result.views:
        print(render_views(result.views))
    if not result.allowed and result.reason:
        print(f"reason: {result.reason}")
    return 0 if result.allowed else 1


def _cmd_check_stream(args: argparse.Namespace) -> int:
    """``check --stream``: per-op verdicts over an incremental session.

    Reads op lines from stdin (blank lines and ``#`` comments skipped),
    appends each operation to one :class:`~repro.engine.session.EngineSession`,
    and prints one verdict row per op.  A model's denial reason is shown
    once, on the append that flips it to DENY; the exit status reflects
    the *final* prefix (0 all-admit, 1 any-deny, 2 on a bad line).
    """
    from repro.engine.session import EngineSession
    from repro.obs import SessionStatsSink, tracing

    models = tuple(m for m in args.model.split(",") if m)
    seed = label = None
    if args.history is not None:
        seed, label = _resolve_history(args.history)

    def row(results: dict) -> str:
        return "  ".join(
            f"{m}={'admit' if r.allowed else 'DENY'}"
            for m, r in results.items()
        )

    sink = SessionStatsSink()
    with tracing(sink):
        try:
            session = EngineSession(models, history=seed)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        denied = set(session.denying())
        if seed is not None:
            print(
                f"seed {label or 'history'}: "
                f"{len(session.history.operations)} op(s)  "
                f"{row(session.last_results)}",
                flush=True,
            )
        count = 0
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                appended = session.append_line(line)
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            for op, results in appended:
                count += 1
                print(f"[{count}] {op}  {row(results)}", flush=True)
                for m, r in results.items():
                    if not r.allowed and m not in denied and r.reason:
                        print(f"    {m}: {r.reason}", flush=True)
                        denied.add(m)
    print(f"-- {count} op(s) appended; final: {row(session.last_results)}")
    c = sink.session_counters()
    print(
        f"-- reuse: {c['planes_grown']}/{c['appends']} append checks grew "
        f"the plane in place; {c['reuse_hits']} prefix-memory hit(s), "
        f"{c['fallbacks']} full search(es)"
    )
    if args.views:
        for m, r in session.last_results.items():
            if r.allowed and r.views:
                print(f"{m}:")
                print(render_views(r.views))
    return 0 if not session.denying() else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    history, _ = _resolve_history(args.history)
    print(render_history(history, title="history:"))
    for name in model_names():
        try:
            allowed = check(history, name).allowed
        except ReproError as exc:
            print(f"  {name:16s} not applicable ({exc})")
            continue
        print(f"  {name:16s} {'allowed' if allowed else 'NOT allowed'}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.checking import explain_with_spec

    history, _ = _resolve_history(args.history)
    model = MODELS.get(args.model)
    if model is None:
        print(f"unknown model {args.model!r}", file=sys.stderr)
        return 2
    if model.spec is None:
        print(
            f"{args.model} is an axiomatic reference model without a "
            "parameter spec; explain needs a spec-backed model",
            file=sys.stderr,
        )
        return 2
    print(render_history(history, title="history:"))
    result = explain_with_spec(model.spec, history)
    if result.allowed:
        print(f"\n{args.model}: allowed "
              f"(after {result.explored} candidate serialization(s))")
        if result.views:
            print(render_views(result.views))
        return 0
    print(f"\n{args.model}: NOT allowed")
    if result.counterexample is not None:
        print(result.counterexample.render())
    elif result.reason:
        print(result.reason)
    return 1


def _cmd_catalog(args: argparse.Namespace) -> int:
    if args.name:
        test = CATALOG.get(args.name)
        if test is None:
            print(f"unknown catalog entry {args.name!r}", file=sys.stderr)
            return 2
        print(render_history(test.history, title=f"{test.name}: {test.source}"))
        for model, expected in test.expected.items():
            got = check(test.history, model).allowed
            mark = "" if got == expected else "  <-- DIVERGES"
            print(f"  {model:16s} expected={expected} measured={got}{mark}")
        return 0
    for name, test in CATALOG.items():
        verdicts = " ".join(
            f"{m}={'Y' if check(test.history, m).allowed else 'N'}"
            for m in test.expected
        )
        print(f"{name:22s} {verdicts}")
    return 0


def _cmd_lattice(args: argparse.Namespace) -> int:
    space = HistorySpace(procs=args.procs, ops_per_proc=args.ops)
    seen: set = set()
    histories = []
    for h in enumerate_histories(space):
        key = canonical_key(h)
        if key not in seen:
            seen.add(key)
            histories.append(h)
    # The panel defaults to every registered model and the edge set to
    # the registry-derived lattice, so newly registered models are
    # containment-checked without any CLI plumbing; --paper restricts
    # both to the verdict-locked Figure 5 sub-lattice.
    from repro.lattice import extended_edges

    selector = "paper" if args.paper else args.models
    if selector == "paper":
        models: tuple[str, ...] = PAPER_MODELS
        edges = FIGURE5_EDGES
    elif selector == "all":
        models = model_names()
        edges = extended_edges(models)
    else:
        models = tuple(name.strip() for name in selector.split(","))
        unknown = [name for name in models if name not in MODELS]
        if unknown:
            print(f"unknown model(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        edges = extended_edges(models)
    from repro.engine import CheckEngine

    result = classify_histories(histories, models, engine=CheckEngine(jobs=args.jobs))
    print(f"{len(histories)} canonical histories; counts: {result.counts()}")
    violations = containment_violations(result, edges)
    print(f"lattice violations ({len(edges)} claimed edges): {len(violations)}")
    g = empirical_hasse(result)
    print(lattice_to_dot(g) if args.dot else render_lattice(g))
    if args.report:
        from repro.lattice import lattice_report

        with open(args.report, "w") as fh:
            fh.write(lattice_report(result))
        print(f"report written to {args.report}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import CheckEngine, SweepSpec, open_store

    models = ("all",) if args.models == "all" else tuple(args.models.split(","))
    spec = SweepSpec(
        source=args.source,
        models=models,
        procs=args.procs,
        ops_per_proc=args.ops,
        count=args.count,
        seed=args.seed,
        p_write=args.p_write,
    )
    engine = CheckEngine(
        jobs=args.jobs,
        store_views=args.store_views,
        prepass=not args.no_prepass,
        backend=args.backend,
    )
    if args.out:
        with open_store(args.out) as store:
            report = engine.run(spec, store=store, resume=args.resume)
    else:
        if args.resume:
            print("error: --resume needs --out", file=sys.stderr)
            return 2
        report = engine.run(spec)
    print(report.render())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.checking.models import PAPER_MODELS
    from repro.diff import DiscrepancyCorpus, FuzzConfig, run_fuzz
    from repro.engine import CheckEngine

    if args.models == "paper":
        models = PAPER_MODELS
    elif args.models == "all":
        models = tuple(n for n in model_names() if MODELS[n].spec is not None)
    else:
        models = tuple(args.models.split(","))
    if args.resume and not args.corpus:
        print("error: --resume needs --corpus", file=sys.stderr)
        return 2
    config = FuzzConfig(
        seed=args.seed,
        count=args.count,
        shapes=tuple(args.shapes.split(",")),
        models=models,
        shrink=not args.no_shrink,
    )
    engine = CheckEngine(jobs=args.jobs) if args.jobs > 1 else None
    if args.corpus:
        with DiscrepancyCorpus(args.corpus) as corpus:
            report = run_fuzz(config, engine=engine, corpus=corpus, resume=args.resume)
        print(report.render())
        print(f"corpus written to {args.corpus}")
    else:
        report = run_fuzz(config, engine=engine)
        print(report.render())
    return 0 if report.clean else 1


def _cmd_bakery(args: argparse.Namespace) -> int:
    factory = _BAKERY_MACHINES[args.machine]
    labeled = args.machine.startswith("rc_")
    program = bakery_program(2, labeled=labeled)
    if args.adversarial:
        result = run(factory(), program, DelayDeliveriesScheduler(), max_steps=5000)
        status = "VIOLATED" if result.mutex_violation else "held"
        print(f"{args.machine} adversarial: mutual exclusion {status}")
        return 0
    violations = 0
    for seed in range(args.runs):
        result = run(factory(), program, RandomScheduler(seed), max_steps=5000)
        if result.mutex_violation:
            violations += 1
    print(
        f"{args.machine}: {violations}/{args.runs} random schedules "
        "violated mutual exclusion"
    )
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from repro.analysis.spectrum import accepting_models, strength_frontier

    history, _ = _resolve_history(args.history)
    print(render_history(history, title="history:"))
    frontier = strength_frontier(history)
    accepted = accepting_models(history)
    if not accepted:
        print("\nno model allows this history (a read observes an "
              "impossible value)")
        return 1
    print(f"\nstrength frontier: {', '.join(frontier)}")
    print(f"also allowed by: {', '.join(sorted(accepted - set(frontier))) or '(nothing weaker)'}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return {
        "history": _lint_history,
        "spec": _lint_spec,
        "program": _lint_program,
    }[args.lint_target](args)


def _lint_history(args: argparse.Namespace) -> int:
    """Run the polynomial pre-pass; exit 1 when any model gets a DENY."""
    import json

    from repro.staticcheck import prepass_check

    history, _ = _resolve_history(args.history)
    if args.model == "all":
        names = [n for n in model_names() if MODELS[n].spec is not None]
    else:
        model = MODELS.get(args.model)
        if model is None or model.spec is None:
            print(
                f"unknown or spec-less model {args.model!r} "
                "(the pre-pass needs a spec-backed model)",
                file=sys.stderr,
            )
            return 2
        names = [args.model]
    rows = []
    denied = 0
    for name in names:
        spec = MODELS[name].spec
        assert spec is not None
        verdict = prepass_check(spec, history)
        if verdict.decided and verdict.allowed:
            status, reason = "admit", "witness constructed"
        elif verdict.decided:
            status, reason = "deny", verdict.reason
            denied += 1
        else:
            status = "unknown"
            reason = "search needed; ran " + ", ".join(verdict.checks_run)
        rows.append(
            {
                "model": name,
                "status": status,
                "check": verdict.check or None,
                "reason": reason,
            }
        )
    if args.json:
        print(json.dumps({"history": args.history, "verdicts": rows}, indent=2))
        return 1 if denied else 0
    print(render_history(history, title="history:"))
    for row in rows:
        name, status = row["model"], row["status"]
        if status == "admit":
            print(f"  {name:16s} ADMIT ({row['check']}): {row['reason']}")
        elif status == "deny":
            print(f"  {name:16s} DENY ({row['check']}): {row['reason']}")
        else:
            print(f"  {name:16s} unknown ({row['reason']})")
    return 1 if denied else 0


def _lint_spec(args: argparse.Namespace) -> int:
    """Lint specs; exit 1 when any error-level finding is reported."""
    import json

    from repro.spec import ALL_SPECS
    from repro.staticcheck import broken_fixture_specs, lint_registry, lint_spec

    if args.broken_fixtures:
        reports = {
            spec.name: lint_spec(spec) for spec in broken_fixture_specs()
        }
    elif args.name:
        by_name = {spec.name: spec for spec in ALL_SPECS}
        spec = by_name.get(args.name)
        if spec is None:
            print(f"unknown spec {args.name!r}", file=sys.stderr)
            return 2
        reports = {spec.name: lint_spec(spec)}
    else:
        reports = lint_registry()
    errors = sum(
        1
        for findings in reports.values()
        for finding in findings
        if finding.level == "error"
    )
    if args.json:
        payload = {
            name: [
                {
                    "code": finding.code,
                    "level": finding.level,
                    "message": finding.message,
                }
                for finding in findings
            ]
            for name, findings in reports.items()
        }
        print(json.dumps(payload, indent=2))
        return 1 if errors else 0
    for name, findings in reports.items():
        if not findings:
            print(f"{name}: clean")
            continue
        print(f"{name}:")
        for finding in findings:
            print(f"  {finding.render()}")
    return 1 if errors else 0


#: Built-in analyzable programs: name -> (text factory, shared names).
_LINT_PROGRAMS = {
    "figure6": ("repro.programs.figure6", "FIGURE6_TEXT", ("shared",)),
    "peterson": (
        "repro.programs.algorithm_texts",
        "PETERSON_TEXT",
        ("turn", "shared"),
    ),
    "naive-lock": ("repro.programs.algorithm_texts", "NAIVE_LOCK_TEXT", ("lock",)),
    "mislabeled-bakery": (
        "repro.programs.algorithm_texts",
        "MISLABELED_BAKERY_TEXT",
        ("shared",),
    ),
}


def _lint_program(args: argparse.Namespace) -> int:
    """Static race analysis; exit 1 when potential races are reported.

    ``--fix`` prints the program with the minimal ``sync`` relabeling
    applied (exit 0 — the fixed program has no races by construction);
    ``--certify`` emits a DRF certificate as JSON, exit 1 when the
    program is not certifiable.
    """
    import importlib
    import json

    from repro.staticcheck import analyze_program
    from repro.staticcheck.drf import certify_program
    from repro.staticcheck.progcheck import infer_labels

    if args.file:
        with open(args.file) as fh:
            text = fh.read()
        shared = tuple(s for s in args.shared.split(",") if s)
        name = args.file
    elif args.program in _LINT_PROGRAMS:
        module_name, attr, shared = _LINT_PROGRAMS[args.program]
        text = getattr(importlib.import_module(module_name), attr)
        name = args.program
    else:
        known = ", ".join(sorted(_LINT_PROGRAMS))
        print(
            f"unknown program {args.program!r} (known: {known}; "
            "or pass --file)",
            file=sys.stderr,
        )
        return 2

    if args.fix:
        patch = infer_labels(text, shared=shared, name=name, threads=args.threads)
        if args.json:
            print(
                json.dumps(
                    {
                        "program": name,
                        "lines": list(patch.lines),
                        "fixed_text": patch.apply(text),
                    },
                    indent=2,
                )
            )
            return 0
        print(f"# {patch.render().splitlines()[0]}")
        print(patch.apply(text), end="")
        return 0

    if args.certify:
        result = certify_program(
            text, shared=shared, name=name, threads=args.threads
        )
        if result.certified:
            assert result.certificate is not None
            print(result.certificate.to_json())
            return 0
        if args.json:
            print(json.dumps({"certified": False, "problems": list(result.problems)}))
        else:
            print(f"{name}: not certifiable:", file=sys.stderr)
            for problem in result.problems:
                print(f"  {problem}", file=sys.stderr)
        return 1

    report = analyze_program(text, shared=shared, name=name, threads=args.threads)
    if args.json:
        payload = {
            "program": name,
            "threads": report.threads,
            "properly_labeled": report.properly_labeled,
            "races": [race.render() for race in report.races],
            "cs_protected": [race.render() for race in report.cs_protected],
            "accesses": [access.render() for access in report.accesses],
        }
        print(json.dumps(payload, indent=2))
        return 1 if report.races else 0
    print(report.render())
    return 1 if report.races else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.checking import check_with_spec
    from repro.obs import RecordingSink, render_trace

    history, label = _resolve_history(args.history)
    model = MODELS.get(args.model)
    if model is None or model.spec is None:
        print(
            f"unknown or spec-less model {args.model!r} "
            "(trace needs a spec-backed model; see `models`)",
            file=sys.stderr,
        )
        return 2
    title = f"history ({label}):" if label else "history:"
    if args.markdown:
        print("```text")
    print(render_history(history, title=title))
    if args.markdown:
        print("```")
    print()
    sink = RecordingSink()
    result = check_with_spec(
        model.spec, history, prepass=not args.no_prepass, trace=sink
    )
    print(
        render_trace(sink.events, markdown=args.markdown, max_steps=args.max_steps)
    )
    if result.allowed and result.views:
        print("witness views:")
        if args.markdown:
            print("```text")
        print(render_views(result.views))
        if args.markdown:
            print("```")
    return 0 if result.allowed else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import ProfileAggregate, profile_check

    if args.models == "all":
        names = [n for n in model_names() if MODELS[n].spec is not None]
    else:
        names = []
        for name in args.models.split(","):
            model = MODELS.get(name)
            if model is None or model.spec is None:
                print(
                    f"unknown or spec-less model {name!r} "
                    "(profile needs spec-backed models)",
                    file=sys.stderr,
                )
                return 2
            names.append(name)
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    agg = ProfileAggregate()
    checks = 0
    for entry in CATALOG.values():
        for name in names:
            spec = MODELS[name].spec
            assert spec is not None
            for _ in range(args.repeat):
                _, profile = profile_check(
                    spec, entry.history, prepass=not args.no_prepass
                )
                agg.add(profile)
                checks += 1
    print(
        f"profiled {checks} check(s): {len(CATALOG)} catalog histories x "
        f"{len(names)} model(s) x {args.repeat} repeat(s)"
    )
    print()
    print(agg.render(markdown=args.markdown))
    if args.counters:
        print()
        print(agg.render_counters(markdown=args.markdown))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_server

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        store_url=args.store,
        workers=args.workers,
        sweep_jobs=args.sweep_jobs,
        prepass=not args.no_prepass,
        request_timeout=args.timeout,
        max_request_bytes=args.max_request_bytes,
        log_requests=not args.quiet,
        backend=args.backend,
    )
    return run_server(config)


def _cmd_store(args: argparse.Namespace) -> int:
    import json as _json

    from repro.engine import migrate_store, open_store

    if args.store_action == "migrate":
        out = migrate_store(args.source, args.dest)
        print(
            f"migrated {out['records']} record(s) from {args.source} "
            f"to {args.dest}"
        )
        print(_json.dumps(out["summary"], indent=2, sort_keys=True))
        return 0
    with open_store(args.store) as store:
        if args.store_action == "compact":
            out = store.compact()
            print(
                f"compacted {args.store}: kept {out['kept']} record(s), "
                f"dropped {out['dropped']} superseded"
            )
            return 0
        print(_json.dumps(store.summarize(), indent=2, sort_keys=True))
        return 0


def _cmd_models(args: argparse.Namespace) -> int:
    for name in model_names():
        spec = MODELS[name].spec
        desc = spec.description if spec else "axiomatic reference model (no spec)"
        first_sentence = desc.split(". ")[0].strip()
        print(f"{name:16s} {first_sentence}")
    return 0


_COMMANDS = {
    "check": _cmd_check,
    "classify": _cmd_classify,
    "explain": _cmd_explain,
    "catalog": _cmd_catalog,
    "lattice": _cmd_lattice,
    "sweep": _cmd_sweep,
    "fuzz": _cmd_fuzz,
    "bakery": _cmd_bakery,
    "spectrum": _cmd_spectrum,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "store": _cmd_store,
    "models": _cmd_models,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
