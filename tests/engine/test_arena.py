"""The shared-memory plane arena: round-trips, ownership, crash cleanup.

The arena's contract has three parts:

* fidelity — a decoded segment yields a value-equal history and a plane
  whose seeded mask rows equal the originals bit for bit, so a warm
  worker computes exactly what a cold one would;
* ownership — the parent arena is the only unlinker: eviction, release,
  close, and garbage collection all retire segments, and a worker dying
  mid-job (even ``SIGKILL``) leaks nothing;
* the warm engine — a persistent :class:`~repro.engine.CheckEngine`
  produces byte-identical sweep results to a cold one, across runs and
  backends, while shipping jobs through the arena.
"""

import json
import multiprocessing
import os
import signal
from multiprocessing import shared_memory

import pytest

from repro.checking.models import check
from repro.core.errors import EngineError
from repro.engine.arena import PlaneArena, decode_plane, encode_plane, plane_key
from repro.engine.jobs import SweepSpec
from repro.engine.pool import CheckEngine
from repro.kernel.constraints import HistoryPlane, history_plane
from repro.litmus import CATALOG, parse_history


def _segment_exists(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _warm_history():
    """A catalog history with a mask-populated plane (checks ran on it)."""
    history = CATALOG["fig1-sb"].history
    plane = history_plane(history)
    for model in ("SC", "Causal", "PRAM", "RC_sc"):
        check(history, model)
    return history, plane


# -- encode / decode -----------------------------------------------------------


def test_round_trip_history_and_masks():
    history, plane = _warm_history()
    assert plane.masks, "fixture should have warmed the mask cache"
    decoded_history, decoded_plane = decode_plane(encode_plane(history, plane))
    assert decoded_history == history
    for key, value in plane.masks.items():
        if isinstance(key, tuple):
            continue  # own-view restrictions are rebuilt on demand
        assert decoded_plane.masks[key] == value
    # Rule keys decode to the module singletons, not value copies.
    for key in decoded_plane.masks:
        if not isinstance(key, str):
            assert key in plane.masks


def test_round_trip_cold_plane():
    history = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
    decoded_history, decoded_plane = decode_plane(encode_plane(history))
    assert decoded_history == history
    assert decoded_plane.n == len(history.operations)


def test_decode_tolerates_trailing_padding():
    """Platforms may round segments up to a page; padding must be ignored."""
    history, plane = _warm_history()
    data = encode_plane(history, plane)
    for pad in (1, 7, 13, 4096 - (len(data) % 4096)):
        decoded_history, decoded_plane = decode_plane(data + b"\x00" * pad)
        assert decoded_history == history
        for key, value in plane.masks.items():
            if isinstance(key, tuple):
                continue
            assert decoded_plane.masks[key] == value


def test_plane_key_is_content_keyed():
    a = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
    b = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
    c = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)1")
    assert a is not b
    assert plane_key(a) == plane_key(b)
    assert plane_key(a) != plane_key(c)


def test_decode_rejects_mismatched_universe():
    history, plane = _warm_history()
    data = bytearray(encode_plane(history, plane))
    head_len = int.from_bytes(bytes(data[:8]), "little")
    header = json.loads(bytes(data[8 : 8 + head_len]))
    header["n"] = header["n"] + 1
    new_header = json.dumps(header, separators=(",", ":")).encode()
    patched = (
        len(new_header).to_bytes(8, "little") + new_header + bytes(data[8 + head_len :])
    )
    with pytest.raises(EngineError, match="universe mismatch"):
        decode_plane(patched)


def test_decoded_plane_checks_identically():
    history, plane = _warm_history()
    _, decoded_plane = decode_plane(encode_plane(history, plane))
    assert isinstance(decoded_plane, HistoryPlane)
    # The seeded plane drives a real check to the same verdicts.
    from repro.kernel.constraints import install_plane

    fresh = CATALOG["fig1-sb"].history
    install_plane(fresh, decode_plane(encode_plane(history, plane))[1])
    for model in ("SC", "Causal", "PRAM"):
        assert check(fresh, model).allowed == check(history, model).allowed


# -- arena lifecycle -----------------------------------------------------------


def test_put_is_idempotent_per_key():
    history, plane = _warm_history()
    with PlaneArena() as arena:
        name = arena.put("k", history, plane)
        assert arena.put("k", history, plane) == name
        assert len(arena) == 1 and "k" in arena


def test_eviction_unlinks_oldest():
    histories = [t.history for t in CATALOG.values()][:3]
    with PlaneArena(capacity=2) as arena:
        first = arena.put("a", histories[0])
        arena.put("b", histories[1])
        arena.put("c", histories[2])
        assert "a" not in arena and len(arena) == 2
        assert not _segment_exists(first)


def test_release_and_close_unlink():
    history, plane = _warm_history()
    arena = PlaneArena()
    name_a = arena.put("a", history, plane)
    name_b = arena.put("b", history, plane)
    arena.release("a")
    arena.release("missing")  # no-op
    assert not _segment_exists(name_a)
    assert _segment_exists(name_b)
    arena.close()
    assert not _segment_exists(name_b)
    assert len(arena) == 0


def test_finalizer_unlinks_on_gc():
    history, plane = _warm_history()
    arena = PlaneArena()
    name = arena.put("k", history, plane)
    del arena
    import gc

    gc.collect()
    assert not _segment_exists(name)


def test_capacity_validated():
    with pytest.raises(EngineError):
        PlaneArena(capacity=0)


def test_reserve_grows_capacity_never_shrinks():
    with PlaneArena(capacity=2) as arena:
        arena.reserve(8)
        assert arena.capacity == 8
        arena.reserve(4)
        assert arena.capacity == 8


# -- crash cleanup -------------------------------------------------------------


def _attach_and_hang(name: str, ready) -> None:
    PlaneArena.load(name)
    ready.set()
    signal.pause()


def test_worker_sigkill_leaks_nothing():
    """A worker killed -9 mid-attach leaves the parent free to unlink."""
    history, plane = _warm_history()
    arena = PlaneArena()
    name = arena.put("k", history, plane)
    ctx = multiprocessing.get_context("fork")
    ready = ctx.Event()
    proc = ctx.Process(target=_attach_and_hang, args=(name, ready))
    proc.start()
    assert ready.wait(timeout=10), "worker never attached"
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)
    assert proc.exitcode == -signal.SIGKILL
    # The segment is still owned and intact; decode works; close unlinks.
    assert _segment_exists(name)
    decoded_history, _ = PlaneArena.load(name)
    assert decoded_history == history
    arena.close()
    assert not _segment_exists(name)


# -- the warm engine -----------------------------------------------------------


def _stripped(results):
    return json.dumps(results, sort_keys=True)


def test_persistent_engine_matches_cold_engine():
    spec = SweepSpec(source="catalog", models=("SC", "Causal", "PRAM"))
    cold = CheckEngine(jobs=2).run(spec)
    with CheckEngine(jobs=2, persistent=True) as warm:
        first = warm.run(spec)
        arena = warm.arena
        assert arena is not None and len(arena) > 0
        segments = len(arena)
        second = warm.run(spec)
        assert len(arena) == segments, "re-runs must reuse segments"
    assert _stripped(first.results) == _stripped(cold.results)
    assert _stripped(second.results) == _stripped(cold.results)


def test_sweep_larger_than_arena_capacity():
    """Pre-building payloads must never evict a still-queued segment.

    The engine reserves the arena to the sweep's size before the put
    loop; without that, a sweep with more distinct histories than the
    arena's capacity unlinks segments whose names are still queued and
    every worker attach fails with ``FileNotFoundError``.
    """
    spec = SweepSpec(source="catalog", models=("SC",))
    cold = CheckEngine(jobs=2).run(spec)
    assert len(cold.results) > 2
    with CheckEngine(jobs=2, persistent=True) as warm:
        warm._arena = PlaneArena(capacity=1)  # far smaller than the sweep
        report = warm.run(spec)
        assert warm.arena is not None and warm.arena.capacity >= len(cold.results)
    assert _stripped(report.results) == _stripped(cold.results)


def test_cross_spec_sweeps_never_share_stale_segments():
    """Two shapes on one warm engine must each decode their own histories.

    Job keys used to collide across specs (``random:{seed}:{i}`` omitted
    the shape) and the arena trusted an existing key's payload, so the
    second sweep decoded the first sweep's stale segments.  Two layers
    now prevent this: job keys embed the full shape, and the arena keys
    segments by :func:`plane_key` content hash regardless.
    """
    base = dict(source="random", models=("SC", "Causal"), seed=7, count=4)
    first = SweepSpec(procs=2, ops_per_proc=2, **base)
    second = SweepSpec(procs=3, ops_per_proc=2, **base)
    first_keys = {j.key for j in first.jobs()}
    assert first_keys.isdisjoint(j.key for j in second.jobs())
    assert {plane_key(j.history) for j in first.jobs()}.isdisjoint(
        plane_key(j.history) for j in second.jobs()
    )
    cold = CheckEngine(jobs=2).run(second)
    with CheckEngine(jobs=2, persistent=True) as warm:
        warm.run(first)
        report = warm.run(second)
    assert _stripped(report.results) == _stripped(cold.results)


def test_persistent_engine_numpy_workers_identical():
    spec = SweepSpec(source="catalog", models=("SC", "TSO", "Causal"))
    cold = CheckEngine(jobs=2).run(spec)
    with CheckEngine(jobs=2, persistent=True, backend="numpy") as warm:
        report = warm.run(spec)
    assert _stripped(report.results) == _stripped(cold.results)


def test_persistent_engine_close_releases_segments():
    spec = SweepSpec(source="catalog", models=("SC",))
    engine = CheckEngine(jobs=2, persistent=True)
    engine.run(spec)
    arena = engine.arena
    assert arena is not None
    live = [shm.name for shm in arena._segments.values()]
    assert live
    engine.close()
    for name in live:
        assert not _segment_exists(name)
    # A closed engine still runs (cold start again).
    report = engine.run(spec)
    assert report.metrics.histories > 0
    engine.close()


def test_serial_persistent_engine_has_no_arena():
    engine = CheckEngine(jobs=1, persistent=True)
    assert engine.arena is None
    engine.close()
