"""Witnesses survive the result store: serialization round-trip regression.

Before ``store_views`` the engine reduced every positive verdict to a
boolean — the witness views were dropped on the floor.  These tests pin
the full round trip: check → wire dicts → JSONL store → decoded views
that re-validate against the history.
"""

import json

from repro.checking import check
from repro.core.serialization import (
    check_result_from_dict,
    check_result_to_dict,
    view_from_dict,
)
from repro.core.view import check_view_contents, is_legal_sequence
from repro.engine import CheckEngine, ResultStore, SweepSpec
from repro.litmus import CATALOG


class TestCheckResultRoundTrip:
    def test_allowed_result_round_trips_views(self):
        h = CATALOG["mp-ok"].history
        result = check(h, "SC")
        assert result.allowed and result.views
        decoded = check_result_from_dict(check_result_to_dict(result), h)
        assert decoded.model == result.model
        assert decoded.allowed == result.allowed
        assert decoded.reason == result.reason
        assert decoded.explored == result.explored
        assert set(decoded.views) == set(result.views)
        for proc, view in result.views.items():
            assert list(decoded.views[proc]) == list(view)

    def test_denied_result_round_trips_empty_views(self):
        h = CATALOG["fig1-sb"].history
        result = check(h, "SC")
        assert not result.allowed
        decoded = check_result_from_dict(check_result_to_dict(result), h)
        assert not decoded.allowed
        assert decoded.views == {}
        assert decoded.reason == result.reason

    def test_wire_dicts_are_json_serializable(self):
        h = CATALOG["mp-ok"].history
        d = check_result_to_dict(check(h, "SC"))
        assert check_result_from_dict(json.loads(json.dumps(d)), h).allowed


class TestStoreViews:
    SPEC = SweepSpec(source="catalog", models=("SC", "PRAM"))

    def test_views_absent_by_default(self, tmp_path):
        with ResultStore(tmp_path / "r.jsonl") as store:
            CheckEngine(jobs=1).run(self.SPEC, store=store)
            assert all("views" not in r for r in store.results())

    def test_store_views_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "r.jsonl") as store:
            CheckEngine(jobs=1, store_views=True).run(self.SPEC, store=store)
            records = list(store.results())
        assert records
        histories = {f"catalog:{name}": t.history for name, t in CATALOG.items()}
        seen_views = 0
        for record in records:
            h = histories[record["key"]]
            for model, allowed in record["models"].items():
                if not allowed:
                    assert model not in record.get("views", {})
                    continue
                view_dicts = record["views"][model]
                assert view_dicts, f"{record['key']} × {model} lost its witness"
                for vd in view_dicts:
                    view = view_from_dict(vd, h)
                    seen_views += 1
                    assert is_legal_sequence(list(view))
                    check_view_contents(list(view), h, view.proc)
        assert seen_views > 0

    def test_store_views_identical_across_worker_counts(self, tmp_path):
        paths = []
        for jobs in (1, 2):
            path = tmp_path / f"r{jobs}.jsonl"
            with ResultStore(path) as store:
                CheckEngine(jobs=jobs, store_views=True).run(
                    self.SPEC, store=store
                )
            paths.append(path)
        lines = [
            [ln for ln in p.read_text().splitlines() if '"type":"result"' in ln]
            for p in paths
        ]
        assert lines[0] == lines[1]
