"""EngineSession: one stream, many models, verdicts identical to one-shot."""

import pytest

from repro.checking.models import MODELS, PAPER_MODELS
from repro.core.errors import EngineError
from repro.engine import EngineSession, parse_op_line
from repro.kernel import check_with_spec
from repro.litmus import parse_history


def test_defaults_to_the_paper_model_set():
    session = EngineSession()
    assert session.models == PAPER_MODELS
    assert set(session.verdicts()) == set(PAPER_MODELS)
    assert all(session.verdicts().values())  # empty history admits


def test_append_checks_every_model_against_one_shared_stream():
    session = EngineSession(("SC", "PRAM", "Coherence"))
    for line in ("p: w(x)1", "q: r(x)1", "q: r(x)0"):
        for op in parse_op_line(line):
            results = session.append(op)
    assert session.denying() == ("SC", "PRAM", "Coherence")
    assert len(session.history.operations) == 3
    # Byte-parity with the one-shot kernel for every model.
    for name, got in results.items():
        want = check_with_spec(MODELS[name].spec, session.history)
        assert (got.allowed, got.reason, got.explored, got.views) == (
            want.allowed,
            want.reason,
            want.explored,
            want.views,
        )


def test_seed_history_is_checked_at_init():
    seed = parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")
    session = EngineSession(("SC", "Causal"), history=seed)
    assert session.verdicts() == {"SC": False, "Causal": False}
    assert len(session.history.operations) == 4


def test_append_line_returns_per_op_verdicts():
    session = EngineSession(("SC",))
    out = session.append_line("p: w(y)2 r(y)2")
    assert [str(op) for op, _ in out] == ["w_p(y)2", "r_p(y)2"]
    assert all(res["SC"].allowed for _, res in out)


def test_append_line_echoes_the_placed_op_not_the_list_tail():
    """Appending to a processor that is not last in the history must
    report *that* processor's new op (history.operations groups by
    processor, so the newest op is rarely the list tail)."""
    seed = parse_history("p: w(x)1 | q: r(x)1")
    session = EngineSession(("SC",), history=seed)
    out = session.append_line("p: r(y)7")
    assert [str(op) for op, _ in out] == ["r_p(y)7"]


def test_rejects_unknown_and_spec_less_models():
    with pytest.raises(EngineError, match="unknown model"):
        EngineSession(("SC", "NOPE"))
    with pytest.raises(EngineError, match="spec-backed"):
        EngineSession(("TSO-axiomatic",))
    with pytest.raises(EngineError, match="at least one model"):
        EngineSession(())


def test_parse_op_line_errors():
    with pytest.raises(EngineError, match="bad op line"):
        parse_op_line("no colon here")
    with pytest.raises(EngineError, match="bad op line"):
        parse_op_line("p: q(x)1")
    ops = parse_op_line("  p:   w(x)1   r(x)1 ")
    assert [str(o) for o in ops] == ["w_p(x)1", "r_p(x)1"]


def test_prepass_flag_is_forwarded():
    seed = parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")
    plain = EngineSession(("SC",), history=seed)
    pre = EngineSession(("SC",), history=seed, prepass=True)
    assert not plain.verdicts()["SC"] and not pre.verdicts()["SC"]
    # Each matches its own one-shot shape (the pre-pass denies with a
    # counterexample the search-deny lacks).
    for session, prepass in ((plain, False), (pre, True)):
        want = check_with_spec(MODELS["SC"].spec, seed, prepass=prepass)
        got = session.last_results["SC"]
        assert (got.reason, got.explored) == (want.reason, want.explored)


def test_interleaved_sessions_stay_correct():
    """Two sessions sharing the kernel's single plane slot don't corrupt
    each other — losing plane reuse is a performance event, never a
    verdict event."""
    a = EngineSession(("SC",))
    b = EngineSession(("SC",))
    a.append_line("p: w(x)1")
    b.append_line("p: w(x)1 w(x)2")
    a.append_line("q: r(x)1")
    b.append_line("q: r(x)2 r(x)1")
    assert a.verdicts() == {"SC": True}
    assert b.verdicts() == {"SC": False}
    for s in (a, b):
        want = check_with_spec(MODELS["SC"].spec, s.history)
        assert s.last_results["SC"].allowed == want.allowed
        assert s.last_results["SC"].explored == want.explored
