"""Property test: the JSONL and SQLite backends agree on every record stream.

The satellite contract from the serve PR: *any* sequence of records
written to both backends yields identical ``records()``,
``completed_keys()``, and ``summarize()`` — including the
crash-recovery comparison, where a JSONL truncated tail and an
uncommitted SQLite transaction both reopen to the same record prefix.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ResultStore, SqliteResultStore

# -- the record-stream strategy ------------------------------------------------

_KEYS = st.sampled_from(["k0", "k1", "k2", "k3", "chk:deadbeef"])
_MODELS = st.dictionaries(
    st.sampled_from(["SC", "TSO", "PC", "PRAM", "Causal"]),
    st.booleans(),
    max_size=3,
)

_RESULT = st.builds(
    lambda key, models, explored: ("result", key, models, explored),
    _KEYS,
    _MODELS,
    st.one_of(
        st.none(),
        st.dictionaries(st.sampled_from(["SC", "TSO"]), st.integers(0, 9), max_size=2),
    ),
)
_HEADER = st.just(("run", {"spec": {"source": "random"}, "jobs": 1}))
_SUMMARY = st.just(("summary",))

_STREAM = st.lists(
    st.one_of(_RESULT, _HEADER, _SUMMARY), min_size=0, max_size=25
)


def _write(store, stream):
    for op in stream:
        if op[0] == "result":
            _, key, models, explored = op
            store.append_result(key, models, explored)
        elif op[0] == "run":
            store.append_run_header(op[1])
        else:
            store.append_summary(store.summarize())


@settings(max_examples=60, deadline=None)
@given(stream=_STREAM)
def test_backends_agree_on_any_stream(tmp_path_factory, stream):
    tmp = tmp_path_factory.mktemp("parity")
    with ResultStore(tmp / "r.jsonl") as jl, SqliteResultStore(tmp / "r.db") as db:
        _write(jl, stream)
        _write(db, stream)
        assert list(jl.records()) == list(db.records())
        assert jl.completed_keys() == db.completed_keys()
        assert jl.summarize() == db.summarize()
    # And again on fresh handles (no in-memory caches).
    assert list(ResultStore(tmp / "r.jsonl").records()) == list(
        SqliteResultStore(tmp / "r.db").records()
    )
    assert (
        ResultStore(tmp / "r.jsonl").summarize()
        == SqliteResultStore(tmp / "r.db").summarize()
    )


@settings(max_examples=25, deadline=None)
@given(stream=_STREAM)
def test_compact_preserves_parity(tmp_path_factory, stream):
    tmp = tmp_path_factory.mktemp("compact")
    with ResultStore(tmp / "r.jsonl") as jl, SqliteResultStore(tmp / "r.db") as db:
        _write(jl, stream)
        _write(db, stream)
        jl.compact()
        db.compact()
        assert list(jl.records()) == list(db.records())
        assert jl.summarize() == db.summarize()


class TestCrashSemantics:
    """A killed JSONL writer and a killed SQLite writer converge.

    JSONL: the kill leaves a truncated final line; tail repair drops it
    and the store reopens to the intact prefix.  SQLite: the kill leaves
    an uncommitted transaction; rollback drops it and the store reopens
    to the committed prefix.  Same observable contract: a prefix of the
    record stream, never a corrupt or half-applied record.
    """

    def test_truncated_jsonl_equals_uncommitted_sqlite(self, tmp_path):
        records = [("a", {"SC": True}), ("b", {"SC": False}), ("c", {"SC": True})]
        jl_path = tmp_path / "r.jsonl"
        with ResultStore(jl_path) as jl:
            for key, models in records:
                jl.append_result(key, models)
        # Cut the final JSONL record in half: the kill-mid-write shape.
        raw = jl_path.read_bytes()
        head = raw[: raw.rindex(b'{"key":"c"')]
        jl_path.write_bytes(head + b'{"key":"c","mo')

        db = SqliteResultStore(tmp_path / "r.db")
        for key, models in records[:-1]:  # the last record never commits
            db.append_result(key, models)
        db.close()

        reopened_jl = ResultStore(jl_path)
        reopened_db = SqliteResultStore(tmp_path / "r.db")
        assert list(reopened_jl.records()) == list(reopened_db.records())
        assert reopened_jl.completed_keys() == reopened_db.completed_keys()
        assert reopened_jl.summarize() == reopened_db.summarize()

    def test_jsonl_repairs_then_matches_after_more_appends(self, tmp_path):
        jl_path = tmp_path / "r.jsonl"
        with ResultStore(jl_path) as jl:
            jl.append_result("a", {"SC": True})
            jl.append_result("b", {"SC": False})
        raw = jl_path.read_bytes()
        jl_path.write_bytes(raw[: raw.rindex(b'{"key":"b"') + 12])  # torn tail

        db = SqliteResultStore(tmp_path / "r.db")
        db.append_result("a", {"SC": True})

        # Both stores now hold exactly {a}; appending c to each must agree.
        with ResultStore(jl_path) as jl:
            jl.append_result("c", {"SC": True})
        db.append_result("c", {"SC": True})
        db.close()
        assert list(ResultStore(jl_path).records()) == list(
            SqliteResultStore(tmp_path / "r.db").records()
        )


class TestConcurrentAppenders:
    """Two writer processes sharing one JSONL store never tear a record."""

    def test_multiprocess_interleaved_appends(self, tmp_path):
        import multiprocessing

        path = tmp_path / "shared.jsonl"
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_append_many, args=(str(path), writer, 50))
            for writer in ("w0", "w1")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        store = ResultStore(path)
        results = [r for r in store.records() if r["type"] == "result"]
        assert len(results) == 100  # every record intact, none interleaved
        assert store.completed_keys() == {
            f"{w}:{i:03d}" for w in ("w0", "w1") for i in range(50)
        }


def _append_many(path, writer, count):
    from repro.engine import ResultStore

    with ResultStore(path) as store:
        for i in range(count):
            store.append_result(
                f"{writer}:{i:03d}",
                {"SC": bool(i % 2)},
                {"SC": i},
                views={"SC": [{"proc": writer, "ops": [], "version": 1}]},
            )


def test_o_append_handle(tmp_path):
    """The append fd is O_APPEND: a concurrent rewrite cannot misplace writes."""
    import fcntl

    store = ResultStore(tmp_path / "r.jsonl")
    store.append_result("a", {"SC": True})
    flags = fcntl.fcntl(store._fd, fcntl.F_GETFL)
    assert flags & os.O_APPEND
    store.close()
