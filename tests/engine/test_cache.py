"""Tests for the canonically-keyed relation cache."""

from repro.engine import RelationCache
from repro.litmus import parse_history
from repro.orders import po_relation, relation_memo


class TestCanonicalKeying:
    def test_reparse_hits(self):
        # Two parses of the same text are distinct objects, one canonical key.
        a = parse_history("p: w(x)1 | q: r(x)1")
        b = parse_history("p: w(x)1 | q: r(x)1")
        assert a == b and a is not b
        cache = RelationCache()
        with relation_memo(cache):
            po_relation(a)
            po_relation(b)
        assert cache.hits == 1 and cache.misses == 1

    def test_renamed_twin_does_not_poison(self):
        # Same canonical key, different concrete operations: the cache must
        # not serve p/q relations for the q/p twin.
        a = parse_history("p: w(x)1 | q: r(x)1")
        b = parse_history("p: r(x)1 | q: w(x)1")
        cache = RelationCache()
        with relation_memo(cache):
            pa = po_relation(a)
            pb = po_relation(b)
        assert set(pa.items) == set(a.operations)
        assert set(pb.items) == set(b.operations)
        assert cache.hits == 0 and cache.misses == 2


class TestEviction:
    def test_bound_and_ckey_cleanup(self):
        # Structurally distinct histories (canonical keys normalize values,
        # so differing only in the value would collapse to one key).
        cache = RelationCache(max_histories=2)
        histories = [
            parse_history("p: w(x)1"),
            parse_history("p: r(x)0"),
            parse_history("p: w(x)1 w(y)2"),
            parse_history("p: w(x)1 r(y)0"),
        ]
        with relation_memo(cache):
            for h in histories:
                po_relation(h)
        assert len(cache._tables) == 2
        assert len(cache._ckeys) == 2

    def test_clear(self):
        cache = RelationCache()
        with relation_memo(cache):
            po_relation(parse_history("p: w(x)1"))
        cache.clear()
        assert not cache._tables and not cache._ckeys
        assert cache.hits == 0 and cache.misses == 0


class TestSubstrate:
    def test_unambiguous_history(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)1")
        sub = RelationCache().substrate(h)
        assert sub["po"] is not None and sub["ppo"] is not None
        assert sub["reads_from"] is not None and sub["wb"] is not None

    def test_ambiguous_reads_from_left_none(self):
        # Duplicate write values: reads-from is not a function of the history.
        h = parse_history("p: w(x)1 w(x)1 | q: r(x)1")
        sub = RelationCache().substrate(h)
        assert sub["reads_from"] is None and sub["wb"] is None
        assert sub["po"] is not None

    def test_substrate_warms_checkers(self):
        from repro.checking import check

        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)1")
        cache = RelationCache()
        cache.substrate(h)
        before = cache.hits
        with relation_memo(cache):
            check(h, "SC")
            check(h, "TSO")
        assert cache.hits > before
