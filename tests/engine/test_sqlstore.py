"""Tests for the content-addressed SQLite result store and the URL factory."""

import json
import sqlite3

import pytest

from repro.core.errors import EngineError
from repro.engine import (
    CheckEngine,
    ResultStore,
    SqliteResultStore,
    SweepSpec,
    migrate_store,
    open_store,
)


def _fill(store, keys=("a", "b")):
    store.append_run_header({"spec": {"source": "catalog"}, "jobs": 1})
    for key in keys:
        store.append_result(key, {"SC": True, "TSO": False}, {"SC": 3})
    store.append_summary(store.summarize())


class TestRoundTrip:
    def test_records_back_in_order(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.db") as store:
            _fill(store)
        store = SqliteResultStore(tmp_path / "r.db")
        records = list(store.records())
        assert [r["type"] for r in records] == ["run", "result", "result", "summary"]
        assert store.completed_keys() == {"a", "b"}

    def test_missing_file_is_empty(self, tmp_path):
        store = SqliteResultStore(tmp_path / "absent.db")
        assert list(store.records()) == []
        assert store.completed_keys() == set()

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="key"):
            SqliteResultStore(tmp_path / "r.db").append_result("", {})

    def test_wal_mode_enabled(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.db") as store:
            _fill(store)
        conn = sqlite3.connect(tmp_path / "r.db")
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"


class TestDedupOnInsert:
    def test_last_record_wins(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.db") as store:
            store.append_result("a", {"SC": True})
            store.append_result("a", {"SC": False})
            assert store.latest_result("a")["models"] == {"SC": False}
            summary = store.summarize()
        assert summary["results"] == 2  # the log keeps both
        assert summary["distinct_keys"] == 1  # the index keeps one
        assert summary["allowed_counts"] == {"SC": 0}

    def test_latest_result_unknown_key(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.db") as store:
            store.append_result("a", {"SC": True})
            assert store.latest_result("zzz") is None

    def test_completed_keys_cached_and_updated(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.db") as store:
            store.append_result("a", {"SC": True})
            keys = store.completed_keys()
            store.append_result("b", {"SC": True})
            assert store.completed_keys() == {"a", "b"}
            assert keys is store.completed_keys()  # same live cache


class TestCompact:
    def test_compact_drops_superseded_only(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.db") as store:
            _fill(store)
            store.append_result("a", {"SC": False, "TSO": False})
            before = store.summarize()
            out = store.compact()
            after = store.summarize()
        assert out["dropped"] == 1
        assert after["distinct_keys"] == before["distinct_keys"]
        assert after["allowed_counts"] == before["allowed_counts"]
        assert after["results"] == before["results"] - 1

    def test_jsonl_compact_matches(self, tmp_path):
        for store in (
            ResultStore(tmp_path / "r.jsonl"),
            SqliteResultStore(tmp_path / "r.db"),
        ):
            with store:
                _fill(store)
                store.append_result("a", {"SC": False, "TSO": False})
                store.compact()
        jsonl = [
            r
            for r in ResultStore(tmp_path / "r.jsonl").records()
            if r["type"] == "result"
        ]
        sql = [
            r
            for r in SqliteResultStore(tmp_path / "r.db").records()
            if r["type"] == "result"
        ]
        assert jsonl == sql


class TestOpenStore:
    def test_scheme_dispatch(self, tmp_path):
        assert isinstance(
            open_store(f"sqlite:{tmp_path}/a"), SqliteResultStore
        )
        assert isinstance(open_store(f"jsonl:{tmp_path}/a"), ResultStore)

    def test_suffix_dispatch(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert isinstance(
                open_store(tmp_path / f"r{suffix}"), SqliteResultStore
            )
        assert isinstance(open_store(tmp_path / "r.jsonl"), ResultStore)
        assert isinstance(open_store(tmp_path / "r"), ResultStore)

    def test_empty_scheme_path_rejected(self):
        with pytest.raises(EngineError, match="empty path"):
            open_store("sqlite:")


class TestMigrate:
    def test_jsonl_to_sqlite_round_trip(self, tmp_path):
        src = tmp_path / "r.jsonl"
        with ResultStore(src) as store:
            _fill(store, keys=("a", "b", "a"))  # duplicate key survives the log
        out = migrate_store(src, f"sqlite:{tmp_path}/r.db")
        dst = SqliteResultStore(tmp_path / "r.db")
        assert out["records"] == 5
        assert list(dst.records()) == list(ResultStore(src).records())
        assert dst.completed_keys() == ResultStore(src).completed_keys()
        assert dst.summarize() == ResultStore(src).summarize()

    def test_sqlite_to_jsonl_round_trip(self, tmp_path):
        src = tmp_path / "r.db"
        with SqliteResultStore(src) as store:
            _fill(store)
        migrate_store(src, tmp_path / "r.jsonl")
        back = ResultStore(tmp_path / "r.jsonl")
        assert list(back.records()) == list(SqliteResultStore(src).records())
        assert back.summarize() == SqliteResultStore(src).summarize()


class TestEngineIntegration:
    SPEC = SweepSpec(source="catalog", models=("SC", "PRAM"))

    def test_sweep_into_sqlite_matches_jsonl(self, tmp_path):
        with open_store(tmp_path / "r.jsonl") as store:
            CheckEngine(jobs=1).run(self.SPEC, store=store)
        with open_store(f"sqlite:{tmp_path}/r.db") as store:
            CheckEngine(jobs=1).run(self.SPEC, store=store)
        jl = ResultStore(tmp_path / "r.jsonl")
        db = SqliteResultStore(tmp_path / "r.db")
        assert [r for r in jl.records() if r["type"] == "result"] == [
            r for r in db.records() if r["type"] == "result"
        ]
        assert jl.summarize() == db.summarize()

    def test_resume_skips_completed_keys(self, tmp_path):
        with open_store(f"sqlite:{tmp_path}/r.db") as store:
            CheckEngine(jobs=1).run(self.SPEC, store=store)
        with open_store(f"sqlite:{tmp_path}/r.db") as store:
            report = CheckEngine(jobs=1).run(self.SPEC, store=store, resume=True)
        assert report.metrics.histories == 0
        assert report.metrics.skipped > 0

    def test_result_records_canonically_encoded(self, tmp_path):
        with open_store(f"sqlite:{tmp_path}/r.db") as store:
            CheckEngine(jobs=1).run(self.SPEC, store=store)
        conn = sqlite3.connect(tmp_path / "r.db")
        for (payload,) in conn.execute(
            "SELECT record FROM log WHERE type='result'"
        ):
            assert payload == json.dumps(
                json.loads(payload), sort_keys=True, separators=(",", ":")
            )
