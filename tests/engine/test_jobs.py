"""Tests for the declarative sweep specs and their job expansion."""

import pytest

from repro.checking import model_names
from repro.core.errors import EngineError
from repro.engine import SweepSpec
from repro.litmus import CATALOG


class TestValidation:
    def test_unknown_source(self):
        with pytest.raises(EngineError, match="unknown history source"):
            SweepSpec(source="nope")

    def test_empty_models(self):
        with pytest.raises(EngineError, match="at least one model"):
            SweepSpec(models=())

    def test_unknown_model(self):
        with pytest.raises(EngineError, match="unknown model"):
            SweepSpec(models=("SC", "Nonsense"))

    def test_degenerate_shape(self):
        with pytest.raises(EngineError, match="degenerate"):
            SweepSpec(source="space", procs=0)
        with pytest.raises(EngineError, match="degenerate"):
            SweepSpec(source="space", ops_per_proc=0)

    def test_empty_locations(self):
        with pytest.raises(EngineError, match="location"):
            SweepSpec(source="space", locations=())

    def test_random_bad_count(self):
        with pytest.raises(EngineError, match="count"):
            SweepSpec(source="random", count=0)

    def test_random_bad_p_write(self):
        with pytest.raises(EngineError, match="p_write"):
            SweepSpec(source="random", p_write=1.5)


class TestModelResolution:
    def test_all_expands_to_registry(self):
        assert SweepSpec().resolved_models() == model_names()

    def test_explicit_names_kept_in_order(self):
        spec = SweepSpec(models=("TSO", "SC"))
        assert spec.resolved_models() == ("TSO", "SC")


class TestCatalogJobs:
    def test_one_job_per_entry(self):
        jobs = list(SweepSpec(source="catalog").jobs())
        assert len(jobs) == len(CATALOG)
        assert {j.key for j in jobs} == {f"catalog:{n}" for n in CATALOG}

    def test_deterministic_order(self):
        spec = SweepSpec(source="catalog", models=("SC",))
        assert [j.key for j in spec.jobs()] == [j.key for j in spec.jobs()]


class TestSpaceJobs:
    def test_canonical_dedup(self):
        from repro.lattice.enumeration import canonical_key

        jobs = list(SweepSpec(source="space", models=("SC",)).jobs())
        keys = [canonical_key(j.history) for j in jobs]
        assert len(keys) == len(set(keys)) == 210  # the 2x2 canonical count

    def test_stable_indices(self):
        spec = SweepSpec(source="space", models=("SC",))
        first = [j.key for j in spec.jobs()]
        assert first[0] == "space:2x2:x,y:000000"
        assert first == [j.key for j in spec.jobs()]


class TestRandomJobs:
    def test_seeded_and_sized(self):
        spec = SweepSpec(source="random", models=("SC",), count=5, seed=9)
        a = list(spec.jobs())
        b = list(spec.jobs())
        assert len(a) == 5
        assert [j.key for j in a] == [
            f"random:2x2:x,y:p0.5:9:{i:06d}" for i in range(5)
        ]
        assert [j.history for j in a] == [j.history for j in b]

    def test_keys_embed_shape(self):
        # Keys are injective across specs: different shapes (or write
        # probabilities) with the same seed must never share a key,
        # or shared-store resume would serve one spec's records to
        # another's jobs.
        base = dict(source="random", models=("SC",), count=3, seed=7)
        variants = [
            SweepSpec(procs=2, ops_per_proc=2, **base),
            SweepSpec(procs=3, ops_per_proc=2, **base),
            SweepSpec(procs=2, ops_per_proc=3, **base),
            SweepSpec(procs=2, ops_per_proc=2, locations=("x", "y", "z"), **base),
            SweepSpec(procs=2, ops_per_proc=2, p_write=0.25, **base),
        ]
        key_sets = [{j.key for j in spec.jobs()} for spec in variants]
        for i, a in enumerate(key_sets):
            for b in key_sets[i + 1 :]:
                assert a.isdisjoint(b)

    def test_seed_changes_histories(self):
        h0 = [j.history for j in SweepSpec(source="random", count=5, seed=0).jobs()]
        h1 = [j.history for j in SweepSpec(source="random", count=5, seed=1).jobs()]
        assert h0 != h1


class TestDescribe:
    def test_catalog_omits_shape(self):
        d = SweepSpec(source="catalog", models=("SC",)).describe()
        assert d == {"source": "catalog", "models": ["SC"]}

    def test_random_records_generator_params(self):
        d = SweepSpec(source="random", count=7, seed=3, p_write=0.25).describe()
        assert d["count"] == 7 and d["seed"] == 3 and d["p_write"] == 0.25
